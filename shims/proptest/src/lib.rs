//! Offline shim for the `proptest` crate.
//!
//! Implements the subset used by this workspace's property tests:
//! integer-range strategies, tuple strategies, [`collection::vec`],
//! [`num::u64::ANY`] / [`bool::ANY`], [`Strategy::prop_map`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: each test runs `cases` deterministically-seeded random
//! inputs (seeded from the test's name, so runs are reproducible and
//! failures can be replayed by re-running the test) and assertion macros
//! panic immediately with the failing values in the message.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG. Public for use by the `proptest!` macro.
#[doc(hidden)]
pub mod test_runner {
    use super::*;

    pub fn deterministic_rng(test_name: &str) -> StdRng {
        // FNV-1a over the test name: stable seeds without global state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// A generator of random values (mirror of `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

pub mod collection {
    use super::*;

    /// `Vec` strategy: random length drawn from `size`, elements from
    /// `element` (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! any_module {
    ($($mod_name:ident => $t:ty, $any_ty:ident;)*) => {$(
        pub mod $mod_name {
            use super::*;

            /// Uniform strategy over the whole value space.
            pub struct $any_ty;
            pub const ANY: $any_ty = $any_ty;

            impl Strategy for $any_ty {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        }
    )*};
}

any_module! {
    bool => bool, AnyBool;
}

pub mod num {
    use super::*;

    any_module! {
        u8 => u8, AnyU8;
        u16 => u16, AnyU16;
        u32 => u32, AnyU32;
        u64 => u64, AnyU64;
        usize => usize, AnyUsize;
        i32 => i32, AnyI32;
        i64 => i64, AnyI64;
    }
}

// `SampleRange` is referenced so the `rand` shim's range machinery is the
// single source of uniform-sampling behavior for both crates.
#[allow(dead_code)]
fn _uniformity_is_delegated<T, R: SampleRange<T>>() {}

/// Mirror of `proptest::proptest!`: expands each `fn name(arg in strategy)`
/// into a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Mirror of `prop_assert!` — panics instead of returning `Err` (no
/// shrinking to feed in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::deterministic_rng("bounds");
        let s = collection::vec((0u8..4, crate::num::u64::ANY), 3..40);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((3..40).contains(&v.len()));
            assert!(v.iter().all(|&(k, _)| k < 4));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::deterministic_rng("map");
        let s = (2usize..5).prop_map(|n| n * 10);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v == 20 || v == 30 || v == 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_runs(x in 1usize..10, flip in crate::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            let _ = flip;
        }
    }
}
