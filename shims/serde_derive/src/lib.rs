//! Offline shim for serde's derive macros.
//!
//! The workspace annotates its wire-adjacent types with
//! `#[derive(Serialize, Deserialize)]`, but nothing in-tree drives serde's
//! data model — the actual byte format is the hand-rolled codec in
//! `proteus-graph::wire`. These derives therefore only need to keep the
//! annotations compiling; they expand to nothing. Swapping in the real
//! `serde`/`serde_derive` later requires no source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
