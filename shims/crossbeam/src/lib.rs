//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` layered over [`std::thread::scope`]
//! (stable since Rust 1.63, which made crossbeam's scoped threads largely
//! redundant upstream too). One deliberate divergence: the closure passed
//! to [`thread::Scope::spawn`] receives `()` rather than a nested `&Scope`,
//! because re-entrant spawning is not used in this workspace and the call
//! sites all write `|_| ...`.

pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns. Like crossbeam,
    /// returns `Ok(result)` when no unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
