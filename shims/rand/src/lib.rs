//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API used by this workspace:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid and fully
//! deterministic per seed, though its streams intentionally make no attempt
//! to match upstream `rand`'s byte-for-byte.

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution: uniform over the value space
/// for integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type usable as the argument of [`Rng::gen_range`] (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extensions (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
