//! Offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the little-endian accessors used by the wire codecs in this workspace.
//! [`Bytes`] is a cheaply-cloneable `Arc`-backed view with an advancing
//! cursor, so `split_to`/`slice` are O(1) and never copy, matching the real
//! crate's behavior where it matters for the benchmarks.

use std::ops::Deref;
use std::sync::Arc;

/// Read side: a buffer of bytes consumed from the front.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Borrow the remaining bytes.
    fn chunk(&self) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: a growable buffer appended at the back.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable, cheaply-cloneable byte view with an advancing read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
            end: src.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-view of the remaining bytes; `range` is relative to the
    /// current cursor. Panics if out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off the first `len` bytes as a new `Bytes`, advancing `self`
    /// past them. Panics if `len > self.len()`.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable write buffer; `freeze` converts to [`Bytes`] without copying.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends bytes (same surface as the registry crate's inherent
    /// method; [`BufMut::put_slice`] is the trait spelling).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `len` bytes, leaving the rest
    /// in place. Panics when `len` exceeds the buffer, matching the
    /// registry crate.
    pub fn split_to(&mut self, len: usize) -> BytesMut {
        assert!(len <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(len);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-5);
        w.put_f32_le(1.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.to_vec(), b"abc");
    }

    #[test]
    fn split_and_slice_are_views() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![0, 1]);
        assert_eq!(b.remaining(), 4);
        let mid = b.slice(1..3);
        assert_eq!(mid.to_vec(), vec![3, 4]);
        assert_eq!(b.to_vec(), vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.split_to(3);
    }
}
