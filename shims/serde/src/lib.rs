//! Offline shim for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive-macro
//! pairs, like `serde` with the `derive` feature) so that the workspace's
//! annotations compile without the registry. The traits are markers: no
//! in-tree code calls serde's data model. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
