//! Offline shim for the `criterion` benchmark harness.
//!
//! Implements the entry points used by `crates/bench/benches/pipeline.rs`:
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's statistical machinery, each benchmark runs a
//! fixed number of timed samples and prints `mean`/`min` wall-clock per
//! iteration — enough to track the `BENCH_*.json` latency trajectory
//! offline. `cargo bench` runs these; `cargo test` only compiles them.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically in
/// this shim (setup is always excluded from timing, one input per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass (lazy allocations, caches).
        std_black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

/// Benchmark registry/configuration (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style, like upstream).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let n = b.timings.len().max(1);
        let total: Duration = b.timings.iter().sum();
        let mean = total / n as u32;
        let min = b.timings.iter().min().copied().unwrap_or_default();
        println!("{name:<44} mean {mean:>12.3?}   min {min:>12.3?}   ({n} samples)");
        self
    }
}

/// Mirror of `criterion_group!`: defines a function running each target
/// against a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`: generates `main` for a `harness = false`
/// bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_samples_plus_warmup() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("shim_self_test", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_gives_fresh_inputs() {
        let mut produced = 0usize;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    produced += 1;
                    vec![produced]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(produced, 4);
    }
}
