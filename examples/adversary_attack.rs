//! Play the adversary: train the paper's GNN classifier and attack an
//! obfuscated bucket, comparing Proteus sentinels against the
//! random-opcode baseline (paper §5.3.2, Figure 6 in miniature).
//!
//! Run with: `cargo run --release --example adversary_attack`

use proteus::{random_opcode_sentinels, Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::{attack_buckets, Example, LabelledBucket, SageClassifier, SageConfig};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 6;
    // The protected model is ResNet; the adversary trains on *other* models.
    let protected = build(ModelKind::ResNet);
    let train_models = [
        ModelKind::MobileNet,
        ModelKind::GoogleNet,
        ModelKind::DenseNet,
    ];

    let config = ProteusConfig {
        k,
        graphrnn: GraphRnnConfig {
            epochs: 4,
            ..Default::default()
        },
        topology_pool: 60,
        ..Default::default()
    };
    let corpus: Vec<_> = train_models.iter().map(|&m| build(m)).collect();
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(5);

    // Build the protected model's buckets (what the adversary intercepts).
    let assignment = partition_by_size(&protected, 8, 16, 3);
    let plan = PartitionPlan::extract(&protected, &TensorMap::new(), &assignment)?;
    println!(
        "protected model split into n = {} subgraphs, k = {k}",
        plan.pieces.len()
    );

    let mut proteus_buckets = Vec::new();
    let mut baseline_buckets = Vec::new();
    for piece in &plan.pieces {
        proteus_buckets.push(LabelledBucket {
            real: piece.graph.clone(),
            sentinels: proteus.factory().generate(
                &piece.graph,
                k,
                SentinelMode::Generative,
                &mut rng,
            ),
        });
        baseline_buckets.push(LabelledBucket {
            real: piece.graph.clone(),
            sentinels: random_opcode_sentinels(
                &piece.graph,
                k,
                proteus.factory().sampler(),
                proteus.config().beta,
                &mut rng,
            ),
        });
    }

    // The adversary's training data: other models' pieces + sentinels.
    let mut proteus_examples = Vec::new();
    let mut baseline_examples = Vec::new();
    for (i, g) in corpus.iter().enumerate() {
        let a = partition_by_size(g, 8, 8, i as u64);
        let p = PartitionPlan::extract(g, &TensorMap::new(), &a)?;
        for piece in &p.pieces {
            proteus_examples.push(Example::new(&piece.graph, false));
            baseline_examples.push(Example::new(&piece.graph, false));
            for s in proteus
                .factory()
                .generate(&piece.graph, 2, SentinelMode::Generative, &mut rng)
            {
                proteus_examples.push(Example::new(&s, true));
            }
            for s in random_opcode_sentinels(
                &piece.graph,
                2,
                proteus.factory().sampler(),
                proteus.config().beta,
                &mut rng,
            ) {
                baseline_examples.push(Example::new(&s, true));
            }
        }
    }

    for (name, examples, buckets) in [
        (
            "random-opcode baseline",
            &baseline_examples,
            &baseline_buckets,
        ),
        ("Proteus", &proteus_examples, &proteus_buckets),
    ] {
        let mut clf = SageClassifier::new(
            SageConfig {
                epochs: 6,
                ..Default::default()
            },
            11,
        );
        let history = clf.train(examples, 13);
        let report = attack_buckets(&clf, buckets);
        println!("\n--- attacking {name} sentinels ---");
        println!(
            "classifier training loss: {:.3} -> {:.3}",
            history[0],
            history.last().unwrap()
        );
        println!(
            "min gamma keeping all real subgraphs: {:.3}",
            report.min_gamma
        );
        println!("specificity at that gamma: {:.3}", report.specificity);
        println!(
            "surviving search space: {} architectures (10^{:.1})",
            report.candidates_string(),
            report.log10_candidates
        );
    }
    println!("\nExpected shape (paper Figure 6): the baseline collapses to few");
    println!("candidates; Proteus leaves an astronomically large space.");
    Ok(())
}
