//! Quickstart: protect a small CNN, have an "optimizer party" optimize the
//! obfuscated bucket, de-obfuscate, and verify the optimized model computes
//! exactly the same function.
//!
//! Run with: `cargo run --release --example quickstart`

use proteus::{optimize_model, PartitionSpec, Proteus, ProteusConfig};
use proteus_graph::{Activation, ConvAttrs, Executor, Graph, Op, Tensor, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The model developer's secret architecture (with trained weights).
    let mut secret = Graph::new("secret-model");
    let x = secret.input([1, 3, 32, 32]);
    // stride-2 stem (Winograd-ineligible), then a residual 3x3 block
    let c1 = secret.add(Op::Conv(ConvAttrs::new(3, 64, 3).stride(2).padding(1)), [x]);
    let r1 = secret.add(Op::Activation(Activation::Relu), [c1]);
    let c2 = secret.add(Op::Conv(ConvAttrs::new(64, 64, 3).padding(1)), [r1]);
    let skip = secret.add(Op::Add, [c2, r1]);
    let r2 = secret.add(Op::Activation(Activation::Relu), [skip]);
    let gap = secret.add(Op::GlobalAveragePool, [r2]);
    secret.set_outputs([gap]);
    let weights = TensorMap::init_random(&secret, 42);
    println!(
        "protected model: {} nodes, {} edges",
        secret.len(),
        secret.edge_count()
    );

    // 2. Train Proteus' sentinel generator on PUBLIC models only.
    let config = ProteusConfig {
        k: 5,
        partitions: PartitionSpec::Count(2),
        graphrnn: GraphRnnConfig {
            epochs: 4,
            ..Default::default()
        },
        topology_pool: 60,
        ..Default::default()
    };
    let corpus = vec![build(ModelKind::ResNet), build(ModelKind::MobileNet)];
    let proteus = Proteus::train(config, &corpus);

    // 3. Obfuscate: the optimizer party sees n buckets of k+1 candidates.
    let (bucket, secrets) = proteus.obfuscate(&secret, &weights)?;
    println!(
        "obfuscated: {} buckets x {} members = {} subgraphs ({} bytes on the wire)",
        bucket.num_buckets(),
        bucket.buckets[0].members.len(),
        bucket.total_subgraphs(),
        bucket.to_bytes().len(),
    );

    // 4. The optimizer party optimizes every member (it cannot tell which
    //    is real) and returns the bucket.
    let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));

    // 5. De-obfuscate and verify: identical function, faster graph.
    let (model, params) = proteus.deobfuscate(&secrets, &optimized)?;
    let mut rng = StdRng::seed_from_u64(7);
    let probe = Tensor::random([1, 3, 32, 32], 1.0, &mut rng);
    let before = Executor::new(&secret, &weights).run(std::slice::from_ref(&probe))?;
    let after = Executor::new(&model, &params).run(&[probe])?;
    let diff = before[0].max_abs_diff(&after[0]);
    println!(
        "optimized model: {} nodes (was {})",
        model.len(),
        secret.len()
    );
    println!("max |output difference| = {diff:.2e}");
    assert!(diff < 1e-3, "optimization must preserve semantics");

    let optimizer = Optimizer::new(Profile::OrtLike);
    let t_before = optimizer.estimate_us(&secret)?;
    let t_after = optimizer.estimate_us(&model)?;
    println!(
        "estimated latency: {t_before:.1} us -> {t_after:.1} us ({:.2}x)",
        t_before / t_after
    );
    Ok(())
}
