//! Multi-tenant "optimization as a service" over ONE multiplexed byte
//! stream, mirroring the paper's workflow (Figure 1) at serving scale:
//! several model owners stream sealed buckets concurrently, and a single
//! shared [`ServeRuntime`] worker pool optimizes their frames interleaved.
//!
//! The trust boundary is two byte streams. Every frame on them is a
//! versioned, checksummed **v2 multiplexed frame** whose header carries a
//! `request_id`: the service demultiplexes incoming frames into one
//! runtime lane per request (frames injected with a foreign id are
//! rejected, typed), and each owner demultiplexes the shared response
//! stream back to its own reassembly session with
//! [`DeobfuscationSession::accept_mux_bytes`].
//!
//! Run with: `cargo run --release --example confidential_service`

use proteus::serve::{RequestHandle, ServeRuntime};
use proteus::{DeobfuscationSession, Proteus, ProteusConfig, ServeConfig};
use proteus_graph::{peek_frame_request_id, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The tenants: each protects a different zoo model under its own
/// request id.
const CLIENTS: [(u64, ModelKind); 3] = [
    (0xA1, ModelKind::AlexNet),
    (0xB2, ModelKind::ResNet),
    (0xC3, ModelKind::MnasNet),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // one trained instance serves every request (train-once semantics)
    let config = ProteusConfig {
        k: 3,
        graphrnn: GraphRnnConfig {
            epochs: 4,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 60,
        ..Default::default()
    };
    let corpus: Vec<_> = [
        ModelKind::MobileNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
    ]
    .iter()
    .map(|&k| build(k))
    .collect();
    let trained = Proteus::builder()
        .config(config.clone())
        .corpus(corpus)
        .train()?;

    // Warm start: the training above would normally happen offline. The
    // trained state is persisted as a checksummed PRTA artifact, and the
    // serving process cold-starts from it in milliseconds — bit-identical
    // on the wire to the instance that saved it. `load_artifact_expecting`
    // pins the deployment config: an artifact trained under a different
    // configuration is rejected with a typed fingerprint mismatch.
    let artifact_path = std::env::temp_dir().join(format!(
        "proteus_confidential_service_{}.prta",
        std::process::id()
    ));
    trained.save_artifact(&artifact_path)?;
    drop(trained);
    let warm = Instant::now();
    let proteus = Arc::new(Proteus::load_artifact_expecting(&artifact_path, &config)?);
    println!(
        "warm start: loaded trained state from {} in {:.1} ms (fingerprint {:#018x})",
        artifact_path.display(),
        warm.elapsed().as_secs_f64() * 1e3,
        proteus.config_fingerprint(),
    );
    let start = Instant::now();

    // trust boundary: ONE multiplexed stream each way -------------------
    let (to_service, service_inbox) = mpsc::channel::<bytes::Bytes>();
    let (to_owner, owner_inbox) = mpsc::channel::<bytes::Bytes>();

    std::thread::scope(
        |scope| -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
            // The optimizer party: a shared worker pool, one lane per request
            // id. It never sees the protected models, the plans, or the real
            // positions — only interleaved anonymized frames.
            scope.spawn(move || {
                let runtime = ServeRuntime::new(
                    Optimizer::new(Profile::OrtLike),
                    ServeConfig {
                        workers: 4,
                        window: 2,
                        ..Default::default()
                    },
                )
                .expect("runtime starts");
                let mut lanes: HashMap<u64, RequestHandle> = HashMap::new();
                let forward = |rid: u64, lane: &RequestHandle, out: &mpsc::Sender<bytes::Bytes>| {
                    while let Some(frame) = lane.try_recv() {
                        println!(
                            "  [service] t={:>7.1}ms request {rid:#x} bucket {}/{} optimized",
                            start.elapsed().as_secs_f64() * 1e3,
                            frame.bucket_index + 1,
                            frame.num_buckets,
                        );
                        if out.send(frame.to_mux_bytes(rid)).is_err() {
                            return;
                        }
                    }
                };
                for wire in service_inbox {
                    // demultiplex: a header-only peek names the lane; the
                    // lane's submit performs the full (checksum) decode
                    let rid = match peek_frame_request_id(&wire) {
                        Ok(rid) => rid,
                        Err(e) => {
                            eprintln!("  [service] rejecting frame: {e}");
                            continue;
                        }
                    };
                    let lane = lanes.entry(rid).or_insert_with(|| runtime.handle(rid));
                    if let Err(e) = lane.submit_bytes(wire) {
                        eprintln!("  [service] rejecting frame for {rid:#x}: {e}");
                    }
                    for (&rid, lane) in &lanes {
                        forward(rid, lane, &to_owner);
                    }
                }
                // input stream closed: drain every lane
                loop {
                    let mut busy = false;
                    for (&rid, lane) in &lanes {
                        // read in_flight BEFORE draining: a frame that
                        // completes between the two calls either drains
                        // now or was counted busy, so nothing strands
                        busy |= lane.in_flight() > 0;
                        forward(rid, lane, &to_owner);
                    }
                    if !busy {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                let stats = runtime.stats();
                println!(
                    "  [service] pool done: {} workers, {} member tasks, max queue depth {}",
                    stats.workers, stats.tasks_executed, stats.max_queue_depth
                );
                // dropping `to_owner` closes the response stream
            });

            // owner-side demultiplexer: one response stream in, one channel
            // per client out
            let mut client_txs: HashMap<u64, mpsc::Sender<bytes::Bytes>> = HashMap::new();
            let mut client_rxs: HashMap<u64, mpsc::Receiver<bytes::Bytes>> = HashMap::new();
            for (rid, _) in CLIENTS {
                let (tx, rx) = mpsc::channel();
                client_txs.insert(rid, tx);
                client_rxs.insert(rid, rx);
            }
            scope.spawn(move || {
                for wire in owner_inbox {
                    let Ok(rid) = peek_frame_request_id(&wire) else {
                        eprintln!("[owner-demux] undecodable response frame");
                        continue;
                    };
                    let Some(tx) = client_txs.get(&rid) else {
                        eprintln!("[owner-demux] response for unknown request {rid:#x}");
                        continue;
                    };
                    let _ = tx.send(wire);
                }
            });

            // the tenants: generate frames, ship them over the SHARED stream,
            // reassemble from the demultiplexed responses
            let mut joins = Vec::new();
            for (rid, kind) in CLIENTS {
                let proteus = Arc::clone(&proteus);
                let to_service = to_service.clone();
                let responses = client_rxs.remove(&rid).expect("own channel");
                joins.push(scope.spawn(move || -> Result<(), proteus::ProteusError> {
                    let protected = build(kind);
                    println!(
                        "[client {rid:#x}] protecting {} ({} nodes)",
                        protected.name(),
                        protected.len()
                    );
                    let mut session =
                        proteus.obfuscate_session(&protected, &TensorMap::new(), rid)?;
                    let mut wire_bytes = 0usize;
                    while let Some(frame) = session.next_frame() {
                        let wire = frame.to_mux_bytes(rid);
                        wire_bytes += wire.len();
                        if to_service.send(wire).is_err() {
                            break;
                        }
                    }
                    drop(to_service); // this tenant's frames are all shipped
                    let secrets = session.finish()?;
                    let mut reassembly = DeobfuscationSession::new(&secrets);
                    while !reassembly.is_complete() {
                        let wire = responses
                            .recv()
                            .expect("service closed before completing the request");
                        reassembly.accept_mux_bytes(wire)?;
                    }
                    let (model, _params) = reassembly.finish()?;
                    model.validate()?;

                    // what did confidentiality cost this tenant?
                    let optimizer = Optimizer::new(Profile::OrtLike);
                    let unopt = optimizer.estimate_us(&protected)?;
                    let (best_graph, _, _) = optimizer.optimize(&protected, &TensorMap::new());
                    let best = optimizer.estimate_us(&best_graph)?;
                    let with_proteus = optimizer.estimate_us(&model)?;
                    println!(
                        "[client {rid:#x}] t={:>7.1}ms done: {} nodes, {wire_bytes} frame bytes, \
                     latency estimate {unopt:.0} -> {with_proteus:.0} us \
                     (best attainable {best:.0} us, overhead {:+.1}%)",
                        start.elapsed().as_secs_f64() * 1e3,
                        model.len(),
                        (with_proteus - best) / best * 100.0,
                    );
                    Ok(())
                }));
            }
            drop(to_service); // the scope's own sender
            for j in joins {
                j.join().expect("client thread").expect("client succeeds");
            }
            Ok(())
        },
    )
    .map_err(|e| -> Box<dyn std::error::Error> { e })?;

    println!(
        "\nall {} concurrent requests served over one multiplexed stream in {:.1}ms",
        CLIENTS.len(),
        start.elapsed().as_secs_f64() * 1e3
    );
    std::fs::remove_file(&artifact_path).ok();
    Ok(())
}
