//! A two-party "optimization as a service" scenario over the byte wire
//! format, mirroring the paper's workflow (Figure 1) with an explicit trust
//! boundary: only serialized buckets cross it.
//!
//! The model owner protects a full zoo model (GoogLeNet); the service runs
//! an ONNXRuntime-like optimizer; the owner reassembles and measures the
//! retained speedup — the paper's headline "within ~10% of Best Attainable".
//!
//! Run with: `cargo run --release --example confidential_service`

use proteus::{optimize_model, ObfuscatedModel, Proteus, ProteusConfig};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};

/// The optimizer party: receives bytes, returns bytes. Never sees the
/// protected model, the plan, or the real positions.
fn optimization_service(wire: bytes::Bytes) -> Result<bytes::Bytes, Box<dyn std::error::Error>> {
    let bucket = ObfuscatedModel::from_bytes(wire)?;
    println!(
        "  [service] received {} buckets, {} subgraphs total",
        bucket.num_buckets(),
        bucket.total_subgraphs()
    );
    let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));
    Ok(optimized.to_bytes())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // owner side ----------------------------------------------------------
    let protected = build(ModelKind::GoogleNet);
    println!(
        "[owner] protecting {} ({} nodes)",
        protected.name(),
        protected.len()
    );

    let config = ProteusConfig {
        k: 4,
        graphrnn: GraphRnnConfig {
            epochs: 5,
            ..Default::default()
        },
        topology_pool: 80,
        ..Default::default()
    };
    let corpus: Vec<_> = [ModelKind::ResNet, ModelKind::MobileNet, ModelKind::DenseNet]
        .iter()
        .map(|&k| build(k))
        .collect();
    let proteus = Proteus::train(config, &corpus);
    let (bucket, secrets) = proteus.obfuscate(&protected, &TensorMap::new())?;
    let wire = bucket.to_bytes();
    println!(
        "[owner] sending {} bytes across the trust boundary",
        wire.len()
    );

    // trust boundary ------------------------------------------------------
    let optimized_wire = optimization_service(wire)?;

    // owner side ----------------------------------------------------------
    let optimized = ObfuscatedModel::from_bytes(optimized_wire)?;
    let (model, _params) = proteus.deobfuscate(&secrets, &optimized)?;
    model.validate()?;

    let optimizer = Optimizer::new(Profile::OrtLike);
    let unopt = optimizer.estimate_us(&protected)?;
    let (best_graph, _, _) = optimizer.optimize(&protected, &TensorMap::new());
    let best = optimizer.estimate_us(&best_graph)?;
    let with_proteus = optimizer.estimate_us(&model)?;
    println!("[owner] reassembled optimized model: {} nodes", model.len());
    println!("[owner] latency estimate:");
    println!("          unoptimized      {unopt:10.1} us");
    println!(
        "          best attainable  {best:10.1} us  ({:.2}x)",
        unopt / best
    );
    println!(
        "          with Proteus     {with_proteus:10.1} us  ({:.2}x)",
        unopt / with_proteus
    );
    println!(
        "[owner] confidentiality cost: {:.1}% slower than best attainable (paper: <=10% avg)",
        (with_proteus - best) / best * 100.0
    );
    Ok(())
}
