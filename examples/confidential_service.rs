//! A two-party "optimization as a service" scenario over the streaming
//! wire protocol, mirroring the paper's workflow (Figure 1) with an
//! explicit trust boundary: only versioned, checksummed bucket frames
//! cross it.
//!
//! The model owner protects a full zoo model (GoogLeNet) and streams one
//! sealed bucket at a time to the service thread, which optimizes frames
//! as they arrive — bucket *i* is being optimized while the owner is
//! still generating bucket *i + 1* — and returns them over its own
//! channel. A `DeobfuscationSession` reassembles the optimized model
//! from frames in whatever order they come back.
//!
//! Run with: `cargo run --release --example confidential_service`

use proteus::{DeobfuscationSession, Proteus, ProteusConfig, SealedBucket};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::mpsc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // owner side ----------------------------------------------------------
    let protected = build(ModelKind::GoogleNet);
    println!(
        "[owner] protecting {} ({} nodes)",
        protected.name(),
        protected.len()
    );

    let config = ProteusConfig {
        k: 4,
        graphrnn: GraphRnnConfig {
            epochs: 5,
            ..Default::default()
        },
        topology_pool: 80,
        ..Default::default()
    };
    let corpus: Vec<_> = [ModelKind::ResNet, ModelKind::MobileNet, ModelKind::DenseNet]
        .iter()
        .map(|&k| build(k))
        .collect();
    // train once; the instance then serves any number of requests
    let proteus = Proteus::builder().config(config).corpus(corpus).train()?;

    // every request gets its own id — same id, byte-identical frames
    let request_id = std::env::var("PROTEUS_REQUEST_ID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xCAFE);
    let start = Instant::now();
    let mut session = proteus.obfuscate_session(&protected, &TensorMap::new(), request_id)?;
    println!(
        "[owner] request {request_id:#x}: streaming {} buckets\n",
        session.num_buckets()
    );

    // trust boundary: two channels of frame bytes ------------------------
    let (to_service, service_inbox) = mpsc::channel::<bytes::Bytes>();
    let (to_owner, owner_inbox) = mpsc::channel::<bytes::Bytes>();

    let (reassembled, wire_bytes) = std::thread::scope(
        |scope| -> Result<_, Box<dyn std::error::Error + Send + Sync>> {
            // The optimizer party: receives frames, returns frames. Never
            // sees the protected model, the plan, or the real positions.
            // One Optimizer handle (and its rule catalog) is reused across
            // every frame of the stream.
            scope.spawn(move || {
                let optimizer = Optimizer::new(Profile::OrtLike);
                for wire in service_inbox {
                    let frame = match SealedBucket::from_bytes(wire) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("  [service] rejecting frame: {e}");
                            continue;
                        }
                    };
                    let t = Instant::now();
                    let optimized = frame.optimize(&optimizer, None);
                    println!(
                        "  [service] t={:>6.1}ms bucket {}/{} optimized ({} members, {:.1}ms)",
                        start.elapsed().as_secs_f64() * 1e3,
                        frame.bucket_index + 1,
                        frame.num_buckets,
                        frame.bucket.members.len(),
                        t.elapsed().as_secs_f64() * 1e3,
                    );
                    if to_owner.send(optimized.to_bytes()).is_err() {
                        break; // owner hung up
                    }
                }
                // dropping `to_owner` closes the return stream
            });

            // owner: generate and ship frames one at a time; the service
            // overlaps its optimization with our generation of the next
            // bucket
            let mut wire_bytes = 0usize;
            while let Some(frame) = session.next_frame() {
                let wire = frame.to_bytes();
                wire_bytes += wire.len();
                println!(
                    "[owner]   t={:>6.1}ms bucket {}/{} sealed ({} bytes)",
                    start.elapsed().as_secs_f64() * 1e3,
                    frame.bucket_index + 1,
                    frame.num_buckets,
                    wire.len(),
                );
                to_service.send(wire)?;
            }
            drop(to_service); // end of stream
            let secrets = session.finish()?;

            // frames come back in completion order; the session accepts any
            let mut reassembly = DeobfuscationSession::new(&secrets);
            for wire in owner_inbox {
                reassembly.accept_bytes(wire)?;
            }
            Ok((reassembly.finish()?, wire_bytes))
        },
    )
    .map_err(|e| -> Box<dyn std::error::Error> { e })?;

    let (model, _params) = reassembled;
    model.validate()?;
    println!(
        "\n[owner] t={:>6.1}ms reassembled optimized model: {} nodes, {} frame bytes total",
        start.elapsed().as_secs_f64() * 1e3,
        model.len(),
        wire_bytes,
    );

    // owner side: what did confidentiality cost? -------------------------
    let optimizer = Optimizer::new(Profile::OrtLike);
    let unopt = optimizer.estimate_us(&protected)?;
    let (best_graph, _, _) = optimizer.optimize(&protected, &TensorMap::new());
    let best = optimizer.estimate_us(&best_graph)?;
    let with_proteus = optimizer.estimate_us(&model)?;
    println!("[owner] latency estimate:");
    println!("          unoptimized      {unopt:10.1} us");
    println!(
        "          best attainable  {best:10.1} us  ({:.2}x)",
        unopt / best
    );
    println!(
        "          with Proteus     {with_proteus:10.1} us  ({:.2}x)",
        unopt / with_proteus
    );
    println!(
        "[owner] confidentiality cost: {:.1}% slower than best attainable for this \
         request's partitioning\n        (paper: ~10% averaged across models; the calibrated \
         fig4 reproduction measures a 1.07-1.14x geomean)",
        (with_proteus - best) / best * 100.0
    );
    Ok(())
}
