//! Render real subgraphs and Proteus sentinels side by side as Graphviz
//! DOT, like the paper's survey material and appendix Figures 12/13.
//! Pipe any block into `dot -Tpng` to see it.
//!
//! Run with: `cargo run --release --example sentinel_gallery`

use proteus::{Proteus, ProteusConfig, SentinelMode};
use proteus_graph::{dot::to_dot, GraphStats, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProteusConfig {
        k: 2,
        graphrnn: GraphRnnConfig {
            epochs: 5,
            ..Default::default()
        },
        topology_pool: 80,
        ..Default::default()
    };
    let corpus: Vec<_> = [
        ModelKind::ResNet,
        ModelKind::MobileNet,
        ModelKind::GoogleNet,
    ]
    .iter()
    .map(|&k| build(k))
    .collect();
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(2024);

    // pick survey-sized pieces from two very different models
    for kind in [ModelKind::SEResNet, ModelKind::DistilBert] {
        let g = build(kind);
        let a = partition_by_size(&g, 10, 8, 17);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a)?;
        let piece = plan
            .pieces
            .iter()
            .map(|p| p.graph.clone())
            .find(|g| (8..=16).contains(&g.len()))
            .expect("a survey-sized piece exists");
        let sentinel = proteus
            .factory()
            .generate(&piece, 1, SentinelMode::Generative, &mut rng)
            .remove(0);

        let ps = GraphStats::of(&piece);
        let ss = GraphStats::of(&sentinel);
        println!("//==================================================================");
        println!(
            "// {kind}: REAL subgraph ({} nodes, avg deg {:.2}, diam {})",
            piece.len(),
            ps.avg_degree,
            ps.diameter
        );
        println!("//==================================================================");
        println!("{}", to_dot(&piece));
        println!("//------------------------------------------------------------------");
        println!(
            "// {kind}: SENTINEL ({} nodes, avg deg {:.2}, diam {})",
            sentinel.len(),
            ss.avg_degree,
            ss.diameter
        );
        println!("//------------------------------------------------------------------");
        println!("{}", to_dot(&sentinel));
    }
    println!("// Render with: cargo run --example sentinel_gallery | csplit - '/^\\/\\/====/' ...");
    println!("// or paste a digraph block into https://dreampuf.github.io/GraphvizOnline");
    Ok(())
}
