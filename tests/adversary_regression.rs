//! Adversary accuracy regression bands: the three attacker families of
//! the paper's §5.3 evaluation, run on a fixed-seed zoo sample, must stay
//! inside pinned accuracy bands — so a runtime/scheduling refactor (like
//! the serving pool) cannot silently change obfuscation quality. The
//! sentinel generator, the attack harness, and every seed here are fully
//! deterministic; drift outside a band means the *obfuscation output*
//! changed, not the measurement.
//!
//! Bands are pinned wide enough to absorb harmless float-association
//! differences across platforms, and tight enough that "sentinels became
//! trivially distinguishable" (or "the classifier went blind") fails.

use proteus_adversary::{attack_buckets, ExpertReviewer, StatsAdversary};
use proteus_bench::{
    buckets_of, build_material, train_adversary, training_examples, AttackScale, ModelMaterial,
};
use proteus_graph::Graph;
use proteus_models::ModelKind;
use std::sync::OnceLock;

const SEED: u64 = 0x5EED;
const HOLDOUT: ModelKind = ModelKind::AlexNet;

/// Leave-one-out material for a fixed three-model sample, built once.
fn materials() -> &'static Vec<ModelMaterial> {
    static MATERIALS: OnceLock<Vec<ModelMaterial>> = OnceLock::new();
    MATERIALS.get_or_init(|| {
        let scale = AttackScale {
            k: 3,
            k_train: 2,
            rnn_epochs: 2,
            pool: 30,
            gnn_epochs: 3,
        };
        [HOLDOUT, ModelKind::MobileNet, ModelKind::ResNet]
            .iter()
            .map(|&kind| build_material(kind, 8, scale, SEED))
            .collect()
    })
}

/// The holdout model's pieces and sentinels as `(graph, is_sentinel)`
/// pairs — the evaluation set for the threshold adversaries.
fn labelled_holdout() -> Vec<(Graph, bool)> {
    let m = materials()
        .iter()
        .find(|m| m.kind == HOLDOUT)
        .expect("holdout material");
    let mut out = Vec::new();
    for (piece, sentinels) in m.pieces.iter().zip(&m.proteus_sentinels) {
        out.push((piece.clone(), false));
        for s in sentinels {
            out.push((s.clone(), true));
        }
    }
    out
}

#[test]
fn sage_classifier_attack_stays_in_band() {
    // full leave-one-out protocol: attack every sample model with a
    // classifier trained on the other two, aggregate over all 72
    // sentinels (3 models x 8 buckets x k=3) so the band has fine
    // granularity
    let materials = materials();
    let mut specificities = Vec::new();
    let mut log10_total = 0.0;
    for m in materials.iter() {
        let examples = training_examples(materials, m.kind, false, 2);
        assert!(!examples.is_empty());
        let clf = train_adversary(&examples, 3, SEED);
        let report = attack_buckets(&clf, &buckets_of(m, false));
        assert_eq!(report.n, 8);
        assert_eq!(report.k, 3);
        // α=1 semantics: the threshold keeps every real subgraph by
        // construction, so γ is a probability strictly inside (0, 1)
        assert!(
            report.min_gamma > 0.0 && report.min_gamma < 1.0,
            "{}: degenerate gamma {}",
            m.kind,
            report.min_gamma
        );
        specificities.push(report.specificity);
        log10_total += report.log10_candidates;
    }
    let mean_specificity = specificities.iter().sum::<f64>() / specificities.len() as f64;
    eprintln!("sage mean specificity {mean_specificity:.3}, log10 candidates {log10_total:.2}, per-model {specificities:?}");
    // pinned around the fixed-seed measurement (0.819 at this quick
    // scale): a drop below the floor means the classifier went blind, a
    // rise to 1.0 means every sentinel became trivially separable
    assert!(
        (0.35..=0.95).contains(&mean_specificity),
        "Sage mean specificity {mean_specificity:.3} left the pinned band [0.35, 0.95] \
         (per-model: {specificities:?})"
    );
    // the aggregate surviving search space must not collapse to the real
    // models (measured 3.36; log10 = 0 would mean every sentinel
    // eliminated everywhere)
    assert!(
        log10_total >= 0.8,
        "search space collapsed to 10^{log10_total:.2} across the sample"
    );
}

#[test]
fn stats_adversary_accuracy_stays_in_band() {
    // fit on the *other* models' real pieces (the adversary's public
    // knowledge), evaluate on the holdout's pieces + sentinels
    let reals: Vec<Graph> = materials()
        .iter()
        .filter(|m| m.kind != HOLDOUT)
        .flat_map(|m| m.pieces.iter().cloned())
        .collect();
    let adv = StatsAdversary::fit(&reals, 0.05);
    let labelled = labelled_holdout();
    let acc = adv.accuracy(&labelled);
    eprintln!("stats adversary accuracy {acc:.3}");
    // statistics-band sentinels keep the heuristic near chance; the test
    // pins both directions — a drop below the floor means the adversary
    // broke, a jump above the ceiling means the sentinels' statistics
    // drifted out of the real models' band
    assert!(
        (0.10..=0.75).contains(&acc),
        "StatsAdversary accuracy {acc:.3} left the pinned band [0.10, 0.75] (measured 0.250)"
    );
}

#[test]
fn expert_reviewer_accuracy_stays_in_band() {
    let expert = ExpertReviewer::default();
    let labelled = labelled_holdout();
    let acc = expert.accuracy(&labelled);
    eprintln!("expert reviewer accuracy {acc:.3}");
    // semantic filtering keeps codified expert heuristics near chance
    // (paper §5.3.3: experts did no better than guessing)
    assert!(
        (0.10..=0.80).contains(&acc),
        "ExpertReviewer accuracy {acc:.3} left the pinned band [0.10, 0.80] (measured 0.250)"
    );
}

#[test]
fn fixed_seed_material_is_deterministic() {
    // the regression bands above are only meaningful if the fixture is
    // reproducible: rebuilding one material with the same seed must give
    // identical sentinels
    let scale = AttackScale {
        k: 2,
        k_train: 1,
        rnn_epochs: 1,
        pool: 15,
        gnn_epochs: 1,
    };
    let a = build_material(HOLDOUT, 2, scale, SEED);
    let b = build_material(HOLDOUT, 2, scale, SEED);
    assert_eq!(a.pieces, b.pieces);
    assert_eq!(a.proteus_sentinels, b.proteus_sentinels);
}
