//! Adversary accuracy regression bands: the paper's three attacker
//! families (§5.3) plus the escalated learned structural attacker, run
//! leave-one-out on a fixed-seed zoo sample that spans the modern
//! families (CNN, GNN, U-Net), must stay inside pinned accuracy bands —
//! so a runtime/scheduling refactor (like the serving pool) cannot
//! silently change obfuscation quality. The sentinel generator, the
//! attack harness, and every seed here are fully deterministic; drift
//! outside a band means the *obfuscation output* changed, not the
//! measurement.
//!
//! Classifier trainings are averaged over the fixed seed set of
//! [`adversary_seeds`] (≥3 seeds, overridable via
//! `PROTEUS_ADVERSARY_SEEDS` so CI can re-run the bands under alternate
//! seeds): single training draws are noisy, the seed-mean is stable, and
//! each band is an explicit tolerance around the seed-mean measurement.

use proteus_adversary::{attack_buckets, ExpertReviewer, StatsAdversary};
use proteus_bench::{
    adversary_seeds, buckets_of, build_material, mean_over_seeds, structural_examples,
    train_adversary, train_structural_adversary, training_examples, AttackScale, ModelMaterial,
};
use proteus_graph::Graph;
use proteus_models::ModelKind;
use std::sync::OnceLock;

const SEED: u64 = 0x5EED;
const HOLDOUT: ModelKind = ModelKind::AlexNet;

/// The leave-one-out sample: three paper CNNs plus one model from each
/// modern family small enough for tier-1 (the decoder's scale is covered
/// by the release-mode leakage harness).
const SAMPLE: [ModelKind; 5] = [
    HOLDOUT,
    ModelKind::MobileNet,
    ModelKind::ResNet,
    ModelKind::GraphSage,
    ModelKind::UNet,
];

/// Leave-one-out material for the fixed sample, built once. The sentinel
/// factory behind each material trains on the full zoo registry minus the
/// protected model.
fn materials() -> &'static Vec<ModelMaterial> {
    static MATERIALS: OnceLock<Vec<ModelMaterial>> = OnceLock::new();
    MATERIALS.get_or_init(|| {
        let scale = AttackScale {
            k: 3,
            k_train: 2,
            rnn_epochs: 2,
            pool: 30,
            gnn_epochs: 3,
        };
        SAMPLE
            .iter()
            .map(|&kind| build_material(kind, 8, scale, SEED))
            .collect()
    })
}

/// The holdout model's pieces and sentinels as `(graph, is_sentinel)`
/// pairs — the evaluation set for the threshold adversaries.
fn labelled_holdout() -> Vec<(Graph, bool)> {
    let m = materials()
        .iter()
        .find(|m| m.kind == HOLDOUT)
        .expect("holdout material");
    let mut out = Vec::new();
    for (piece, sentinels) in m.pieces.iter().zip(&m.proteus_sentinels) {
        out.push((piece.clone(), false));
        for s in sentinels {
            out.push((s.clone(), true));
        }
    }
    out
}

#[test]
fn sage_classifier_attack_stays_in_band() {
    // full leave-one-out protocol: attack every sample model with a
    // classifier trained on the other four, aggregate over all 120
    // sentinels (5 models x 8 buckets x k=3), and average the mean
    // specificity over the fixed seed set
    let materials = materials();
    let seeds = adversary_seeds();
    assert!(seeds.len() >= 3, "band needs >= 3 seeds, got {seeds:?}");
    let mut log10_total = 0.0;
    let mean_specificity = mean_over_seeds(&seeds, |seed| {
        let mut specificities = Vec::new();
        for m in materials.iter() {
            let examples = training_examples(materials, m.kind, false, 2);
            assert!(!examples.is_empty());
            let clf = train_adversary(&examples, 3, seed);
            let report = attack_buckets(&clf, &buckets_of(m, false));
            assert_eq!(report.n, 8);
            assert_eq!(report.k, 3);
            // α=1 semantics: the threshold keeps every real subgraph by
            // construction, so γ is a probability strictly inside (0, 1)
            assert!(
                report.min_gamma > 0.0 && report.min_gamma < 1.0,
                "{}: degenerate gamma {}",
                m.kind,
                report.min_gamma
            );
            specificities.push(report.specificity);
            if seed == seeds[0] {
                log10_total += report.log10_candidates;
            }
        }
        specificities.iter().sum::<f64>() / specificities.len() as f64
    });
    eprintln!(
        "sage seed-mean specificity {mean_specificity:.3}, log10 candidates {log10_total:.2}"
    );
    // pinned as seed-mean ± tolerance (measured 0.692 over the default
    // seed set at this quick scale, tolerance ±0.25): a drop below the
    // floor means the classifier went blind, a rise to 1.0 means every
    // sentinel became trivially separable
    assert!(
        (0.44..=0.94).contains(&mean_specificity),
        "Sage seed-mean specificity {mean_specificity:.3} left the pinned band [0.44, 0.94]"
    );
    // the aggregate surviving search space must not collapse to the real
    // models (log10 = 0 would mean every sentinel eliminated everywhere)
    assert!(
        log10_total >= 0.8,
        "search space collapsed to 10^{log10_total:.2} across the sample"
    );
}

#[test]
fn learned_structural_attacker_stays_in_band() {
    // the escalated attacker: same leave-one-out protocol, with the
    // whole-graph structural summary side input and mean+max readout,
    // seed-averaged like the Sage band
    let materials = materials();
    let seeds = adversary_seeds();
    assert!(seeds.len() >= 3, "band needs >= 3 seeds, got {seeds:?}");
    let mean_specificity = mean_over_seeds(&seeds, |seed| {
        let mut specificities = Vec::new();
        for m in materials.iter() {
            let examples = structural_examples(materials, m.kind, false, 2);
            assert!(!examples.is_empty());
            let clf = train_structural_adversary(&examples, 3, seed);
            let report = attack_buckets(&clf, &buckets_of(m, false));
            assert_eq!(report.n, 8);
            assert_eq!(report.k, 3);
            assert!(
                report.min_gamma > 0.0 && report.min_gamma < 1.0,
                "{}: degenerate gamma {}",
                m.kind,
                report.min_gamma
            );
            specificities.push(report.specificity);
        }
        specificities.iter().sum::<f64>() / specificities.len() as f64
    });
    eprintln!("structural seed-mean specificity {mean_specificity:.3}");
    // pinned as seed-mean ± tolerance (measured 0.683 over the default
    // seed set, tolerance ±0.25): the structural attacker may beat Sage,
    // but sentinels must never become trivially separable under it
    assert!(
        (0.43..=0.93).contains(&mean_specificity),
        "Structural seed-mean specificity {mean_specificity:.3} left the pinned band [0.43, 0.93]"
    );
}

#[test]
fn stats_adversary_accuracy_stays_in_band() {
    // fit on the *other* models' real pieces (the adversary's public
    // knowledge), evaluate on the holdout's pieces + sentinels
    let reals: Vec<Graph> = materials()
        .iter()
        .filter(|m| m.kind != HOLDOUT)
        .flat_map(|m| m.pieces.iter().cloned())
        .collect();
    let adv = StatsAdversary::fit(&reals, 0.05);
    let labelled = labelled_holdout();
    let acc = adv.accuracy(&labelled);
    eprintln!("stats adversary accuracy {acc:.3}");
    // statistics-band sentinels keep the heuristic near chance; the test
    // pins both directions — a drop below the floor means the adversary
    // broke, a jump above the ceiling means the sentinels' statistics
    // drifted out of the real models' band
    assert!(
        (0.10..=0.75).contains(&acc),
        "StatsAdversary accuracy {acc:.3} left the pinned band [0.10, 0.75]"
    );
}

#[test]
fn expert_reviewer_accuracy_stays_in_band() {
    let expert = ExpertReviewer::default();
    let labelled = labelled_holdout();
    let acc = expert.accuracy(&labelled);
    eprintln!("expert reviewer accuracy {acc:.3}");
    // semantic filtering keeps codified expert heuristics near chance
    // (paper §5.3.3: experts did no better than guessing)
    assert!(
        (0.10..=0.80).contains(&acc),
        "ExpertReviewer accuracy {acc:.3} left the pinned band [0.10, 0.80]"
    );
}

#[test]
fn fixed_seed_material_is_deterministic() {
    // the regression bands above are only meaningful if the fixture is
    // reproducible: rebuilding one material with the same seed must give
    // identical sentinels
    let scale = AttackScale {
        k: 2,
        k_train: 1,
        rnn_epochs: 1,
        pool: 15,
        gnn_epochs: 1,
    };
    let a = build_material(HOLDOUT, 2, scale, SEED);
    let b = build_material(HOLDOUT, 2, scale, SEED);
    assert_eq!(a.pieces, b.pieces);
    assert_eq!(a.proteus_sentinels, b.proteus_sentinels);
}
