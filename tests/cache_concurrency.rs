//! Concurrent-mutation property test for the optimized-member cache
//! ([`OptimizedCache`]): threads racing `insert`/`lookup` against a
//! capacity-bounded cache under constant FIFO eviction must preserve
//! three properties at **every** observation point:
//!
//! 1. a hit is byte-identical to a fresh optimization of that member
//!    (the cache may only ever memoize, never corrupt);
//! 2. `len() <= capacity()` — eviction keeps the bound under races;
//! 3. hit/miss accounting stays consistent (`hits + misses` equals the
//!    number of lookups issued).
//!
//! Runs on the workspace proptest shim: deterministic seeds, no
//! shrinking. CI exercises this suite in release in the `fleet-chaos`
//! job alongside the chaos battery.

use proptest::{proptest, ProptestConfig};
use proteus::serve::OptimizedCache;
use proteus::splitmix64;
use proteus_graph::{Activation, ConvAttrs, Graph, Op, TensorMap};
use proteus_opt::{Optimizer, Profile};
use std::sync::{Arc, OnceLock};

/// One cacheable member: its key plus the canonical optimization result
/// every hit must be identical to.
struct Expected {
    key: bytes::Bytes,
    graph: Graph,
    params: TensorMap,
}

/// A small sentinel-sized member, distinct per `variant` (cached members
/// in production are single bucket pieces, not whole models — keeping
/// them small also keeps the race loop dense enough to actually contend).
fn member_graph(variant: usize) -> (Graph, TensorMap) {
    let channels = 2 + variant;
    let mut g = Graph::new("cache-member");
    let x = g.input([1, 3, 6, 6]);
    let c = g.add(
        Op::Conv(ConvAttrs::new(3, channels, 3).padding(1).bias(false)),
        [x],
    );
    let r = g.add(Op::Activation(Activation::Relu), [c]);
    g.set_outputs([r]);
    let params = TensorMap::init_random(&g, 1000 + variant as u64);
    (g, params)
}

/// A fixed zoo of distinct members with their fresh-optimization
/// results, computed once (optimization is deterministic, so this *is*
/// the canon every cached hit is checked against).
fn expectations() -> &'static Vec<Expected> {
    static TABLE: OnceLock<Vec<Expected>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let optimizer = Optimizer::new(Profile::OrtLike);
        (0..6)
            .map(|variant| {
                let (graph, params) = member_graph(variant);
                let key = OptimizedCache::key_for(Profile::OrtLike, &graph, &params);
                let (opt_graph, opt_params, _) = optimizer.optimize(&graph, &params);
                Expected {
                    key,
                    graph: opt_graph,
                    params: opt_params,
                }
            })
            .collect()
    })
}

/// Deterministic FIFO pin: with a full cache, each insert evicts exactly
/// the *oldest* resident entry, in insertion order. This is the
/// eviction sequence the cache has always had; the bucket storage moving
/// from `Vec::remove(0)` to `VecDeque::pop_front` must not change it.
#[test]
fn eviction_order_is_exactly_fifo() {
    let table = expectations();
    for capacity in 1..=4usize {
        let cache = OptimizedCache::new(capacity);
        for (i, item) in table.iter().enumerate() {
            cache.insert(item.key.clone(), item.graph.clone(), item.params.clone());
            assert_eq!(cache.len(), capacity.min(i + 1));
            // exactly the last `capacity` inserts are resident — the
            // prefix was evicted oldest-first
            for (j, probe) in table.iter().enumerate() {
                let resident = cache.lookup(&probe.key).is_some();
                let expected = j <= i && j + capacity > i;
                assert_eq!(
                    resident, expected,
                    "capacity {capacity}: after inserting 0..={i}, member {j} \
                     residency diverged from FIFO order"
                );
            }
        }
        // re-inserting a resident key is a no-op: it must neither evict
        // nor change the order (member 5-capacity..6 are resident here)
        let oldest = &table[table.len() - capacity];
        cache.insert(
            oldest.key.clone(),
            oldest.graph.clone(),
            oldest.params.clone(),
        );
        assert_eq!(cache.len(), capacity);
        assert!(cache.lookup(&oldest.key).is_some());
        if capacity > 1 {
            let newest = &table[table.len() - 1];
            assert!(
                cache.lookup(&newest.key).is_some(),
                "capacity {capacity}: duplicate insert evicted the newest entry"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn racing_inserts_and_lookups_stay_canonical_and_bounded(
        seed in proptest::num::u64::ANY,
        capacity in 1usize..=4,
        threads in 2usize..=4,
    ) {
        const OPS_PER_THREAD: usize = 150;
        let table = expectations();
        let cache = Arc::new(OptimizedCache::new(capacity));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let table = expectations();
                    for i in 0..OPS_PER_THREAD {
                        let draw = splitmix64(
                            seed ^ ((t as u64) << 32) ^ (i as u64).wrapping_mul(0x9E37),
                        );
                        let item = &table[(draw as usize >> 8) % table.len()];
                        if draw & 1 == 0 {
                            // more members than capacity: inserts race
                            // each other and the FIFO evictor constantly
                            cache.insert(
                                item.key.clone(),
                                item.graph.clone(),
                                item.params.clone(),
                            );
                        } else if let Some(hit) = cache.lookup(&item.key) {
                            // property 1: a hit is the fresh optimization
                            assert_eq!(
                                hit.graph, item.graph,
                                "cache hit diverged from fresh optimization"
                            );
                            assert_eq!(hit.params, item.params);
                        }
                        // property 2, at every observation point
                        let len = cache.len();
                        assert!(
                            len <= cache.capacity(),
                            "len {len} exceeded capacity {} mid-race",
                            cache.capacity()
                        );
                    }
                })
            })
            .collect();
        let mut lookups = 0usize;
        for w in workers {
            w.join().expect("cache race thread");
        }
        // reconstruct how many lookups the threads issued (same draws)
        for t in 0..threads {
            for i in 0..OPS_PER_THREAD {
                let draw = splitmix64(
                    seed ^ ((t as u64) << 32) ^ (i as u64).wrapping_mul(0x9E37),
                );
                if draw & 1 == 1 {
                    lookups += 1;
                }
            }
        }
        // property 3: accounting is exact even under contention
        assert_eq!(cache.hits() + cache.misses(), lookups);
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.poison_heals(), 0, "no fault armed, no heal");
        // settled state: whatever survived eviction still hits canonically
        for item in table {
            if let Some(hit) = cache.lookup(&item.key) {
                assert_eq!(hit.graph, item.graph);
                assert_eq!(hit.params, item.params);
            }
        }
    }

    #[test]
    fn disabled_cache_stays_empty_under_races(seed in proptest::num::u64::ANY) {
        let cache = Arc::new(OptimizedCache::new(0));
        let workers: Vec<_> = (0..3)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let table = expectations();
                    for i in 0..40usize {
                        let draw = splitmix64(seed ^ (t as u64) ^ ((i as u64) << 16));
                        let item = &table[(draw as usize >> 8) % table.len()];
                        cache.insert(
                            item.key.clone(),
                            item.graph.clone(),
                            item.params.clone(),
                        );
                        assert!(cache.lookup(&item.key).is_none());
                        assert_eq!(cache.len(), 0);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("cache race thread");
        }
        assert_eq!(cache.hits(), 0);
    }
}
