//! Loopback end-to-end coverage for the TCP serving boundary
//! (`proteus-net`): the deployed split must be **bit-identical** to the
//! in-process session path, and every rejection at the socket boundary
//! must surface as a *typed* value, never a silent disconnect.
//!
//! - zoo-wide multi-tenant parity: every model of the 13-model zoo,
//!   streamed over real sockets by concurrent tenants with interleaved
//!   request frames, reassembles to the same bytes as optimizing the
//!   same frames in-process;
//! - mid-stream client disconnect: the server lane fails closed (no
//!   partial frame escapes, the server stays healthy);
//! - bad auth / fingerprint mismatch / version skew: typed handshake
//!   rejections;
//! - per-tenant quotas and connection limits: typed admission
//!   rejections;
//! - graceful drain: in-flight requests complete through shutdown, new
//!   connections are refused after it.
//!
//! CI runs this suite in release mode (the `net-e2e` job).

use proteus::serve::ServeRuntime;
use proteus::{
    DeobfuscationSession, PartitionSpec, Proteus, ProteusConfig, SealedBucket, ServeConfig,
};
use proteus_graph::wire::ErrorCode;
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_net::handshake::{read_hello_bytes, ClientHello, ServerHello};
use proteus_net::{
    FrameReader, FrameWriter, NetBackend, NetClient, NetRequest, NetServer, NetServerConfig,
    TenantAuth,
};
use proteus_opt::{Optimizer, Profile};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn quick_config() -> ProteusConfig {
    ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(3),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    }
}

/// One shared trained instance for the whole suite — training dominates
/// test wall-clock and every test only needs *a* trained owner/server
/// pair that agree on state.
fn shared_proteus() -> Arc<Proteus> {
    static SHARED: OnceLock<Arc<Proteus>> = OnceLock::new();
    Arc::clone(
        SHARED
            .get_or_init(|| Arc::new(Proteus::train(quick_config(), &[build(ModelKind::ResNet)]))),
    )
}

fn two_tenant_auth() -> Vec<TenantAuth> {
    vec![
        TenantAuth::new("alpha", "alpha-token"),
        TenantAuth::new("beta", "beta-token"),
    ]
}

/// Spawns a loopback server backed by a fresh single runtime over the
/// shared trained state.
fn spawn_server(config: NetServerConfig) -> NetServer {
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("runtime spawns");
    NetServer::bind(
        NetBackend::Runtime(runtime),
        shared_proteus().config_fingerprint(),
        config,
    )
    .expect("server binds")
}

fn default_server() -> NetServer {
    spawn_server(NetServerConfig {
        auth: two_tenant_auth(),
        ..Default::default()
    })
}

/// Owner side of one request: session frames (wire bytes), the input
/// buckets (for the serial reference), and the reassembly secrets.
struct OwnedRequest {
    request: NetRequest,
    inputs: Vec<SealedBucket>,
    secrets: proteus::ObfuscationSecrets,
    kind: ModelKind,
}

fn owned_request(kind: ModelKind, request_id: u64) -> OwnedRequest {
    let proteus = shared_proteus();
    let g = build(kind);
    let mut session = proteus
        .obfuscate_session(&g, &TensorMap::new(), request_id)
        .expect("session opens");
    let mut inputs = Vec::with_capacity(session.num_buckets());
    let mut frames = Vec::with_capacity(session.num_buckets());
    while let Some(frame) = session.next_frame() {
        frames.push(frame.to_mux_bytes(request_id));
        inputs.push(frame);
    }
    let secrets = session.finish().expect("all frames emitted");
    OwnedRequest {
        request: NetRequest { request_id, frames },
        inputs,
        secrets,
        kind,
    }
}

/// The in-process reference: the same input frames optimized serially,
/// as sorted wire bytes (completion order is scheduling-dependent).
fn serial_reference(inputs: &[SealedBucket], request_id: u64) -> Vec<Vec<u8>> {
    let optimizer = Optimizer::new(Profile::OrtLike);
    let mut want: Vec<Vec<u8>> = inputs
        .iter()
        .map(|f| {
            f.optimize(&optimizer, Some(1))
                .to_mux_bytes(request_id)
                .to_vec()
        })
        .collect();
    want.sort();
    want
}

/// Asserts one response matches its serial reference bit-for-bit and
/// reassembles into a valid optimized graph.
fn assert_parity(owned: &OwnedRequest, frames: &[bytes::Bytes]) {
    let mut got: Vec<Vec<u8>> = frames.iter().map(|b| b.to_vec()).collect();
    got.sort();
    assert_eq!(
        got,
        serial_reference(&owned.inputs, owned.request.request_id),
        "remote wire bytes diverge from the in-process path on {} (rid {})",
        owned.kind.name(),
        owned.request.request_id
    );
    let mut reassembly = DeobfuscationSession::new(&owned.secrets);
    for raw in frames {
        reassembly
            .accept_mux_bytes(raw.clone())
            .expect("optimized frame accepted");
    }
    let (graph, _params) = reassembly.finish().expect("reassembly completes");
    graph.validate().expect("optimized graph validates");
}

// ---------------------------------------------------------------------------
// zoo-wide multi-tenant parity
// ---------------------------------------------------------------------------

#[test]
fn zoo_parity_multi_tenant_over_loopback() {
    let server = default_server();
    let addr = server.local_addr();
    let fingerprint = shared_proteus().config_fingerprint();

    // three concurrent tenant connections, each multiplexing a slice of
    // the zoo as interleaved request frames on one socket
    let slices: Vec<(&str, Vec<ModelKind>)> = vec![
        ("alpha-token", ModelKind::ALL[0..5].to_vec()),
        ("beta-token", ModelKind::ALL[5..9].to_vec()),
        ("alpha-token", ModelKind::ALL[9..13].to_vec()),
    ];
    let workers: Vec<std::thread::JoinHandle<()>> = slices
        .into_iter()
        .enumerate()
        .map(|(slot, (token, kinds))| {
            std::thread::spawn(move || {
                let owned: Vec<OwnedRequest> = kinds
                    .iter()
                    .enumerate()
                    .map(|(i, &kind)| owned_request(kind, 1000 * (slot as u64 + 1) + i as u64))
                    .collect();
                let client = NetClient::connect(addr, token, fingerprint).expect("tenant connects");
                let responses = client
                    .run_requests(owned.iter().map(|o| o.request.clone()).collect())
                    .expect("wave completes");
                assert_eq!(responses.len(), owned.len());
                for (owned, response) in owned.iter().zip(&responses) {
                    let frames = response
                        .result
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{} failed remotely: {e}", owned.kind.name()));
                    assert_eq!(frames.len(), owned.inputs.len(), "{}", owned.kind.name());
                    assert_parity(owned, frames);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant thread clean");
    }
    let stats = server.shutdown(Duration::from_secs(30));
    assert_eq!(stats.connections_accepted, 3);
    assert_eq!(stats.requests_completed, 13, "whole zoo served");
    assert_eq!(stats.requests_failed, 0);
    assert_eq!(stats.handshakes_rejected, 0);
}

// ---------------------------------------------------------------------------
// typed handshake rejections
// ---------------------------------------------------------------------------

#[test]
fn bad_auth_is_rejected_typed() {
    let server = default_server();
    let fingerprint = shared_proteus().config_fingerprint();
    let err = NetClient::connect(server.local_addr(), "wrong-token", fingerprint)
        .expect_err("bad token must not connect");
    assert_eq!(err.remote_code(), Some(ErrorCode::BadAuth), "{err}");
    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.handshakes_rejected, 1);
    assert_eq!(stats.requests_completed, 0);
}

#[test]
fn fingerprint_mismatch_is_rejected_typed() {
    let server = default_server();
    let fingerprint = shared_proteus().config_fingerprint();
    let err = NetClient::connect(server.local_addr(), "alpha-token", fingerprint ^ 0xBAD)
        .expect_err("stale artifact expectation must not connect");
    assert_eq!(
        err.remote_code(),
        Some(ErrorCode::FingerprintMismatch),
        "{err}"
    );
    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.handshakes_rejected, 1);
}

#[test]
fn net_protocol_version_skew_is_rejected_typed() {
    let server = default_server();
    let fingerprint = shared_proteus().config_fingerprint();
    // speak a future handshake version by hand
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut hello = ClientHello::new(fingerprint, "alpha-token");
    hello.net_protocol = 99;
    FrameWriter::new(&mut stream)
        .write_frame(&hello.encode())
        .expect("hello written");
    let mut reader = FrameReader::new();
    let reply = read_hello_bytes(&mut stream, &mut reader).expect("server answers");
    let mut buf = reply;
    let frame = proteus_graph::wire::decode_error_frame(&mut buf).expect("typed error frame");
    assert_eq!(frame.code, ErrorCode::VersionMismatch);
    assert_eq!(frame.request_id, 0, "connection-level failure");
    drop(stream);
    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.handshakes_rejected, 1);
}

// ---------------------------------------------------------------------------
// admission control
// ---------------------------------------------------------------------------

#[test]
fn tenant_quota_rejects_excess_concurrent_requests_typed() {
    let server = spawn_server(NetServerConfig {
        auth: two_tenant_auth(),
        tenant_quota: 1,
        ..Default::default()
    });
    let fingerprint = shared_proteus().config_fingerprint();
    let first = owned_request(ModelKind::AlexNet, 41);
    let second = owned_request(ModelKind::MobileNet, 42);
    let client = NetClient::connect(server.local_addr(), "alpha-token", fingerprint)
        .expect("tenant connects");
    // frames interleave on the wire, so request 42's first frame arrives
    // while 41 is still active — deterministic quota hit
    let responses = client
        .run_requests(vec![first.request.clone(), second.request.clone()])
        .expect("wave completes");
    let ok = responses[0].result.as_ref().expect("within quota");
    assert_parity(&first, ok);
    let err = responses[1]
        .result
        .as_ref()
        .expect_err("over quota must fail typed");
    assert_eq!(err.code, ErrorCode::QuotaExceeded);
    assert_eq!(err.request_id, 42);
    let stats = server.shutdown(Duration::from_secs(30));
    assert_eq!(stats.requests_completed, 1);
    assert_eq!(stats.requests_failed, 1);
}

#[test]
fn connection_limit_rejects_excess_connections_typed() {
    let server = spawn_server(NetServerConfig {
        auth: two_tenant_auth(),
        max_connections: 1,
        ..Default::default()
    });
    let fingerprint = shared_proteus().config_fingerprint();
    let first = NetClient::connect(server.local_addr(), "alpha-token", fingerprint)
        .expect("first connection admitted");
    let err = NetClient::connect(server.local_addr(), "beta-token", fingerprint)
        .expect_err("second connection must be turned away");
    assert_eq!(err.remote_code(), Some(ErrorCode::ConnectionLimit), "{err}");
    drop(first);
    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.connections_rejected, 1);
}

// ---------------------------------------------------------------------------
// failure semantics on a live stream
// ---------------------------------------------------------------------------

#[test]
fn duplicate_frame_surfaces_typed_midstream() {
    let server = default_server();
    let fingerprint = shared_proteus().config_fingerprint();
    let owned = owned_request(ModelKind::AlexNet, 77);
    let mut frames = owned.request.frames.clone();
    frames.insert(1, frames[0].clone()); // resubmit bucket 0
    let client = NetClient::connect(server.local_addr(), "alpha-token", fingerprint)
        .expect("tenant connects");
    let err = client
        .run_request(77, frames)
        .expect_err("duplicate must surface");
    assert_eq!(err.remote_code(), Some(ErrorCode::DuplicateFrame), "{err}");
    server.shutdown(Duration::from_secs(30));
}

#[test]
fn mid_stream_disconnect_fails_closed_and_server_survives() {
    let server = default_server();
    let addr = server.local_addr();
    let fingerprint = shared_proteus().config_fingerprint();
    let owned = owned_request(ModelKind::ResNet, 55);
    assert!(
        owned.request.frames.len() >= 2,
        "needs a multi-frame request"
    );

    // raw socket: handshake, submit ONE frame of the multi-frame
    // request, then vanish mid-stream
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        FrameWriter::new(&mut stream)
            .write_frame(&ClientHello::new(fingerprint, "alpha-token").encode())
            .expect("hello written");
        let mut reader = FrameReader::new();
        let mut reply = read_hello_bytes(&mut stream, &mut reader).expect("server hello");
        ServerHello::decode(&mut reply).expect("accepted");
        FrameWriter::new(&mut stream)
            .write_frame(&owned.request.frames[0])
            .expect("first frame written");
        // dropping the stream closes both halves abruptly
    }

    // the server must absorb the abandonment and keep serving: a full
    // request on a fresh connection still round-trips with parity
    let retry = owned_request(ModelKind::ResNet, 56);
    let client =
        NetClient::connect(addr, "beta-token", fingerprint).expect("server still accepting");
    let frames = client
        .run_request(56, retry.request.frames.clone())
        .expect("post-disconnect request completes");
    assert_parity(&retry, &frames);

    let stats = server.shutdown(Duration::from_secs(30));
    assert_eq!(stats.connections_accepted, 2);
    assert_eq!(
        stats.requests_completed, 1,
        "only the live request completes"
    );
    // the abandoned lane fails closed: it is torn down and counted,
    // with no partial frame ever written to anyone
    assert_eq!(stats.requests_failed, 1);
}

/// Regression for the `requests_active` gauge: lane teardown used to
/// decrement it at four scattered sites (post-join drain, failed-lane
/// removal, completed removal, write-failure drain), and a lane hitting
/// two of them would double-decrement — wrapping the `usize` gauge to
/// ~2^64 and wedging graceful drain forever. Teardown is now single-owned
/// (`release_lane` consumes the `Lane` by value), so after any mix of
/// completed, rejected, and abandoned lanes the gauge must settle at
/// exactly zero and never read as wrapped along the way.
#[test]
fn requests_active_settles_to_zero_after_mixed_outcomes() {
    let server = default_server();
    let addr = server.local_addr();
    let fingerprint = shared_proteus().config_fingerprint();

    // outcome 1: a request that completes normally
    let done = owned_request(ModelKind::MobileNet, 71);
    let client = NetClient::connect(addr, "alpha-token", fingerprint).expect("tenant connects");
    let frames = client
        .run_request(71, done.request.frames.clone())
        .expect("request completes");
    assert_parity(&done, &frames);

    // outcome 2: a request carrying a mid-stream per-frame rejection
    // (the duplicate is refused with a typed error, the lane survives
    // and still completes — exercising the error-queue path alongside
    // the completion teardown)
    let dup = owned_request(ModelKind::AlexNet, 72);
    let mut dup_frames = dup.request.frames.clone();
    dup_frames.insert(1, dup_frames[0].clone());
    let client = NetClient::connect(addr, "beta-token", fingerprint).expect("tenant connects");
    client
        .run_request(72, dup_frames)
        .expect_err("duplicate must surface to the client");

    // outcome 3: a lane abandoned by a mid-stream disconnect (torn down
    // by the post-join drain, not the writer loop)
    {
        let abandoned = owned_request(ModelKind::ResNet, 73);
        let mut stream = TcpStream::connect(addr).expect("connect");
        FrameWriter::new(&mut stream)
            .write_frame(&ClientHello::new(fingerprint, "alpha-token").encode())
            .expect("hello written");
        let mut reader = FrameReader::new();
        let mut reply = read_hello_bytes(&mut stream, &mut reader).expect("server hello");
        ServerHello::decode(&mut reply).expect("accepted");
        FrameWriter::new(&mut stream)
            .write_frame(&abandoned.request.frames[0])
            .expect("first frame written");
        // dropping the stream abandons the lane mid-request
    }

    // every lane above is torn down exactly once: the gauge drains to 0
    // and never wraps (a double-decrement reads as ~2^64, caught by the
    // sanity bound on every observation)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let active = server.stats().requests_active;
        assert!(
            active <= 3,
            "requests_active read {active}: gauge wrapped past zero"
        );
        if active == 0 && server.stats().active_connections == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "gauge never settled: requests_active still {active}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = server.shutdown(Duration::from_secs(30));
    assert_eq!(stats.requests_active, 0, "gauge must end at exactly zero");
    assert_eq!(
        stats.requests_completed, 2,
        "clean + duplicate-carrying lanes both complete"
    );
    assert_eq!(stats.requests_failed, 1, "the abandoned lane fails closed");
}

// ---------------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------------

#[test]
fn graceful_drain_completes_in_flight_requests() {
    let server = default_server();
    let addr = server.local_addr();
    let fingerprint = shared_proteus().config_fingerprint();

    // a request big enough to still be in flight when shutdown begins
    let owned = owned_request(ModelKind::DenseNet, 91);
    let in_flight = std::thread::spawn(move || {
        let client = NetClient::connect(addr, "alpha-token", fingerprint).expect("tenant connects");
        let frames = client
            .run_request(91, owned.request.frames.clone())
            .expect("in-flight request completes through the drain");
        assert_parity(&owned, &frames);
    });
    // wait until the request's lane is actually admitted (connection
    // counts alone race the first frame's dispatch), then drain
    while server.stats().requests_active == 0 && server.stats().requests_completed == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.shutdown(Duration::from_secs(30));
    in_flight.join().expect("client thread clean");
    assert_eq!(stats.requests_completed, 1);
    assert_eq!(stats.active_connections, 0);

    // after shutdown the listener is gone: new connections are refused
    // by the OS, not left hanging
    assert!(
        NetClient::connect(addr, "alpha-token", fingerprint).is_err(),
        "post-shutdown connect must fail"
    );
}
