//! Concurrency parity stress suite for the multi-tenant serving runtime:
//! many client threads, each juggling several in-flight requests against
//! ONE shared [`ServeRuntime`], must end up with per-request deobfuscated
//! graphs and tensors **bit-identical** to the serial single-session path
//! — no matter how the work-stealing pool interleaves their frames.
//!
//! CI runs this suite in release mode (the `serve-stress` job).

use proteus::serve::ServeRuntime;
use proteus::{
    DeobfuscationSession, PartitionSpec, Proteus, ProteusConfig, SealedBucket, ServeConfig,
};
use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Graph, Op, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::collections::HashMap;
use std::sync::Arc;

fn quick_config(k: usize, n: usize) -> ProteusConfig {
    ProteusConfig {
        k,
        partitions: PartitionSpec::Count(n),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    }
}

/// An executable CNN with parameters, so parity also covers sentinel
/// parameter streams and tensor reassembly.
fn executable_cnn() -> (Graph, TensorMap) {
    let mut g = Graph::new("stress-cnn");
    let x = g.input([1, 3, 12, 12]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 8, 3).padding(1).bias(false)),
        [x],
    );
    let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c1]);
    let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
    let c2 = g.add(
        Op::Conv(ConvAttrs::new(8, 8, 3).padding(1).bias(false)),
        [r1],
    );
    let a = g.add(Op::Add, [c2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [a]);
    let f = g.add(Op::Flatten, [r2]);
    let fc = g.add(Op::Gemm(GemmAttrs::new(8 * 12 * 12, 10)), [f]);
    g.set_outputs([fc]);
    let params = TensorMap::init_random(&g, 99);
    (g, params)
}

/// The protected model of request `rid` — a rotation so concurrent
/// requests carry different shapes and parameter loads.
fn request_model(rid: u64) -> (Graph, TensorMap) {
    match rid % 3 {
        0 => executable_cnn(),
        1 => (build(ModelKind::AlexNet), TensorMap::new()),
        _ => (build(ModelKind::MobileNet), TensorMap::new()),
    }
}

/// The serial single-session reference: one request, frames optimized
/// inline one member at a time, reassembled in order.
fn serial_reference(
    proteus: &Proteus,
    optimizer: &Optimizer,
    rid: u64,
    graph: &Graph,
    params: &TensorMap,
) -> (Graph, TensorMap) {
    let mut session = proteus
        .obfuscate_session(graph, params, rid)
        .expect("session");
    let frames: Vec<SealedBucket> = session
        .by_ref()
        .map(|f| f.optimize(optimizer, Some(1)))
        .collect();
    let secrets = session.finish().expect("secrets");
    let mut reassembly = DeobfuscationSession::new(&secrets);
    for f in frames {
        reassembly.accept(f).expect("accept");
    }
    reassembly.finish().expect("finish")
}

#[test]
fn concurrent_clients_are_bit_identical_to_serial_path() {
    const CLIENTS: usize = 3; // N client threads
    const IN_FLIGHT: usize = 3; // M concurrently driven requests per thread

    let proteus = Proteus::builder()
        .config(quick_config(2, 3))
        .corpus_model(build(ModelKind::ResNet))
        .train_shared()
        .expect("train");
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 4,
            window: 2,
            // cache off: this test pins the pool's exact task accounting
            // (one task per member); cache semantics are pinned by
            // tests/serve_latency.rs
            cache_capacity: 0,
            ..Default::default()
        },
    )
    .expect("runtime");
    let optimizer = Optimizer::new(Profile::OrtLike);

    let results: Vec<(u64, Graph, TensorMap)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client in 0..CLIENTS as u64 {
            let proteus = Arc::clone(&proteus);
            let runtime = &runtime;
            joins.push(scope.spawn(move || {
                // M requests driven concurrently by one client thread:
                // round-robin one frame per request per round, so frames
                // of this client's requests interleave at the pool too
                let rids: Vec<u64> = (0..IN_FLIGHT as u64).map(|j| 100 * client + j).collect();
                let models: Vec<(Graph, TensorMap)> =
                    rids.iter().map(|&rid| request_model(rid)).collect();
                let mut sessions: Vec<_> = rids
                    .iter()
                    .zip(&models)
                    .map(|(&rid, (g, p))| proteus.obfuscate_session(g, p, rid).expect("session"))
                    .collect();
                let handles: Vec<_> = rids.iter().map(|&rid| runtime.handle(rid)).collect();
                let mut open = sessions.len();
                while open > 0 {
                    open = 0;
                    for (session, handle) in sessions.iter_mut().zip(&handles) {
                        if let Some(frame) = session.next_frame() {
                            handle.submit(frame).expect("submit");
                            open += 1;
                        }
                    }
                }
                let mut out = Vec::new();
                for ((session, handle), rid) in sessions.into_iter().zip(&handles).zip(&rids) {
                    let secrets = session.finish().expect("secrets");
                    let mut reassembly = DeobfuscationSession::new(&secrets);
                    while !reassembly.is_complete() {
                        reassembly
                            .accept(handle.recv().expect("recv"))
                            .expect("accept");
                    }
                    let (g, p) = reassembly.finish().expect("finish");
                    out.push((*rid, g, p));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });

    assert_eq!(results.len(), CLIENTS * IN_FLIGHT);
    let expected_tasks: usize = results.len() * 3 * 3; // n=3 buckets x (k+1)=3 members
    assert_eq!(
        runtime.stats().tasks_executed,
        expected_tasks,
        "every member optimized exactly once through the shared pool"
    );
    for (rid, graph, params) in results {
        let (model_graph, model_params) = request_model(rid);
        let (want_graph, want_params) =
            serial_reference(&proteus, &optimizer, rid, &model_graph, &model_params);
        assert_eq!(graph, want_graph, "request {rid:#x}: graphs diverge");
        assert_eq!(params, want_params, "request {rid:#x}: tensors diverge");
    }
}

#[test]
fn multiplexed_byte_stream_serves_interleaved_requests() {
    // One byte stream, many requests: every frame of every request is
    // encoded as a v2 multiplexed frame, the streams are interleaved
    // round-robin, a demultiplexing service loop routes them by request
    // id into one shared runtime, and the interleaved response stream is
    // demultiplexed back — each request must reassemble bit-identically
    // to its serial path.
    const REQUESTS: u64 = 4;

    let proteus = Proteus::builder()
        .config(quick_config(2, 2))
        .corpus_model(build(ModelKind::ResNet))
        .train_shared()
        .expect("train");
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 2,
            window: 4,
            ..Default::default()
        },
    )
    .expect("runtime");
    let optimizer = Optimizer::new(Profile::OrtLike);

    // owner side: generate every request's frames, interleave round-robin
    let mut secrets = HashMap::new();
    let mut per_request_frames: Vec<Vec<bytes::Bytes>> = Vec::new();
    for rid in 0..REQUESTS {
        let (g, p) = request_model(rid);
        let mut session = proteus.obfuscate_session(&g, &p, rid).expect("session");
        let frames: Vec<bytes::Bytes> = session.by_ref().map(|f| f.to_mux_bytes(rid)).collect();
        secrets.insert(rid, session.finish().expect("secrets"));
        per_request_frames.push(frames);
    }
    let max_len = per_request_frames.iter().map(Vec::len).max().unwrap();
    let mut wire_in: Vec<bytes::Bytes> = Vec::new();
    for round in 0..max_len {
        for frames in &per_request_frames {
            if let Some(frame) = frames.get(round) {
                wire_in.push(frame.clone());
            }
        }
    }

    // service loop: demultiplex by request id, one handle per request
    let mut handles: HashMap<u64, proteus::RequestHandle> = HashMap::new();
    for wire in wire_in {
        let rid = proteus_graph::peek_frame_request_id(&wire).expect("peek");
        handles
            .entry(rid)
            .or_insert_with(|| runtime.handle(rid))
            .submit_bytes(wire)
            .expect("routed submit");
    }

    // interleaved response stream: drain one frame per request per round
    let mut wire_out: Vec<bytes::Bytes> = Vec::new();
    let mut outstanding: HashMap<u64, usize> = secrets
        .iter()
        .map(|(&rid, s)| (rid, s.real_positions.len()))
        .collect();
    while outstanding.values().any(|&n| n > 0) {
        for rid in 0..REQUESTS {
            if outstanding[&rid] > 0 {
                wire_out.push(handles[&rid].recv_bytes().expect("recv"));
                *outstanding.get_mut(&rid).unwrap() -= 1;
            }
        }
    }

    // owner side: demultiplex responses into per-request reassembly
    let mut reassembly: HashMap<u64, DeobfuscationSession> = secrets
        .iter()
        .map(|(&rid, s)| (rid, DeobfuscationSession::new(s)))
        .collect();
    for wire in wire_out {
        let rid = proteus_graph::peek_frame_request_id(&wire).expect("peek");
        reassembly
            .get_mut(&rid)
            .expect("known request")
            .accept_mux_bytes(wire)
            .expect("accept");
    }
    for rid in 0..REQUESTS {
        let (got_graph, got_params) = reassembly.remove(&rid).unwrap().finish().expect("complete");
        let (g, p) = request_model(rid);
        let (want_graph, want_params) = serial_reference(&proteus, &optimizer, rid, &g, &p);
        assert_eq!(got_graph, want_graph, "request {rid}: graphs diverge");
        assert_eq!(got_params, want_params, "request {rid}: tensors diverge");
    }
}

#[test]
fn window_one_under_contention_still_converges() {
    // The tightest backpressure setting with more clients than workers:
    // every submit waits for the previous frame, nothing deadlocks, and
    // results stay correct.
    let proteus = Proteus::builder()
        .config(quick_config(1, 2))
        .corpus_model(build(ModelKind::ResNet))
        .train_shared()
        .expect("train");
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 1,
            window: 1,
            ..Default::default()
        },
    )
    .expect("runtime");
    let optimizer = Optimizer::new(Profile::OrtLike);

    let results: Vec<(u64, Graph, TensorMap)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..4u64)
            .map(|rid| {
                let proteus = Arc::clone(&proteus);
                let runtime = &runtime;
                scope.spawn(move || {
                    let (g, p) = request_model(rid);
                    let (graph, params) =
                        runtime.serve_request(&proteus, &g, &p, rid).expect("serve");
                    (rid, graph, params)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .collect()
    });
    for (rid, graph, params) in results {
        let (g, p) = request_model(rid);
        let (want_graph, want_params) = serial_reference(&proteus, &optimizer, rid, &g, &p);
        assert_eq!(graph, want_graph, "request {rid}: graphs diverge");
        assert_eq!(params, want_params, "request {rid}: tensors diverge");
    }
}
