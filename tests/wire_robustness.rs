//! Wire-protocol robustness: random buckets must round-trip exactly, and
//! every malformed input — truncation, single-byte corruption, unknown
//! versions, bad magic — must come back as a typed [`WireError`], never a
//! panic or a silent misparse.
//!
//! The `mux` module fuzzes the v2 *multiplexed* protocol: arbitrary
//! interleavings of several requests on one byte stream, duplicated
//! frames, cross-request frame injection, and mid-stream corruption must
//! yield typed errors or bit-correct reassembly — never panics, and never
//! data crossing from one request into another's output.

use bytes::Bytes;
use proteus::{Bucket, BucketMember, ObfuscatedModel, SealedBucket};
use proteus_graph::{Activation, Graph, Op, Shape, TensorMap, WireError, WIRE_VERSION};

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random small executable-ish DAGs with parameters — shaped like the
    /// anonymized subgraphs that actually cross the wire.
    fn arb_member() -> impl Strategy<Value = BucketMember> {
        (
            proptest::collection::vec((0u8..7, proptest::num::u64::ANY), 2..14),
            proptest::num::u64::ANY,
        )
            .prop_map(|(specs, seed)| {
                let mut g = Graph::new("wiretest");
                let mut ids = vec![g.input([2, 3, 4])];
                for (kind, pick) in specs {
                    let a = ids[(pick as usize) % ids.len()];
                    let b = ids[(pick as usize / 5) % ids.len()];
                    let id = match kind {
                        0 => g.add(Op::Activation(Activation::Relu), [a]),
                        1 => g.add(Op::Activation(Activation::Gelu), [a]),
                        2 => g.add(Op::Identity, [a]),
                        3 => g.add(Op::Add, [a, b]),
                        4 => g.add(Op::Mul, [a, b]),
                        5 => g.add(
                            Op::Reshape {
                                shape: Shape::from([2, 12]),
                            },
                            [a],
                        ),
                        _ => g.add(
                            Op::Transpose {
                                perm: vec![0, 2, 1],
                            },
                            [a],
                        ),
                    };
                    ids.push(id);
                }
                let last = *ids.last().expect("nonempty");
                g.set_outputs([last]);
                let params = TensorMap::init_random(&g, seed);
                BucketMember { graph: g, params }
            })
    }

    pub(super) fn arb_sealed() -> impl Strategy<Value = SealedBucket> {
        (
            proptest::collection::vec(arb_member(), 1..5),
            0u32..4,
            proptest::num::u64::ANY,
        )
            .prop_map(|(members, index, total_salt)| {
                let num_buckets = index + 1 + (total_salt % 4) as u32;
                SealedBucket {
                    bucket_index: index,
                    num_buckets,
                    bucket: Bucket { members },
                }
            })
    }

    fn assert_members_equal(a: &Bucket, b: &Bucket) {
        assert_eq!(a.members.len(), b.members.len());
        for (ma, mb) in a.members.iter().zip(&b.members) {
            // encode is compacting, so compare codec-normalized forms
            assert_eq!(ma.graph.len(), mb.graph.len());
            assert_eq!(ma.graph.edge_count(), mb.graph.edge_count());
            assert_eq!(ma.params.len(), mb.params.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sealed_bucket_roundtrips(sealed in arb_sealed()) {
            let bytes = sealed.to_bytes();
            let back = SealedBucket::from_bytes(bytes).unwrap();
            prop_assert_eq!(back.bucket_index, sealed.bucket_index);
            prop_assert_eq!(back.num_buckets, sealed.num_buckets);
            assert_members_equal(&sealed.bucket, &back.bucket);
            // a re-encode of the decoded frame is byte-stable
            let bytes_a = sealed.to_bytes();
            let bytes_b = back.to_bytes();
            prop_assert_eq!(bytes_a.to_vec(), bytes_b.to_vec());
        }

        #[test]
        fn corrupted_frames_rejected_not_panicked(
            sealed in arb_sealed(),
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let bytes = sealed.to_bytes().to_vec();
            let pos = (pos_pick as usize) % bytes.len();
            let mut raw = bytes;
            raw[pos] ^= 1u8 << bit;
            // every single-bit corruption must surface as a typed error —
            // the checksum covers header fields and payload alike
            let got = SealedBucket::from_bytes(Bytes::copy_from_slice(&raw));
            prop_assert!(got.is_err(), "corruption at byte {} bit {} was accepted", pos, bit);
        }

        #[test]
        fn truncated_frames_rejected(sealed in arb_sealed(), cut_pick in proptest::num::u64::ANY) {
            let bytes = sealed.to_bytes();
            let cut = (cut_pick as usize) % bytes.len();
            let got = SealedBucket::from_bytes(bytes.slice(0..cut));
            prop_assert!(got.is_err(), "cut at {} was accepted", cut);
        }

        #[test]
        fn unknown_versions_rejected_with_typed_error(
            sealed in arb_sealed(),
            version in proptest::num::u64::ANY,
        ) {
            // skip past the versions the library actually speaks (v1
            // single-request, v2 multiplexed)
            let version = match (version % 0xFFFF) as u16 {
                v if v <= WIRE_VERSION => WIRE_VERSION + 1 + v,
                v => v,
            };
            let mut raw = sealed.to_bytes().to_vec();
            raw[4..6].copy_from_slice(&version.to_le_bytes());
            match SealedBucket::from_bytes(Bytes::copy_from_slice(&raw)) {
                Err(WireError::UnknownVersion { got, supported }) => {
                    prop_assert_eq!(got, version);
                    prop_assert_eq!(supported, WIRE_VERSION);
                }
                other => prop_assert!(false, "expected UnknownVersion, got {:?}", other),
            }
        }

        #[test]
        fn model_blob_roundtrips_and_rejects_corruption(
            members in proptest::collection::vec(arb_member(), 2..7),
            pos_pick in proptest::num::u64::ANY,
        ) {
            // split members into two buckets
            let split = members.len() / 2;
            let model = ObfuscatedModel {
                buckets: vec![
                    Bucket { members: members[..split].to_vec() },
                    Bucket { members: members[split..].to_vec() },
                ],
            };
            let bytes = model.to_bytes();
            let back = ObfuscatedModel::from_bytes(bytes.clone()).unwrap();
            prop_assert_eq!(back.num_buckets(), model.num_buckets());
            prop_assert_eq!(back.total_subgraphs(), model.total_subgraphs());

            // corrupt one byte past the model header: typed error, no panic
            let mut raw = bytes.to_vec();
            let pos = 4 + (pos_pick as usize) % (raw.len() - 4);
            raw[pos] ^= 0x20;
            prop_assert!(
                ObfuscatedModel::from_bytes(Bytes::copy_from_slice(&raw)).is_err(),
                "corruption at byte {} was accepted", pos
            );
        }
    }
}

mod mux {
    use super::*;
    use proptest::prelude::*;
    use proteus::{
        DeobfuscationSession, ObfuscationSecrets, PartitionSpec, Proteus, ProteusConfig,
        ProteusError,
    };
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use std::sync::OnceLock;

    const RID_A: u64 = 0xAAAA;
    const RID_B: u64 = 0xB0B0;

    /// Two real obfuscation requests with *different* bucket counts, so a
    /// frame re-tagged from one stream to the other is structurally
    /// detectable (bucket-count mismatch) — plus the clean reassembly
    /// reference for each.
    struct Fixture {
        frames_a: Vec<SealedBucket>,
        secrets_a: ObfuscationSecrets,
        reference_a: (Graph, TensorMap),
        frames_b: Vec<SealedBucket>,
    }

    fn fixture() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let proteus = Proteus::train(
                ProteusConfig {
                    k: 2,
                    partitions: PartitionSpec::Count(2),
                    graphrnn: GraphRnnConfig {
                        epochs: 2,
                        max_nodes: 20,
                        ..Default::default()
                    },
                    topology_pool: 30,
                    ..Default::default()
                },
                &[build(ModelKind::ResNet)],
            );
            let g = build(ModelKind::AlexNet);
            let drive = |rid: u64, n: usize| {
                let mut config = proteus.config().clone();
                config.partitions = PartitionSpec::Count(n);
                let proteus_n = Proteus::train(config, &[build(ModelKind::ResNet)]);
                let mut session = proteus_n
                    .obfuscate_session(&g, &TensorMap::new(), rid)
                    .expect("session");
                let frames: Vec<SealedBucket> = session.by_ref().collect();
                let secrets = session.finish().expect("secrets");
                (frames, secrets)
            };
            let (frames_a, secrets_a) = drive(RID_A, 2);
            let (frames_b, _) = drive(RID_B, 3);
            let mut clean = DeobfuscationSession::new(&secrets_a);
            for f in &frames_a {
                clean.accept(f.clone()).expect("accept");
            }
            let reference_a = clean.finish().expect("reference");
            Fixture {
                frames_a,
                secrets_a,
                reference_a,
                frames_b,
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Arbitrary multiplexed streams round-trip: every frame keeps its
        // request id and its exact payload bytes — interleaving requests
        // on one stream never mixes their content.
        #[test]
        fn interleaved_mux_streams_roundtrip(
            frames in proptest::collection::vec(
                (proptest::num::u64::ANY, super::proptests::arb_sealed()),
                1..6,
            ),
        ) {
            let mut stream = bytes::BytesMut::new();
            for (rid, sealed) in &frames {
                bytes::BufMut::put_slice(&mut stream, &sealed.to_mux_bytes(*rid));
            }
            let mut buf = stream.freeze();
            for (rid, sealed) in &frames {
                let (got_rid, got) = SealedBucket::decode_mux_from(&mut buf).unwrap();
                prop_assert_eq!(got_rid, *rid);
                // byte-stable re-encode proves the payload survived intact
                prop_assert_eq!(got.to_bytes().to_vec(), sealed.to_bytes().to_vec());
            }
            prop_assert!(buf.is_empty());
        }

        // Frames of one request accepted in any order, with arbitrary
        // duplications, through the multiplexed path: first arrival wins,
        // every replay is the typed [`ProteusError::DuplicateFrame`], and
        // the reassembly is bit-identical to the in-order reference.
        #[test]
        fn arbitrary_orderings_and_duplicates_reassemble_exactly(
            order in proptest::collection::vec(0usize..2, 2..10),
        ) {
            let fx = fixture();
            // make sure every frame index appears at least once
            let mut feed: Vec<usize> = order;
            feed.extend(0..fx.frames_a.len());
            let mut reassembly = DeobfuscationSession::new(&fx.secrets_a);
            let mut accepted = vec![false; fx.frames_a.len()];
            for &i in &feed {
                let wire = fx.frames_a[i].to_mux_bytes(RID_A);
                match reassembly.accept_mux_bytes(wire) {
                    Ok(()) => {
                        prop_assert!(!accepted[i], "duplicate silently accepted");
                        accepted[i] = true;
                    }
                    Err(ProteusError::DuplicateFrame { bucket_index, request_id }) => {
                        prop_assert!(accepted[i], "fresh frame rejected as duplicate");
                        prop_assert_eq!(bucket_index as usize, i);
                        prop_assert_eq!(request_id, RID_A);
                    }
                    Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
                }
            }
            let (g, p) = reassembly.finish().unwrap();
            prop_assert_eq!(&g, &fx.reference_a.0);
            prop_assert_eq!(&p, &fx.reference_a.1);
        }

        // Cross-request injection on a multiplexed stream: frames carrying
        // another request's id are rejected before touching session state,
        // and frames *re-tagged* with our id (a misbehaving mux layer) are
        // still caught structurally. Reassembly afterwards is unpoisoned.
        #[test]
        fn cross_request_injection_never_leaks(
            inject_at in 0usize..2,
            retag in proptest::bool::ANY,
        ) {
            let fx = fixture();
            let mut reassembly = DeobfuscationSession::new(&fx.secrets_a);
            for (i, frame) in fx.frames_a.iter().enumerate() {
                if i == inject_at {
                    let alien = &fx.frames_b[i % fx.frames_b.len()];
                    let wire = if retag {
                        // attacker rewrites the header id to ours: the
                        // bucket-count mismatch still rejects it
                        alien.to_mux_bytes(RID_A)
                    } else {
                        alien.to_mux_bytes(RID_B)
                    };
                    let err = reassembly.accept_mux_bytes(wire).unwrap_err();
                    prop_assert!(
                        matches!(err, ProteusError::Protocol { .. }),
                        "injection not rejected: {:?}", err
                    );
                }
                reassembly.accept_mux_bytes(frame.to_mux_bytes(RID_A)).unwrap();
            }
            let (g, p) = reassembly.finish().unwrap();
            prop_assert_eq!(&g, &fx.reference_a.0, "injected frame leaked into output");
            prop_assert_eq!(&p, &fx.reference_a.1);
        }

        // Mid-stream corruption of an interleaved two-request stream:
        // decoding surfaces a typed error at or before the corrupted
        // frame, never panics, and every frame fully decoded beforehand
        // is intact.
        #[test]
        fn mid_stream_corruption_is_a_typed_error(
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let fx = fixture();
            // interleave A and B frames round-robin on one stream
            let mut order: Vec<(u64, &SealedBucket)> = Vec::new();
            for i in 0..fx.frames_a.len().max(fx.frames_b.len()) {
                if let Some(f) = fx.frames_a.get(i) { order.push((RID_A, f)); }
                if let Some(f) = fx.frames_b.get(i) { order.push((RID_B, f)); }
            }
            let mut stream = bytes::BytesMut::new();
            for (rid, f) in &order {
                bytes::BufMut::put_slice(&mut stream, &f.to_mux_bytes(*rid));
            }
            let mut raw = stream.freeze().to_vec();
            let pos = (pos_pick as usize) % raw.len();
            raw[pos] ^= 1u8 << bit;
            let mut buf = Bytes::copy_from_slice(&raw);
            let mut decoded = 0usize;
            let outcome = loop {
                if buf.is_empty() {
                    break Ok(());
                }
                match SealedBucket::decode_mux_from(&mut buf) {
                    Ok((rid, sealed)) => {
                        // a frame that decoded must be one of the
                        // originals, byte for byte, under its own id
                        let (want_rid, want) = order[decoded];
                        prop_assert_eq!(rid, want_rid);
                        prop_assert_eq!(
                            sealed.to_bytes().to_vec(),
                            want.to_bytes().to_vec()
                        );
                        decoded += 1;
                    }
                    Err(e) => break Err(e),
                }
            };
            prop_assert!(
                outcome.is_err(),
                "single-bit corruption at byte {} decoded {} frames cleanly",
                pos, decoded
            );
        }
    }
}

/// Fuzzes the *incremental* codec (`proteus_net::FrameReader`) that the
/// TCP boundary uses: a socket hands back arbitrary chunk boundaries, so
/// every partition of a mixed v1 / v2 / error-frame stream — including
/// pathological 1-byte reads — must reassemble the exact same frame
/// sequence, and corruption must surface as a typed fatal error, never a
/// panic or a silent resync.
mod split {
    use proptest::prelude::*;
    use proteus_graph::wire::{
        encode_error_frame, encode_frame, encode_frame_v2, ErrorCode, ErrorFrame,
    };
    use proteus_net::{FrameReader, NetError, NetFrame};

    /// One frame of any kind the stream can carry, plus its exact wire
    /// bytes and what the reader must yield for it.
    #[derive(Debug, Clone)]
    enum Expected {
        Data(Vec<u8>),
        Error(ErrorFrame),
    }

    fn arb_frame() -> impl Strategy<Value = (Vec<u8>, Expected)> {
        (
            0u8..3, // kind: v1 data, v2 data, error frame
            proptest::num::u64::ANY,
            0u32..8,
            proptest::collection::vec(proptest::num::u8::ANY, 0..48),
        )
            .prop_map(|(kind, rid, bucket, payload)| match kind {
                0 => {
                    let wire = encode_frame(bucket, &payload).to_vec();
                    (wire.clone(), Expected::Data(wire))
                }
                1 => {
                    let wire = encode_frame_v2(rid, bucket, &payload).to_vec();
                    (wire.clone(), Expected::Data(wire))
                }
                _ => {
                    let code = ErrorCode::ALL[bucket as usize % ErrorCode::ALL.len()];
                    // reuse the payload bytes as a printable detail string
                    let detail: String =
                        payload.iter().map(|b| char::from(b'a' + b % 26)).collect();
                    let frame = ErrorFrame::new(rid, code, detail);
                    (encode_error_frame(&frame).to_vec(), Expected::Error(frame))
                }
            })
    }

    /// Feeds `stream` to a fresh reader in the given chunk sizes (cycled),
    /// polling after every push, and returns everything yielded.
    fn reassemble(stream: &[u8], chunks: &[usize]) -> Result<Vec<NetFrame>, NetError> {
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let mut fed = 0;
        let mut cycle = chunks.iter().copied().cycle();
        while fed < stream.len() {
            let step = cycle.next().unwrap_or(1).max(1).min(stream.len() - fed);
            reader.push(&stream[fed..fed + step]);
            fed += step;
            while let Some(frame) = reader.try_next()? {
                out.push(frame);
            }
        }
        assert_eq!(reader.buffered(), 0, "trailing bytes left unparsed");
        Ok(out)
    }

    fn assert_sequence(got: &[NetFrame], want: &[(Vec<u8>, Expected)]) {
        assert_eq!(got.len(), want.len(), "frame count diverged");
        for (frame, (_, expected)) in got.iter().zip(want) {
            match (frame, expected) {
                (NetFrame::Data(raw), Expected::Data(wire)) => {
                    assert_eq!(&raw.to_vec(), wire, "data frame bytes diverged");
                }
                (NetFrame::Error(got), Expected::Error(want)) => {
                    assert_eq!(got.request_id, want.request_id);
                    assert_eq!(got.code, want.code);
                    assert_eq!(got.detail, want.detail);
                }
                (got, want) => panic!("frame kind diverged: {got:?} vs {want:?}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Any chunking of any mixed stream yields the identical frame
        // sequence — chunk boundaries never land anywhere that matters.
        #[test]
        fn any_chunking_reassembles_mixed_streams(
            frames in proptest::collection::vec(arb_frame(), 1..8),
            chunks in proptest::collection::vec(1usize..96, 1..12),
        ) {
            let stream: Vec<u8> =
                frames.iter().flat_map(|(wire, _)| wire.clone()).collect();
            let got = reassemble(&stream, &chunks).expect("clean stream");
            assert_sequence(&got, &frames);
        }

        // The pathological case the issue calls out: 1-byte socket reads,
        // with a poll between every byte, across header and payload
        // splits alike. Also the degenerate opposite: the whole stream
        // (back-to-back frames) in a single push.
        #[test]
        fn one_byte_reads_and_single_push_agree(
            frames in proptest::collection::vec(arb_frame(), 1..6),
        ) {
            let stream: Vec<u8> =
                frames.iter().flat_map(|(wire, _)| wire.clone()).collect();
            let byte_by_byte = reassemble(&stream, &[1]).expect("clean stream");
            assert_sequence(&byte_by_byte, &frames);
            let all_at_once = reassemble(&stream, &[stream.len()]).expect("clean stream");
            assert_sequence(&all_at_once, &frames);
        }

        // Corrupting a frame boundary (magic or version) is fatal and
        // typed: the stream cannot be resynchronized, so the reader must
        // refuse rather than guess — but every frame *before* the
        // corruption still comes out intact.
        #[test]
        fn corrupted_boundaries_are_fatal_typed_errors(
            frames in proptest::collection::vec(arb_frame(), 1..5),
            victim_pick in proptest::num::u64::ANY,
            byte_pick in 0usize..6,
            bit in 0u8..8,
        ) {
            let victim = (victim_pick as usize) % frames.len();
            let offset: usize =
                frames[..victim].iter().map(|(wire, _)| wire.len()).sum();
            let mut stream: Vec<u8> =
                frames.iter().flat_map(|(wire, _)| wire.clone()).collect();
            let mut pos = offset + byte_pick; // inside magic (0..4) or version (4..6)
            let flipped = stream[pos] ^ (1u8 << bit);
            // version corruption must actually leave the supported set:
            // v1<->v2 flips produce a *valid* header of the other kind
            // (with a different length field), which is legitimate parsing
            // territory, not a detectable corruption — corrupt the magic
            // instead in that case
            if byte_pick >= 4 {
                let mut v = [stream[offset + 4], stream[offset + 5]];
                v[byte_pick - 4] = flipped;
                if matches!(u16::from_le_bytes(v), 1 | 2) {
                    pos = offset + byte_pick - 4;
                }
            }
            stream[pos] ^= 1u8 << bit;
            let mut reader = FrameReader::new();
            reader.push(&stream);
            for clean in &frames[..victim] {
                let frame = reader.try_next().expect("pre-corruption frames intact")
                    .expect("frame available");
                assert_sequence(std::slice::from_ref(&frame), std::slice::from_ref(clean));
            }
            let got = reader.try_next();
            prop_assert!(
                matches!(got, Err(NetError::Wire(_))),
                "boundary corruption not a typed wire error: {:?}", got
            );
            // fatal means fatal: feeding more bytes never revives the stream
            reader.push(&frames[0].0);
            prop_assert!(reader.try_next().is_err(), "reader resynchronized after fatal error");
        }

        // Error frames are fully validated *inside* the reader (they are
        // consumed at the transport layer, unlike data frames whose
        // checksums the session verifies): any single-bit corruption past
        // the envelope is a typed error, never a mangled ErrorFrame.
        #[test]
        fn corrupted_error_frames_never_yield_garbage(
            rid in proptest::num::u64::ANY,
            detail_bytes in proptest::collection::vec(proptest::num::u8::ANY, 1..40),
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let detail: String =
                detail_bytes.iter().map(|b| char::from(b'a' + b % 26)).collect();
            let frame = ErrorFrame::new(rid, ErrorCode::Internal, detail);
            let mut wire = encode_error_frame(&frame).to_vec();
            let pos = 6 + (pos_pick as usize) % (wire.len() - 6); // past magic+version
            wire[pos] ^= 1u8 << bit;
            let mut reader = FrameReader::new();
            reader.push(&wire);
            match reader.try_next() {
                // a corrupted length field may *inflate* detail_len, which
                // legitimately stalls the reader awaiting bytes that never
                // come (the connection's EOF handling reports the tear) —
                // anything else must be a typed wire error
                Ok(None) => prop_assert!(
                    (16..20).contains(&pos),
                    "reader stalled on corruption outside the length field (byte {})", pos
                ),
                Err(NetError::Wire(_)) => {}
                got => prop_assert!(
                    false,
                    "corrupted error frame at byte {} accepted: {:?}", pos, got
                ),
            }
        }
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let sealed = SealedBucket {
        bucket_index: 0,
        num_buckets: 1,
        bucket: Bucket {
            members: Vec::new(),
        },
    };
    let mut raw = sealed.to_bytes().to_vec();
    raw[0..4].copy_from_slice(b"JUNK");
    assert!(matches!(
        SealedBucket::from_bytes(Bytes::copy_from_slice(&raw)),
        Err(WireError::BadMagic { .. })
    ));
}

#[test]
fn checksum_mismatch_is_a_typed_error() {
    let sealed = SealedBucket {
        bucket_index: 0,
        num_buckets: 1,
        bucket: Bucket {
            members: Vec::new(),
        },
    };
    let mut raw = sealed.to_bytes().to_vec();
    let last = raw.len() - 1;
    raw[last] ^= 0xFF; // payload byte (or checksum when payload is tiny)
    let got = SealedBucket::from_bytes(Bytes::copy_from_slice(&raw));
    assert!(
        matches!(got, Err(WireError::ChecksumMismatch { .. })),
        "{got:?}"
    );
}
