//! Wire-protocol robustness: random buckets must round-trip exactly, and
//! every malformed input — truncation, single-byte corruption, unknown
//! versions, bad magic — must come back as a typed [`WireError`], never a
//! panic or a silent misparse.

use bytes::Bytes;
use proteus::{Bucket, BucketMember, ObfuscatedModel, SealedBucket};
use proteus_graph::{Activation, Graph, Op, Shape, TensorMap, WireError, WIRE_VERSION};

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random small executable-ish DAGs with parameters — shaped like the
    /// anonymized subgraphs that actually cross the wire.
    fn arb_member() -> impl Strategy<Value = BucketMember> {
        (
            proptest::collection::vec((0u8..7, proptest::num::u64::ANY), 2..14),
            proptest::num::u64::ANY,
        )
            .prop_map(|(specs, seed)| {
                let mut g = Graph::new("wiretest");
                let mut ids = vec![g.input([2, 3, 4])];
                for (kind, pick) in specs {
                    let a = ids[(pick as usize) % ids.len()];
                    let b = ids[(pick as usize / 5) % ids.len()];
                    let id = match kind {
                        0 => g.add(Op::Activation(Activation::Relu), [a]),
                        1 => g.add(Op::Activation(Activation::Gelu), [a]),
                        2 => g.add(Op::Identity, [a]),
                        3 => g.add(Op::Add, [a, b]),
                        4 => g.add(Op::Mul, [a, b]),
                        5 => g.add(
                            Op::Reshape {
                                shape: Shape::from([2, 12]),
                            },
                            [a],
                        ),
                        _ => g.add(
                            Op::Transpose {
                                perm: vec![0, 2, 1],
                            },
                            [a],
                        ),
                    };
                    ids.push(id);
                }
                let last = *ids.last().expect("nonempty");
                g.set_outputs([last]);
                let params = TensorMap::init_random(&g, seed);
                BucketMember { graph: g, params }
            })
    }

    fn arb_sealed() -> impl Strategy<Value = SealedBucket> {
        (
            proptest::collection::vec(arb_member(), 1..5),
            0u32..4,
            proptest::num::u64::ANY,
        )
            .prop_map(|(members, index, total_salt)| {
                let num_buckets = index + 1 + (total_salt % 4) as u32;
                SealedBucket {
                    bucket_index: index,
                    num_buckets,
                    bucket: Bucket { members },
                }
            })
    }

    fn assert_members_equal(a: &Bucket, b: &Bucket) {
        assert_eq!(a.members.len(), b.members.len());
        for (ma, mb) in a.members.iter().zip(&b.members) {
            // encode is compacting, so compare codec-normalized forms
            assert_eq!(ma.graph.len(), mb.graph.len());
            assert_eq!(ma.graph.edge_count(), mb.graph.edge_count());
            assert_eq!(ma.params.len(), mb.params.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sealed_bucket_roundtrips(sealed in arb_sealed()) {
            let bytes = sealed.to_bytes();
            let back = SealedBucket::from_bytes(bytes).unwrap();
            prop_assert_eq!(back.bucket_index, sealed.bucket_index);
            prop_assert_eq!(back.num_buckets, sealed.num_buckets);
            assert_members_equal(&sealed.bucket, &back.bucket);
            // a re-encode of the decoded frame is byte-stable
            let bytes_a = sealed.to_bytes();
            let bytes_b = back.to_bytes();
            prop_assert_eq!(bytes_a.to_vec(), bytes_b.to_vec());
        }

        #[test]
        fn corrupted_frames_rejected_not_panicked(
            sealed in arb_sealed(),
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let bytes = sealed.to_bytes().to_vec();
            let pos = (pos_pick as usize) % bytes.len();
            let mut raw = bytes;
            raw[pos] ^= 1u8 << bit;
            // every single-bit corruption must surface as a typed error —
            // the checksum covers header fields and payload alike
            let got = SealedBucket::from_bytes(Bytes::copy_from_slice(&raw));
            prop_assert!(got.is_err(), "corruption at byte {} bit {} was accepted", pos, bit);
        }

        #[test]
        fn truncated_frames_rejected(sealed in arb_sealed(), cut_pick in proptest::num::u64::ANY) {
            let bytes = sealed.to_bytes();
            let cut = (cut_pick as usize) % bytes.len();
            let got = SealedBucket::from_bytes(bytes.slice(0..cut));
            prop_assert!(got.is_err(), "cut at {} was accepted", cut);
        }

        #[test]
        fn unknown_versions_rejected_with_typed_error(
            sealed in arb_sealed(),
            version in proptest::num::u64::ANY,
        ) {
            let version = match (version % 0xFFFF) as u16 {
                WIRE_VERSION => WIRE_VERSION + 1,
                v => v,
            };
            let mut raw = sealed.to_bytes().to_vec();
            raw[4..6].copy_from_slice(&version.to_le_bytes());
            match SealedBucket::from_bytes(Bytes::copy_from_slice(&raw)) {
                Err(WireError::UnknownVersion { got, supported }) => {
                    prop_assert_eq!(got, version);
                    prop_assert_eq!(supported, WIRE_VERSION);
                }
                other => prop_assert!(false, "expected UnknownVersion, got {:?}", other),
            }
        }

        #[test]
        fn model_blob_roundtrips_and_rejects_corruption(
            members in proptest::collection::vec(arb_member(), 2..7),
            pos_pick in proptest::num::u64::ANY,
        ) {
            // split members into two buckets
            let split = members.len() / 2;
            let model = ObfuscatedModel {
                buckets: vec![
                    Bucket { members: members[..split].to_vec() },
                    Bucket { members: members[split..].to_vec() },
                ],
            };
            let bytes = model.to_bytes();
            let back = ObfuscatedModel::from_bytes(bytes.clone()).unwrap();
            prop_assert_eq!(back.num_buckets(), model.num_buckets());
            prop_assert_eq!(back.total_subgraphs(), model.total_subgraphs());

            // corrupt one byte past the model header: typed error, no panic
            let mut raw = bytes.to_vec();
            let pos = 4 + (pos_pick as usize) % (raw.len() - 4);
            raw[pos] ^= 0x20;
            prop_assert!(
                ObfuscatedModel::from_bytes(Bytes::copy_from_slice(&raw)).is_err(),
                "corruption at byte {} was accepted", pos
            );
        }
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let sealed = SealedBucket {
        bucket_index: 0,
        num_buckets: 1,
        bucket: Bucket {
            members: Vec::new(),
        },
    };
    let mut raw = sealed.to_bytes().to_vec();
    raw[0..4].copy_from_slice(b"JUNK");
    assert!(matches!(
        SealedBucket::from_bytes(Bytes::copy_from_slice(&raw)),
        Err(WireError::BadMagic { .. })
    ));
}

#[test]
fn checksum_mismatch_is_a_typed_error() {
    let sealed = SealedBucket {
        bucket_index: 0,
        num_buckets: 1,
        bucket: Bucket {
            members: Vec::new(),
        },
    };
    let mut raw = sealed.to_bytes().to_vec();
    let last = raw.len() - 1;
    raw[last] ^= 0xFF; // payload byte (or checksum when payload is tiny)
    let got = SealedBucket::from_bytes(Bytes::copy_from_slice(&raw));
    assert!(
        matches!(got, Err(WireError::ChecksumMismatch { .. })),
        "{got:?}"
    );
}
