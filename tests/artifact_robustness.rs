//! Trained-state artifact robustness and determinism.
//!
//! Two contracts are enforced here. **Robustness**: every malformed
//! artifact — truncation at any length, any single-bit corruption,
//! version skew, bad magic, internally inconsistent fingerprints — is
//! rejected with a typed [`ArtifactError`], never a panic or a silent
//! misparse (mirroring `tests/wire_robustness.rs` for the bucket
//! protocol). **Determinism**: a `Proteus` loaded from an artifact is
//! indistinguishable on the wire from the freshly trained instance that
//! saved it, across the full model zoo, through both the session path and
//! the multi-tenant serving runtime.
//!
//! CI runs this suite in release mode in the `perf-smoke` job alongside
//! `proteus-train verify`.

use proteus::{
    ArtifactError, PartitionSpec, Proteus, ProteusConfig, ProteusError, ServeConfig, ServeRuntime,
    TrainedArtifact, ARTIFACT_VERSION,
};
use proteus_graph::wire::{decode_frame, decode_graph, encode_frame, WireError};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::OnceLock;

fn quick_config() -> ProteusConfig {
    ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(3),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 24,
        ..Default::default()
    }
}

/// One shared trained instance (training dominates suite time) plus its
/// artifact bytes.
fn trained() -> &'static (Proteus, Vec<u8>) {
    static TRAINED: OnceLock<(Proteus, Vec<u8>)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let proteus = Proteus::train(
            quick_config(),
            &[build(ModelKind::ResNet), build(ModelKind::MobileNet)],
        );
        let bytes = proteus.to_artifact_bytes().to_vec();
        (proteus, bytes)
    })
}

// ---------------------------------------------------------------------------
// determinism: save → load → obfuscate parity

#[test]
fn loaded_artifact_obfuscates_bit_identically_across_the_zoo() {
    // registry-count pin: determinism must hold for the whole registry
    assert_eq!(zoo::all().len(), zoo::COUNT);
    let (fresh, bytes) = trained();
    let loaded = Proteus::from_artifact_bytes(bytes).expect("artifact loads");
    assert_eq!(fresh.config_fingerprint(), loaded.config_fingerprint());
    for entry in zoo::all() {
        let kind = entry.name;
        let g = (entry.build)();
        let (a, sa) = fresh.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        let (b, sb) = loaded.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        assert_eq!(
            a.to_bytes().to_vec(),
            b.to_bytes().to_vec(),
            "{kind}: wire bytes diverge between trained and loaded instances"
        );
        assert_eq!(
            sa.real_positions, sb.real_positions,
            "{kind}: secrets diverge"
        );
    }
}

#[test]
fn parity_holds_for_distinct_request_ids_and_params() {
    let (fresh, bytes) = trained();
    let loaded = Proteus::from_artifact_bytes(bytes).expect("artifact loads");
    let g = build(ModelKind::ResNet);
    let params = TensorMap::init_random(&g, 99);
    for request_id in [0u64, 7, 0xDEAD_BEEF] {
        let frames_fresh: Vec<Vec<u8>> = fresh
            .obfuscate_session(&g, &params, request_id)
            .expect("session")
            .map(|f| f.to_bytes().to_vec())
            .collect();
        let frames_loaded: Vec<Vec<u8>> = loaded
            .obfuscate_session(&g, &params, request_id)
            .expect("session")
            .map(|f| f.to_bytes().to_vec())
            .collect();
        assert_eq!(
            frames_fresh, frames_loaded,
            "request {request_id:#x}: session frames diverge"
        );
    }
}

#[test]
fn save_load_serve_roundtrip_matches_fresh_pipeline() {
    // the full deployment path: load from bytes, serve a request through
    // the multi-tenant runtime, reassemble — bit-identical to the freshly
    // trained serial path.
    let (fresh, bytes) = trained();
    let loaded = Proteus::from_artifact_bytes(bytes).expect("artifact loads");
    let optimizer = Optimizer::new(Profile::OrtLike);

    for kind in [ModelKind::AlexNet, ModelKind::Bert] {
        let g = build(kind);
        // fresh instance, serial session path
        let (model, secrets) = fresh.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        let reference = proteus::optimize_model(&model, &optimizer);
        let (ref_back, _) = fresh
            .deobfuscate(&secrets, &reference)
            .expect("deobfuscate");

        // loaded instance, serving runtime path
        let runtime =
            ServeRuntime::new(optimizer.clone(), ServeConfig::default()).expect("runtime");
        let handle = runtime.handle(42);
        let mut session = loaded
            .obfuscate_session(&g, &TensorMap::new(), proteus::LEGACY_REQUEST_ID)
            .expect("session");
        let mut submitted = 0usize;
        for frame in session.by_ref() {
            handle.submit(frame).expect("submit");
            submitted += 1;
        }
        let secrets = session.finish().expect("secrets");
        let mut reassembly = loaded.deobfuscate_session(&secrets);
        for _ in 0..submitted {
            reassembly
                .accept(handle.recv().expect("recv"))
                .expect("accept");
        }
        let (served_back, _) = reassembly.finish().expect("reassemble");
        assert_eq!(
            ref_back, served_back,
            "{kind}: warm-started serve path diverged from the fresh serial path"
        );
    }
}

// ---------------------------------------------------------------------------
// robustness: malformed artifacts are typed errors, never panics

#[test]
fn version_skew_is_rejected_for_every_other_version() {
    let (_, bytes) = trained();
    for version in [0u16, 3, 255, u16::MAX] {
        let mut raw = bytes.clone();
        raw[4..6].copy_from_slice(&version.to_le_bytes());
        match TrainedArtifact::from_bytes(&raw) {
            Err(ArtifactError::UnknownVersion { got, supported }) => {
                assert_eq!(got, version);
                assert_eq!(supported, ARTIFACT_VERSION);
            }
            other => panic!("version {version}: expected UnknownVersion, got {other:?}"),
        }
    }
    // relabeling a v2 file as v1 must not silently misparse: the v2-only
    // config tail and sentinel section are both illegal under v1 rules
    let mut raw = bytes.clone();
    raw[4..6].copy_from_slice(&1u16.to_le_bytes());
    assert!(
        TrainedArtifact::from_bytes(&raw).is_err(),
        "v2 bytes relabeled as v1 were accepted"
    );
}

#[test]
fn truncation_at_every_length_is_rejected() {
    let (_, bytes) = trained();
    // every prefix: dense over the header and first section, sampled
    // beyond (the artifact is tens of kilobytes)
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(997));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        assert!(
            TrainedArtifact::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} was accepted"
        );
    }
}

#[test]
fn tampered_config_section_is_a_fingerprint_mismatch() {
    // Rebuild the artifact with a modified config payload behind a *valid*
    // section checksum: the per-section framing passes, and the meta
    // fingerprint cross-check must catch the inconsistency.
    let (_, bytes) = trained();
    let mut buf = bytes::Bytes::copy_from_slice(&bytes[10..]);
    let mut rebuilt: Vec<u8> = bytes[..10].to_vec();
    for _ in 0..6 {
        let frame = decode_frame(&mut buf).expect("section decodes");
        let mut payload = frame.payload.to_vec();
        if frame.bucket_index == 1 {
            // SECTION_CONFIG: flip the stored k
            payload[9] ^= 0x01;
        }
        rebuilt.extend_from_slice(&encode_frame(frame.bucket_index, &payload));
    }
    match TrainedArtifact::from_bytes(&rebuilt) {
        Err(ArtifactError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// robustness: lying length prefixes must never drive allocations

/// Regression for the untrusted-length hardening: a section whose leading
/// element count claims the plausibility maximum while its payload holds
/// almost nothing must be rejected with a typed error. Before the
/// `bounded_capacity` clamps, the count went straight into
/// `Vec::with_capacity`, so a handful of corrupt bytes demanded a
/// megabyte-scale allocation before the decode loop could notice the lie.
#[test]
fn section_claiming_maximal_pool_count_fails_typed() {
    let (_, bytes) = trained();
    let mut buf = bytes::Bytes::copy_from_slice(&bytes[10..]);
    let mut rebuilt: Vec<u8> = bytes[..10].to_vec();
    for _ in 0..6 {
        let frame = decode_frame(&mut buf).expect("section decodes");
        if frame.bucket_index == 3 {
            // SECTION_POOL: the largest count the plausibility bound
            // admits (2^20 topologies), backed by 8 bytes of payload,
            // behind a *valid* section checksum
            let mut payload = (1u32 << 20).to_le_bytes().to_vec();
            payload.extend_from_slice(&[0u8; 8]);
            rebuilt.extend_from_slice(&encode_frame(frame.bucket_index, &payload));
        } else {
            rebuilt.extend_from_slice(&encode_frame(frame.bucket_index, &frame.payload));
        }
    }
    match TrainedArtifact::from_bytes(&rebuilt) {
        Err(ArtifactError::Truncated { .. } | ArtifactError::Malformed { .. }) => {}
        other => panic!("lying pool count: expected a typed decode error, got {other:?}"),
    }
}

/// Same property at the bucket protocol layer: a sealed-bucket payload
/// declaring a million members over a near-empty buffer is a typed
/// truncation, reached without a member-count-sized pre-allocation.
#[test]
fn sealed_bucket_claiming_a_million_members_fails_typed() {
    use proteus::SealedBucket;
    // payload: num_buckets=1 | member count=1_000_000 (largest plausible)
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.extend_from_slice(&1_000_000u32.to_le_bytes());
    payload.extend_from_slice(&[0u8; 4]);
    let mut framed = bytes::Bytes::copy_from_slice(&encode_frame(0, &payload));
    match SealedBucket::decode_from(&mut framed) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("lying member count: expected Truncated, got {other:?}"),
    }
}

/// And at the graph codec: ten million declared nodes (the plausibility
/// ceiling) over an empty tail is typed truncation, with the
/// pre-allocation capped by the bytes actually present.
#[test]
fn graph_bytes_claiming_ten_million_nodes_fail_typed() {
    // encode_graph layout: name (len-prefixed) | node count u32 | nodes...
    let mut raw = 0u32.to_le_bytes().to_vec(); // empty name
    raw.extend_from_slice(&10_000_000u32.to_le_bytes());
    let mut buf = bytes::Bytes::copy_from_slice(&raw);
    match decode_graph(&mut buf) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("lying node count: expected Truncated, got {other:?}"),
    }
}

#[test]
fn artifact_errors_surface_through_proteus_error() {
    let err = Proteus::from_artifact_bytes(b"NOPE").unwrap_err();
    assert!(
        matches!(err, ProteusError::Artifact(ArtifactError::BadMagic { .. })),
        "wrong variant: {err:?}"
    );
    let err = Proteus::load_artifact("/nonexistent/proteus.prta").unwrap_err();
    assert!(
        matches!(err, ProteusError::Artifact(ArtifactError::Io { .. })),
        "wrong variant: {err:?}"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn single_bit_corruption_anywhere_is_rejected(
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let (_, bytes) = trained();
            let pos = (pos_pick as usize) % bytes.len();
            let mut raw = bytes.clone();
            raw[pos] ^= 1u8 << bit;
            prop_assert!(
                TrainedArtifact::from_bytes(&raw).is_err(),
                "corruption at byte {} bit {} was accepted", pos, bit
            );
        }

        #[test]
        fn random_truncation_is_rejected(cut_pick in proptest::num::u64::ANY) {
            let (_, bytes) = trained();
            let cut = (cut_pick as usize) % bytes.len();
            prop_assert!(
                TrainedArtifact::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {} was accepted", cut
            );
        }

        #[test]
        fn garbage_never_panics(data in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            // arbitrary bytes: any result is fine as long as it is a typed
            // error or a (vanishingly unlikely) valid artifact, not a panic
            let _ = TrainedArtifact::from_bytes(&data);
        }
    }
}
