//! Serve-latency parity battery: the warm sentinel inventory and the
//! optimized-member cache are pure memoization, so every byte a request
//! observes must be identical whether its sentinels were drawn warm or
//! generated inline, and whether its members were optimized by the pool
//! or replayed from the cache — across the full model zoo.
//!
//! The suite also pins the structural win: under PR 4's inline path every
//! bucket member became an optimizer task; with the cache on, a replayed
//! request reaches the pool zero times and a mixed workload executes
//! strictly fewer tasks than it has members.
//!
//! CI runs this suite in release mode (the `serve-stress` job).

use proteus::serve::{SentinelPool, ServeRuntime};
use proteus::{
    DeobfuscationSession, PartitionSpec, Proteus, ProteusConfig, SealedBucket, ServeConfig,
};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::{Arc, OnceLock};

fn quick_config() -> ProteusConfig {
    ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(3),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 20,
        sentinel_variants: 2,
        ..Default::default()
    }
}

/// One shared trained instance; training dominates suite time.
fn trained() -> &'static Arc<Proteus> {
    static TRAINED: OnceLock<Arc<Proteus>> = OnceLock::new();
    TRAINED.get_or_init(|| Arc::new(Proteus::train(quick_config(), &[build(ModelKind::ResNet)])))
}

fn runtime(cache_capacity: usize) -> ServeRuntime {
    ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 2,
            window: 2,
            cache_capacity,
            ..Default::default()
        },
    )
    .expect("runtime starts")
}

/// All sealed (unoptimized) frame bytes of one request, in bucket order.
fn session_frame_bytes(proteus: &Proteus, kind: ModelKind, rid: u64) -> Vec<Vec<u8>> {
    proteus
        .obfuscate_session(&build(kind), &TensorMap::new(), rid)
        .expect("session")
        .map(|f| f.to_bytes().to_vec())
        .collect()
}

/// Drives one request through a runtime and returns its optimized frames
/// (bucket order) plus the reassembled model.
fn serve_one(
    rt: &ServeRuntime,
    proteus: &Proteus,
    kind: ModelKind,
    rid: u64,
) -> (Vec<SealedBucket>, (proteus_graph::Graph, TensorMap)) {
    let mut session = proteus
        .obfuscate_session(&build(kind), &TensorMap::new(), rid)
        .expect("session");
    let handle = rt.handle(rid);
    let n = session.num_buckets();
    let mut optimized = Vec::with_capacity(n);
    while let Some(frame) = session.next_frame() {
        handle.submit(frame).expect("submit");
        while let Some(done) = handle.try_recv() {
            optimized.push(done);
        }
    }
    while optimized.len() < n {
        optimized.push(handle.recv().expect("recv"));
    }
    optimized.sort_by_key(|f| f.bucket_index);
    let secrets = session.finish().expect("secrets");
    let mut reassembly = DeobfuscationSession::new(&secrets);
    for f in &optimized {
        reassembly.accept(f.clone()).expect("accept");
    }
    (optimized, reassembly.finish().expect("finish"))
}

#[test]
fn warm_inventory_frames_match_inline_generation_across_the_zoo() {
    let proteus = trained();
    // full background warm first, so the warm path below is entirely
    // inventory draws
    let built = SentinelPool::spawn(Arc::clone(proteus)).join();
    assert!(built > 0, "warmer built nothing");

    for (i, kind) in ModelKind::ALL.into_iter().enumerate() {
        let rid = 1000 + i as u64;
        proteus.inventory().set_enabled(true);
        let hits_before = proteus.inventory().stats().hits;
        let warm = session_frame_bytes(proteus, kind, rid);
        assert!(
            proteus.inventory().stats().hits > hits_before,
            "{kind}: warm session never touched the inventory"
        );

        proteus.inventory().set_enabled(false);
        let inline = session_frame_bytes(proteus, kind, rid);
        proteus.inventory().set_enabled(true);

        assert_eq!(
            warm, inline,
            "{kind}: warm-inventory frames diverge from inline generation"
        );
    }
}

#[test]
fn cache_hits_and_misses_produce_identical_bytes() {
    let proteus = trained();
    let cached = runtime(4096);
    let uncached = runtime(0);

    for (i, kind) in [ModelKind::AlexNet, ModelKind::MobileNet, ModelKind::Bert]
        .into_iter()
        .enumerate()
    {
        let rid = 2000 + i as u64;
        // first pass populates the cache (all misses), replay hits it,
        // and the cacheless runtime never consults it — all three must
        // produce the same optimized frame bytes and reassembly
        let (miss_frames, miss_model) = serve_one(&cached, proteus, kind, rid);
        let (hit_frames, hit_model) = serve_one(&cached, proteus, kind, rid);
        let (cold_frames, cold_model) = serve_one(&uncached, proteus, kind, rid);

        let bytes = |frames: &[SealedBucket]| -> Vec<Vec<u8>> {
            frames.iter().map(|f| f.to_bytes().to_vec()).collect()
        };
        assert_eq!(
            bytes(&miss_frames),
            bytes(&hit_frames),
            "{kind}: cache-hit frames diverge from the miss pass"
        );
        assert_eq!(
            bytes(&miss_frames),
            bytes(&cold_frames),
            "{kind}: cached frames diverge from the cacheless runtime"
        );
        assert_eq!(miss_model, hit_model, "{kind}: reassembly diverged");
        assert_eq!(miss_model, cold_model, "{kind}: reassembly diverged");
    }
    assert!(cached.stats().cache_hits > 0);
    assert_eq!(uncached.stats().cache_hits, 0);
}

#[test]
fn warm_path_task_count_drops_below_the_inline_baseline() {
    let proteus = trained();
    let rt = runtime(4096);
    let kind = ModelKind::AlexNet;

    // PR 4 baseline, pinned: the inline path paid one optimizer task per
    // member. A cold request on an empty cache can only do better when a
    // sentinel repeats across its own buckets, never worse.
    let (frames, _) = serve_one(&rt, proteus, kind, 3000);
    let members: usize = frames.iter().map(|f| f.bucket.members.len()).sum();
    let cold_tasks = rt.stats().tasks_executed;
    assert!(
        cold_tasks > 0 && cold_tasks <= members,
        "cold request executed {cold_tasks} tasks for {members} members"
    );

    // replaying the same request reaches the pool zero times
    let (_, _) = serve_one(&rt, proteus, kind, 3000);
    assert_eq!(
        rt.stats().tasks_executed,
        cold_tasks,
        "replayed request must be served entirely from the cache"
    );

    // a mixed workload over fresh request ids repeats sentinels across
    // requests (content-addressed anonymization), so total tasks stay
    // strictly below total members
    let mut total_members = members;
    for rid in 3001..3009 {
        let (frames, _) = serve_one(&rt, proteus, kind, rid);
        total_members += frames.iter().map(|f| f.bucket.members.len()).sum::<usize>();
    }
    let stats = rt.stats();
    assert!(
        stats.tasks_executed < total_members,
        "warm path executed {} tasks for {} members — no cross-request reuse",
        stats.tasks_executed,
        total_members
    );
    assert!(stats.cache_hits > 0);
}
