//! Chaos battery for the fault-tolerant replica fleet: deterministic
//! fault injection ([`FaultPlan`]) against a [`Fleet`] of warm
//! [`proteus::serve::ServeRuntime`] replicas must never escape the typed
//! error family, never leak a partial frame, and — when re-dispatch
//! succeeds — produce results **bit-identical** to the serial
//! single-session path (request-id-keyed determinism makes the replay
//! exact; the fleet hard-asserts frame-byte parity across attempts
//! internally).
//!
//! CI runs this battery in release mode across several fault seeds
//! (the `fleet-chaos` job); `PROTEUS_CHAOS_SEEDS` overrides the storm's
//! seed list.

use proteus::fleet::{Fleet, FleetConfig, ReplicaState};
use proteus::serve::ServeRuntime;
use proteus::{
    DeobfuscationSession, FaultPlan, PartitionSpec, Proteus, ProteusConfig, ProteusError,
    SealedBucket, ServeConfig,
};
use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Graph, Op, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::{Arc, Once, OnceLock};
use std::time::Duration;

/// Injected faults panic on purpose (contained by the runtime's
/// `catch_unwind`); suppress their backtrace spew so real test failures
/// stay readable. Non-fault panics still print via the previous hook.
fn quiet_fault_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("fault injection") {
                prev(info);
            }
        }));
    });
}

fn quick_config(k: usize, n: usize) -> ProteusConfig {
    ProteusConfig {
        k,
        partitions: PartitionSpec::Count(n),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    }
}

/// One shared trained instance for the whole battery (training is
/// model-independent; every test keys its requests by distinct ids).
fn shared_proteus() -> &'static Arc<Proteus> {
    static SHARED: OnceLock<Arc<Proteus>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Proteus::builder()
            .config(quick_config(2, 2))
            .corpus_model(build(ModelKind::ResNet))
            .train_shared()
            .expect("train")
    })
}

/// An executable CNN with parameters so chaos also covers parameter
/// streams and tensor reassembly.
fn executable_cnn() -> (Graph, TensorMap) {
    let mut g = Graph::new("chaos-cnn");
    let x = g.input([1, 3, 12, 12]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 8, 3).padding(1).bias(false)),
        [x],
    );
    let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c1]);
    let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
    let c2 = g.add(
        Op::Conv(ConvAttrs::new(8, 8, 3).padding(1).bias(false)),
        [r1],
    );
    let a = g.add(Op::Add, [c2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [a]);
    let f = g.add(Op::Flatten, [r2]);
    let fc = g.add(Op::Gemm(GemmAttrs::new(8 * 12 * 12, 10)), [f]);
    g.set_outputs([fc]);
    let params = TensorMap::init_random(&g, 99);
    (g, params)
}

/// The protected model of request `rid` — a rotation so chaos requests
/// carry different shapes and parameter loads.
fn request_model(rid: u64) -> (Graph, TensorMap) {
    match rid % 3 {
        0 => executable_cnn(),
        1 => (build(ModelKind::AlexNet), TensorMap::new()),
        _ => (build(ModelKind::MobileNet), TensorMap::new()),
    }
}

/// The serial single-session reference the fleet must be bit-identical
/// to whenever it reports success.
fn serial_reference(
    proteus: &Proteus,
    optimizer: &Optimizer,
    rid: u64,
    graph: &Graph,
    params: &TensorMap,
) -> (Graph, TensorMap) {
    let mut session = proteus
        .obfuscate_session(graph, params, rid)
        .expect("session");
    let frames: Vec<SealedBucket> = session
        .by_ref()
        .map(|f| f.optimize(optimizer, Some(1)))
        .collect();
    let secrets = session.finish().expect("secrets");
    let mut reassembly = DeobfuscationSession::new(&secrets);
    for f in frames {
        reassembly.accept(f).expect("accept");
    }
    reassembly.finish().expect("finish")
}

fn chaos_fleet(
    replicas: usize,
    faults: &[FaultPlan],
    deadline_ms: u64,
    max_retries: u32,
    cache_capacity: usize,
) -> Fleet {
    Fleet::with_replica_faults(
        Optimizer::new(Profile::OrtLike),
        FleetConfig {
            replicas,
            serve: ServeConfig {
                workers: 1,
                window: 4,
                cache_capacity,
                ..Default::default()
            },
            deadline_ms,
            max_retries,
            backoff_ms: 1,
            auto_respawn: true,
            virtual_nodes: 16,
        },
        faults,
    )
    .expect("fleet starts")
}

/// First request id at or after `from` whose primary route is `replica`.
fn rid_routed_to(fleet: &Fleet, replica: usize, from: u64) -> u64 {
    (from..from + 5_000)
        .find(|&rid| fleet.route(rid) == Some(replica))
        .expect("the ring gives every replica some keyspace")
}

/// Tentpole acceptance: a worker panic on the primary replica re-routes
/// the request, and the re-dispatched result is bit-identical to the
/// serial session path — across the model zoo, parameters included.
#[test]
fn worker_crash_redispatches_bit_identically_zoo_wide() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    // replica 0: every task panics; replica 1: healthy
    let fleet = chaos_fleet(
        2,
        &[FaultPlan {
            panic_one_in: 1,
            ..Default::default()
        }],
        0,
        2,
        0,
    );
    // debug builds cover a zoo slice; the release chaos job covers it all
    let zoo: &[ModelKind] = if cfg!(debug_assertions) {
        &ModelKind::ALL[..5]
    } else {
        &ModelKind::ALL[..]
    };
    for (i, &kind) in zoo.iter().enumerate() {
        let rid = rid_routed_to(&fleet, 0, 1 + (i as u64) * 1_000);
        let graph = build(kind);
        let params = TensorMap::init_random(&graph, rid);
        let got = fleet
            .serve_request_traced(proteus, &graph, &params, rid)
            .unwrap_or_else(|e| panic!("{kind:?} rid {rid}: {e}"));
        assert_eq!(got.attempts, 2, "{kind:?}: crash then one re-dispatch");
        assert_eq!(got.replicas_tried, vec![0, 1], "{kind:?}");
        let (want_g, want_p) = serial_reference(proteus, &optimizer, rid, &graph, &params);
        assert_eq!(got.graph, want_g, "{kind:?}: re-dispatch diverged");
        assert_eq!(got.params, want_p, "{kind:?}: parameters diverged");
        assert!(
            got.phases.backoff_ns > 0,
            "{kind:?}: the retry's backoff must be charged to the breakdown"
        );
    }
    let stats = fleet.stats();
    assert_eq!(stats.served, zoo.len());
    assert_eq!(stats.redispatches, zoo.len(), "one re-dispatch per request");
    assert!(stats.replicas[0].failures >= zoo.len());
}

/// A replica killed mid-request (tasks already completed and witnessed)
/// re-dispatches with byte parity — the in-fleet determinism hard-assert
/// compares the overlapping buckets — and the dead replica is
/// auto-respawned with its faults cleared.
#[test]
fn replica_killed_mid_request_redispatches_with_parity() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    // 2 buckets x 3 members = 6 tasks; the kill fires on task 4, so one
    // full bucket completes first — its bytes are witnessed by attempt 1
    // and re-checked against attempt 2's replay of the same bucket.
    let fleet = chaos_fleet(
        2,
        &[FaultPlan {
            kill_at_task: 4,
            ..Default::default()
        }],
        0,
        2,
        0,
    );
    let rid = rid_routed_to(&fleet, 0, 7);
    let (graph, params) = request_model(rid);
    let got = fleet
        .serve_request_traced(proteus, &graph, &params, rid)
        .expect("re-dispatch recovers from replica loss");
    assert_eq!(got.attempts, 2);
    assert_eq!(got.replicas_tried, vec![0, 1]);
    let (want_g, want_p) = serial_reference(proteus, &optimizer, rid, &graph, &params);
    assert_eq!(got.graph, want_g);
    assert_eq!(got.params, want_p);

    // the killed replica was downed, then auto-respawned fresh
    let stats = fleet.stats();
    assert_eq!(fleet.replica_state(0).expect("index"), ReplicaState::Up);
    assert!(stats.replicas[0].respawns >= 1, "{stats:?}");
    assert_eq!(stats.redispatches, 1);

    // fresh-process semantics: the respawned replica no longer carries
    // the fault plan, so its keyspace serves first-attempt again
    let rid2 = rid_routed_to(&fleet, 0, rid + 1);
    let (graph2, params2) = request_model(rid2);
    let got2 = fleet
        .serve_request_traced(proteus, &graph2, &params2, rid2)
        .expect("respawned replica serves");
    assert_eq!(got2.attempts, 1, "no fault left after respawn");
    assert_eq!(got2.replicas_tried, vec![0]);
}

/// A stalled replica blows the request deadline: the error is typed
/// [`ProteusError::Deadline`] and terminal — the fleet does not burn
/// retries on a budget that is already spent.
#[test]
fn deadline_surfaces_typed_and_is_terminal() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let fleet = chaos_fleet(
        1,
        &[FaultPlan {
            stall_one_in: 1,
            stall_ms: 300,
            ..Default::default()
        }],
        60,
        3,
        0,
    );
    let rid = 0xDEAD;
    let (graph, params) = request_model(rid);
    let started = std::time::Instant::now();
    let err = fleet
        .serve_request_traced(proteus, &graph, &params, rid)
        .expect_err("a 300ms/task stall cannot meet a 60ms deadline");
    let wall = started.elapsed();
    match err {
        ProteusError::Deadline { request_id, .. } => assert_eq!(request_id, rid),
        other => panic!("expected Deadline, got {other:?}"),
    }
    assert!(
        wall >= Duration::from_millis(60),
        "deadline fired before the budget elapsed ({wall:?})"
    );
    assert_eq!(
        fleet.stats().redispatches,
        0,
        "Deadline is terminal: no re-dispatch may follow it"
    );
}

/// When every replica fails retryably, the bounded budget surfaces
/// [`ProteusError::RetriesExhausted`] carrying the final attempt's error.
#[test]
fn retries_exhausted_carries_the_last_error() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let always_panic = FaultPlan {
        panic_one_in: 1,
        ..Default::default()
    };
    let fleet = chaos_fleet(2, &[always_panic, always_panic], 0, 2, 0);
    let rid = 0xEBB;
    let (graph, params) = request_model(rid);
    let err = fleet
        .serve_request_traced(proteus, &graph, &params, rid)
        .expect_err("both replicas always crash");
    match err {
        ProteusError::RetriesExhausted {
            request_id,
            attempts,
            last,
        } => {
            assert_eq!(request_id, rid);
            assert_eq!(attempts, 3, "initial dispatch + max_retries");
            assert!(
                matches!(*last, ProteusError::WorkerCrashed { .. }),
                "carries the final attempt's failure, got {last:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert!(!fleet.stats().replicas.iter().any(|r| r.served > 0));
}

/// Drain waits for in-flight requests to complete before taking the
/// replica down — the draining request finishes normally on its original
/// replica (attempt count 1) — and a respawn rejoins the ring.
#[test]
fn drain_completes_in_flight_requests_then_respawn_rejoins() {
    quiet_fault_panics();
    let proteus = Arc::clone(shared_proteus());
    let optimizer = Optimizer::new(Profile::OrtLike);
    // a uniform 30ms/task stall keeps the request in flight long enough
    // for the drain to provably overlap it (6 tasks ≈ 180ms)
    let slow = FaultPlan {
        stall_one_in: 1,
        stall_ms: 30,
        ..Default::default()
    };
    let fleet = Arc::new(chaos_fleet(2, &[slow, slow], 0, 2, 0));
    let rid = rid_routed_to(&fleet, 0, 100);
    let (graph, params) = request_model(rid);

    let client = {
        let fleet = Arc::clone(&fleet);
        let proteus = Arc::clone(&proteus);
        let (graph, params) = (graph.clone(), params.clone());
        std::thread::spawn(move || fleet.serve_request_traced(&proteus, &graph, &params, rid))
    };
    // let the client dispatch (inflight is marked before generation), then
    // drain its replica: drain must block until the request completes
    std::thread::sleep(Duration::from_millis(100));
    fleet
        .drain(0)
        .expect("drain waits out the in-flight request");
    assert_eq!(fleet.replica_state(0).expect("index"), ReplicaState::Down);

    let got = client
        .join()
        .expect("client thread")
        .expect("draining request completes");
    assert_eq!(
        got.replicas_tried,
        vec![0],
        "the draining replica finished its own request"
    );
    assert_eq!(got.attempts, 1, "drain never forced a re-dispatch");
    let (want_g, want_p) = serial_reference(&proteus, &optimizer, rid, &graph, &params);
    assert_eq!(got.graph, want_g);
    assert_eq!(got.params, want_p);

    // while down, its keyspace reroutes; after respawn it returns
    assert_eq!(fleet.route(rid), Some(1));
    fleet.respawn(0).expect("respawn");
    assert_eq!(fleet.replica_state(0).expect("index"), ReplicaState::Up);
    assert_eq!(fleet.route(rid), Some(0));
    let got2 = fleet
        .serve_request_traced(&proteus, &graph, &params, rid + 7_000)
        .expect("respawned replica serves");
    assert!(got2.graph.validate().is_ok());
}

/// No fault may leak a partial frame: every frame a faulted runtime
/// delivers carries all `k + 1` members, and fully-delivered requests
/// reassemble bit-identically to the serial path.
#[test]
fn no_fault_leaks_a_partial_frame() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    let k = 2; // quick_config(2, 2)
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 2,
            window: 4,
            cache_capacity: 0,
            faults: FaultPlan {
                seed: 0xF00D,
                panic_one_in: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("runtime");
    let mut crashed = 0usize;
    let mut completed = 0usize;
    for rid in 400..412u64 {
        let (graph, params) = request_model(rid);
        let mut session = proteus
            .obfuscate_session(&graph, &params, rid)
            .expect("session");
        let n = session.num_buckets();
        let handle = runtime.handle(rid);
        let mut frames = Vec::new();
        let mut failure = None;
        while let Some(frame) = session.next_frame() {
            if let Err(e) = handle.submit(frame) {
                failure = Some(e);
                break;
            }
        }
        let secrets = session.finish().expect("secrets");
        while failure.is_none() && frames.len() < n {
            match handle.recv() {
                Ok(frame) => frames.push(frame),
                Err(e) => failure = Some(e),
            }
        }
        // the invariant under test: every delivered frame is whole
        for frame in &frames {
            assert_eq!(
                frame.bucket.members.len(),
                k + 1,
                "rid {rid}: a fault leaked a partial frame"
            );
        }
        match failure {
            Some(ProteusError::WorkerCrashed { request_id, .. }) => {
                assert_eq!(request_id, rid);
                crashed += 1;
            }
            Some(other) => panic!("rid {rid}: untyped chaos escape {other:?}"),
            None => {
                let mut reassembly = DeobfuscationSession::new(&secrets);
                for frame in frames {
                    reassembly.accept(frame).expect("accept");
                }
                let (got_g, got_p) = reassembly.finish().expect("finish");
                let (want_g, want_p) = serial_reference(proteus, &optimizer, rid, &graph, &params);
                assert_eq!(got_g, want_g, "rid {rid}");
                assert_eq!(got_p, want_p, "rid {rid}");
                completed += 1;
            }
        }
    }
    assert!(
        crashed > 0,
        "the 1-in-3 panic rate never fired in 12 requests"
    );
    assert!(completed > 0, "every request crashed; parity never checked");
    let stats = runtime.stats();
    assert_eq!(stats.tasks_crashed, crashed, "one lane failure per crash");
    assert!(
        runtime.is_healthy(),
        "contained crashes never down the pool"
    );
}

/// Seeded chaos storm: mixed faults (crash-prone, kill-prone, cache
/// poisoning + stalls) across a 3-replica fleet. Every request must end
/// in either a bit-identical success or a typed fault-family error —
/// across every seed in the battery.
#[test]
fn seeded_chaos_storm_yields_only_parity_or_typed_errors() {
    quiet_fault_panics();
    let proteus = shared_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    let seeds: Vec<u64> = std::env::var("PROTEUS_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("PROTEUS_CHAOS_SEEDS: u64 list"))
                .collect()
        })
        .unwrap_or_else(|| vec![0x5EED_0001, 0x5EED_0002, 0x5EED_0003]);
    for seed in seeds {
        let faults = [
            // replica 0: seeded crash rate
            FaultPlan {
                seed,
                panic_one_in: 3,
                ..Default::default()
            },
            // replica 1: dies partway into its first request (then
            // respawns clean via the fleet)
            FaultPlan {
                seed,
                kill_at_task: 3 + (seed % 4) as u32,
                ..Default::default()
            },
            // replica 2: stalls and poisons the optimized-member cache
            FaultPlan {
                seed,
                stall_one_in: 5,
                stall_ms: 3,
                poison_cache_at: 1 + (seed % 3) as u32,
                ..Default::default()
            },
        ];
        let fleet = Fleet::with_replica_faults(
            Optimizer::new(Profile::OrtLike),
            FleetConfig {
                replicas: 3,
                serve: ServeConfig {
                    workers: 1,
                    window: 4,
                    ..Default::default() // cache ON for the poison fault
                },
                deadline_ms: 0,
                max_retries: 3,
                backoff_ms: 1,
                auto_respawn: true,
                virtual_nodes: 16,
            },
            &faults,
        )
        .expect("fleet starts");
        let mut succeeded = 0usize;
        for i in 0..8u64 {
            let rid = seed.wrapping_mul(131).wrapping_add(i * 17);
            let (graph, params) = request_model(rid);
            match fleet.serve_request_traced(proteus, &graph, &params, rid) {
                Ok(got) => {
                    let (want_g, want_p) =
                        serial_reference(proteus, &optimizer, rid, &graph, &params);
                    assert_eq!(got.graph, want_g, "seed {seed:#x} rid {rid:#x}");
                    assert_eq!(got.params, want_p, "seed {seed:#x} rid {rid:#x}");
                    succeeded += 1;
                }
                Err(
                    ProteusError::WorkerCrashed { .. }
                    | ProteusError::ReplicaUnavailable { .. }
                    | ProteusError::Deadline { .. }
                    | ProteusError::RetriesExhausted { .. },
                ) => {} // typed fault-family error: acceptable chaos outcome
                Err(other) => panic!("seed {seed:#x} rid {rid:#x}: untyped escape {other:?}"),
            }
        }
        // with one always-recovering fleet and a bounded crash rate, the
        // storm must not starve: most requests still get served
        assert!(
            succeeded >= 4,
            "seed {seed:#x}: only {succeeded}/8 requests survived the storm"
        );
        let stats = fleet.stats();
        assert_eq!(stats.served, succeeded, "seed {seed:#x}: {stats:?}");
    }
}
