//! Session/legacy parity: the one-shot `obfuscate`/`deobfuscate` wrappers
//! must be **bit-identical** to driving the streaming sessions by hand,
//! across the model zoo — same buckets, same wire bytes, same reassembled
//! graphs. Plus the determinism contract of the per-request seed
//! derivation: the same `request_id` yields byte-identical frames across
//! independent sessions, distinct ids diverge.
//!
//! CI runs this suite in release mode (the `session-service` job) so the
//! compatibility wrappers cannot rot.

use proteus::{
    optimize_model, DeobfuscationSession, ObfuscatedModel, PartitionSpec, Proteus, ProteusConfig,
    ProteusError, SealedBucket, LEGACY_REQUEST_ID,
};
use proteus_graph::{
    Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Graph, Op, PoolAttrs, TensorMap,
};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::{Optimizer, Profile};

fn quick_config(k: usize, n: usize) -> ProteusConfig {
    ProteusConfig {
        k,
        partitions: PartitionSpec::Count(n),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    }
}

/// An executable CNN with parameters, so parity also covers the sentinel
/// parameter streams (structure-only models skip them).
fn executable_cnn() -> (Graph, TensorMap) {
    let mut g = Graph::new("parity-cnn");
    let x = g.input([1, 3, 12, 12]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 8, 3).padding(1).bias(false)),
        [x],
    );
    let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c1]);
    let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
    let c2 = g.add(
        Op::Conv(ConvAttrs::new(8, 8, 3).padding(1).bias(false)),
        [r1],
    );
    let b2 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c2]);
    let a = g.add(Op::Add, [b2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [a]);
    let p = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [r2]);
    let f = g.add(Op::Flatten, [p]);
    let fc = g.add(Op::Gemm(GemmAttrs::new(8 * 6 * 6, 10)), [f]);
    g.set_outputs([fc]);
    let params = TensorMap::init_random(&g, 77);
    (g, params)
}

/// Drains a session into `(model, frame_bytes, secrets)`.
fn drive_session(
    proteus: &Proteus,
    g: &Graph,
    params: &TensorMap,
    request_id: u64,
) -> (ObfuscatedModel, Vec<Vec<u8>>, proteus::ObfuscationSecrets) {
    let mut session = proteus
        .obfuscate_session(g, params, request_id)
        .expect("session opens");
    let mut buckets = Vec::new();
    let mut frames = Vec::new();
    while let Some(frame) = session.next_frame() {
        frames.push(frame.to_bytes().to_vec());
        buckets.push(frame.into_bucket());
    }
    let secrets = session.finish().expect("all frames emitted");
    (ObfuscatedModel { buckets }, frames, secrets)
}

#[test]
fn wrapper_is_bit_identical_to_session_across_the_zoo() {
    // registry-count pin: the sweep below must cover the whole registry
    assert_eq!(zoo::all().len(), zoo::COUNT);
    let proteus = Proteus::train(quick_config(2, 4), &[build(ModelKind::ResNet)]);
    for entry in zoo::all() {
        let kind = entry.name;
        let g = (entry.build)();
        let (legacy_model, legacy_secrets) =
            proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        let (session_model, _, session_secrets) =
            drive_session(&proteus, &g, &TensorMap::new(), LEGACY_REQUEST_ID);

        // identical wire bytes — covers graphs, params, order, framing
        assert_eq!(
            legacy_model.to_bytes().to_vec(),
            session_model.to_bytes().to_vec(),
            "{kind}: wrapper and session models diverge on the wire"
        );
        assert_eq!(
            legacy_secrets.real_positions, session_secrets.real_positions,
            "{kind}: real positions diverge"
        );

        // identical reassembly through both deobfuscation paths
        let (legacy_back, _) = proteus
            .deobfuscate(&legacy_secrets, &session_model)
            .expect("wrapper deobfuscate");
        let mut reassembly = DeobfuscationSession::new(&session_secrets);
        let nb = session_model.num_buckets() as u32;
        for (i, bucket) in session_model.buckets.iter().enumerate() {
            reassembly
                .accept(SealedBucket {
                    bucket_index: i as u32,
                    num_buckets: nb,
                    bucket: bucket.clone(),
                })
                .expect("accept");
        }
        let (session_back, _) = reassembly.finish().expect("session deobfuscate");
        assert_eq!(
            legacy_back, session_back,
            "{kind}: reassembled graphs diverge"
        );
    }
}

#[test]
fn same_request_id_yields_byte_identical_frames() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(3, 3), &[build(ModelKind::MobileNet)]);
    let (_, frames_a, _) = drive_session(&proteus, &g, &params, 0xFEED);
    let (_, frames_b, _) = drive_session(&proteus, &g, &params, 0xFEED);
    assert_eq!(frames_a.len(), frames_b.len());
    for (i, (a, b)) in frames_a.iter().zip(&frames_b).enumerate() {
        assert_eq!(a, b, "frame {i} differs across runs of one request_id");
    }

    // distinct request ids must not replay the same stream
    let (_, frames_c, _) = drive_session(&proteus, &g, &params, 0xFEED + 1);
    assert_ne!(
        frames_a, frames_c,
        "distinct request ids produced identical frame streams"
    );
}

#[test]
fn streamed_optimization_matches_batch_wrapper_bit_for_bit() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(2, 3), &[build(ModelKind::ResNet)]);
    let optimizer = Optimizer::new(Profile::OrtLike);

    // batch path: wrappers end to end
    let (model, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    let optimized = optimize_model(&model, &optimizer);
    let (batch_graph, batch_params) = proteus
        .deobfuscate(&secrets, &optimized)
        .expect("deobfuscate");

    // streaming path: frame-at-a-time, returned out of order
    let mut session = proteus
        .obfuscate_session(&g, &params, LEGACY_REQUEST_ID)
        .expect("session");
    let mut optimized_frames: Vec<SealedBucket> = session
        .by_ref()
        .map(|frame| frame.optimize(&optimizer, None))
        .collect();
    let secrets2 = session.finish().expect("secrets");
    optimized_frames.reverse(); // any-order acceptance
    let mut reassembly = proteus.deobfuscate_session(&secrets2);
    for frame in optimized_frames {
        reassembly.accept(frame).expect("accept");
    }
    let (stream_graph, stream_params) = reassembly.finish().expect("reassemble");

    assert_eq!(batch_graph, stream_graph, "optimized graphs diverge");
    assert_eq!(batch_params, stream_params, "optimized params diverge");
}

#[test]
fn session_protocol_violations_are_typed_errors() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(2, 3), &[build(ModelKind::ResNet)]);

    // secrets before all frames are emitted
    let mut session = proteus
        .obfuscate_session(&g, &params, 1)
        .expect("session opens");
    let first = session.next_frame().expect("one frame");
    let err = session.finish().unwrap_err();
    assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");

    // duplicate and mismatched frames on the receiving side
    let mut session = proteus.obfuscate_session(&g, &params, 1).expect("session");
    let frames: Vec<SealedBucket> = session.by_ref().collect();
    let secrets = session.finish().expect("secrets");
    let mut reassembly = proteus.deobfuscate_session(&secrets);
    reassembly.accept(frames[0].clone()).expect("first accept");
    let err = reassembly.accept(frames[0].clone()).unwrap_err();
    assert!(
        matches!(
            err,
            ProteusError::DuplicateFrame {
                bucket_index: 0,
                request_id: 1
            }
        ),
        "duplicates get the dedicated variant: {err:?}"
    );
    let mut alien = first;
    alien.num_buckets += 7;
    let err = reassembly.accept(alien).unwrap_err();
    assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");

    // reassembly while frames are missing
    let reassembly = proteus.deobfuscate_session(&secrets);
    let err = reassembly.finish().unwrap_err();
    assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
}

#[test]
fn duplicate_frame_is_rejected_and_never_overwrites() {
    // Regression: a replayed bucket frame must surface as the dedicated
    // DuplicateFrame variant, and the first accepted frame must survive —
    // even when the replay carries *different* (e.g. tampered) content.
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(2, 3), &[build(ModelKind::ResNet)]);
    let mut session = proteus
        .obfuscate_session(&g, &params, 0xD0)
        .expect("session");
    let frames: Vec<SealedBucket> = session.by_ref().collect();
    let secrets = session.finish().expect("secrets");

    // clean run: the expected reassembly
    let mut clean = proteus.deobfuscate_session(&secrets);
    for f in &frames {
        clean.accept(f.clone()).expect("accept");
    }
    let (expected_graph, expected_params) = clean.finish().expect("finish");

    // replayed run: bucket 0 arrives again with its members reversed (a
    // tampered duplicate) — rejected, and reassembly is unaffected
    let mut reassembly = proteus.deobfuscate_session(&secrets);
    reassembly.accept(frames[0].clone()).expect("first accept");
    let mut tampered = frames[0].clone();
    tampered.bucket.members.reverse();
    let err = reassembly.accept(tampered).unwrap_err();
    assert!(
        matches!(
            err,
            ProteusError::DuplicateFrame {
                bucket_index: 0,
                request_id: 0xD0
            }
        ),
        "{err:?}"
    );
    assert_eq!(reassembly.received(), 1, "duplicate must not count");
    for f in frames.iter().skip(1) {
        reassembly.accept(f.clone()).expect("accept rest");
    }
    let (got_graph, got_params) = reassembly.finish().expect("finish");
    assert_eq!(got_graph, expected_graph, "duplicate overwrote bucket 0");
    assert_eq!(got_params, expected_params);
}

#[test]
fn mux_acceptance_checks_request_identity() {
    // accept_mux_bytes binds a reassembly session to its request id: the
    // matching id (v2) and the legacy v1 encoding of the same request are
    // accepted; a frame from another request's stream is rejected intact.
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(2, 2), &[build(ModelKind::ResNet)]);
    let mut session = proteus
        .obfuscate_session(&g, &params, 0xA11CE)
        .expect("session");
    let frames: Vec<SealedBucket> = session.by_ref().collect();
    let secrets = session.finish().expect("secrets");
    assert_eq!(secrets.request_id, 0xA11CE, "secrets record their request");

    let mut reassembly = proteus.deobfuscate_session(&secrets);
    let err = reassembly
        .accept_mux_bytes(frames[0].to_mux_bytes(0xBAD))
        .unwrap_err();
    assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
    assert_eq!(reassembly.received(), 0, "injected frame must not land");
    for f in &frames {
        reassembly
            .accept_mux_bytes(f.to_mux_bytes(0xA11CE))
            .expect("matching id accepted");
    }
    reassembly.finish().expect("reassembles");

    // the legacy wrapper's secrets carry LEGACY_REQUEST_ID, so v1 frames
    // (request id 0 on the wire) pass the identity check
    let (model, legacy_secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    assert_eq!(legacy_secrets.request_id, LEGACY_REQUEST_ID);
    let mut reassembly = proteus.deobfuscate_session(&legacy_secrets);
    let nb = model.num_buckets() as u32;
    for (i, bucket) in model.buckets.iter().enumerate() {
        let sealed = SealedBucket {
            bucket_index: i as u32,
            num_buckets: nb,
            bucket: bucket.clone(),
        };
        reassembly
            .accept_mux_bytes(sealed.to_bytes())
            .expect("v1 frame accepted by the mux path");
    }
    reassembly.finish().expect("reassembles");
}

#[test]
fn config_validation_front_loads_degenerate_requests() {
    let (g, params) = executable_cnn();
    let mut cfg = quick_config(2, 3);
    cfg.k = 0; // degenerate — but legacy train() does not validate
    let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
    let err = proteus.obfuscate_session(&g, &params, 1).unwrap_err();
    assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");
    let err = proteus.obfuscate(&g, &params).unwrap_err();
    assert!(
        matches!(err, ProteusError::Config { .. }),
        "legacy wrapper must surface the same typed error: {err:?}"
    );
}
