//! Cross-crate integration tests: the full obfuscate → optimize →
//! de-obfuscate protocol on executable models, checked for functional
//! equivalence with the reference interpreter.

use proteus::{optimize_model, PartitionSpec, Proteus, ProteusConfig, SentinelMode};
use proteus_graph::{
    Activation, BatchNormAttrs, ConvAttrs, Executor, GemmAttrs, Graph, Op, PoolAttrs, Tensor,
    TensorMap,
};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_config(k: usize, n: usize) -> ProteusConfig {
    ProteusConfig {
        k,
        partitions: PartitionSpec::Count(n),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    }
}

/// An executable CNN with residual, BN, pooling, and a classifier head —
/// enough structure to exercise every optimizer rule family.
fn executable_cnn() -> (Graph, TensorMap) {
    let mut g = Graph::new("itest-cnn");
    let x = g.input([1, 3, 12, 12]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 8, 3).padding(1).bias(false)),
        [x],
    );
    let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c1]);
    let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
    let c2 = g.add(
        Op::Conv(ConvAttrs::new(8, 8, 3).padding(1).bias(false)),
        [r1],
    );
    let b2 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c2]);
    let a = g.add(Op::Add, [b2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [a]);
    let p = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [r2]);
    let d = g.add(Op::Dropout { p: 20 }, [p]);
    let f = g.add(Op::Flatten, [d]);
    let fc = g.add(Op::Gemm(GemmAttrs::new(8 * 6 * 6, 10)), [f]);
    g.set_outputs([fc]);
    let params = TensorMap::init_random(&g, 77);
    (g, params)
}

#[test]
fn protocol_preserves_semantics_for_both_optimizers() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(3, 4), &[build(ModelKind::ResNet)]);
    let (bucket, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    assert_eq!(bucket.num_buckets(), 4);
    assert_eq!(bucket.total_subgraphs(), 4 * 4);

    let mut rng = StdRng::seed_from_u64(1);
    let probe = Tensor::random([1, 3, 12, 12], 1.0, &mut rng);
    let expected = Executor::new(&g, &params)
        .run(std::slice::from_ref(&probe))
        .expect("run");

    for profile in [Profile::OrtLike, Profile::HidetLike] {
        let optimized = optimize_model(&bucket, &Optimizer::new(profile));
        let (model, mparams) = proteus
            .deobfuscate(&secrets, &optimized)
            .expect("deobfuscate");
        model.validate().expect("valid");
        let got = Executor::new(&model, &mparams)
            .run(std::slice::from_ref(&probe))
            .expect("run");
        assert!(
            got[0].allclose(&expected[0], 1e-2),
            "{profile:?}: outputs diverged by {}",
            got[0].max_abs_diff(&expected[0])
        );
    }
}

#[test]
fn wire_roundtrip_through_the_whole_protocol() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(2, 3), &[build(ModelKind::MobileNet)]);
    let (bucket, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");

    // owner -> bytes -> service -> bytes -> owner
    let wire = bucket.to_bytes();
    let received = proteus::ObfuscatedModel::from_bytes(wire).expect("decode");
    let optimized = optimize_model(&received, &Optimizer::new(Profile::OrtLike));
    let wire_back = optimized.to_bytes();
    let returned = proteus::ObfuscatedModel::from_bytes(wire_back).expect("decode");
    let (model, mparams) = proteus
        .deobfuscate(&secrets, &returned)
        .expect("deobfuscate");

    let mut rng = StdRng::seed_from_u64(2);
    let probe = Tensor::random([1, 3, 12, 12], 1.0, &mut rng);
    let expected = Executor::new(&g, &params)
        .run(std::slice::from_ref(&probe))
        .expect("run");
    let got = Executor::new(&model, &mparams).run(&[probe]).expect("run");
    assert!(got[0].allclose(&expected[0], 1e-2));
}

#[test]
fn perturb_mode_protocol_roundtrip() {
    let (g, params) = executable_cnn();
    let mut config = quick_config(3, 3);
    config.mode = SentinelMode::Perturb;
    let proteus = Proteus::train(config, &[build(ModelKind::ResNet)]);
    let (bucket, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));
    let (model, mparams) = proteus
        .deobfuscate(&secrets, &optimized)
        .expect("deobfuscate");
    let mut rng = StdRng::seed_from_u64(3);
    let probe = Tensor::random([1, 3, 12, 12], 1.0, &mut rng);
    let expected = Executor::new(&g, &params)
        .run(std::slice::from_ref(&probe))
        .expect("run");
    let got = Executor::new(&model, &mparams).run(&[probe]).expect("run");
    assert!(got[0].allclose(&expected[0], 1e-2));
}

#[test]
fn zoo_models_structural_protocol() {
    // structure-only (no weights): every zoo model obfuscates and
    // reassembles into a graph with identical opcode multiset and shapes
    let proteus = Proteus::train(quick_config(1, 6), &[build(ModelKind::ResNet)]);
    for kind in [
        ModelKind::GoogleNet,
        ModelKind::DistilBert,
        ModelKind::MnasNet,
    ] {
        let g = build(kind);
        let (bucket, secrets) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        let (back, _) = proteus
            .deobfuscate(&secrets, &bucket)
            .expect("identity deobfuscate");
        assert_eq!(back.len(), g.len(), "{kind}");
        proteus_graph::infer_shapes(&back).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let _ = bucket;
    }
}

#[test]
fn sentinels_in_buckets_are_valid_graphs() {
    let (g, params) = executable_cnn();
    let proteus = Proteus::train(quick_config(4, 3), &[build(ModelKind::GoogleNet)]);
    let (bucket, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    for (bi, b) in bucket.buckets.iter().enumerate() {
        for (mi, m) in b.members.iter().enumerate() {
            m.graph
                .validate()
                .unwrap_or_else(|e| panic!("bucket {bi} member {mi}: {e}"));
        }
        // exactly one member is the real one
        assert!(secrets.real_positions[bi] < b.members.len());
    }
}
