//! Integration tests of the confidentiality properties: what the optimizer
//! party (or an interceptor) can and cannot see in the bucket.

use proteus::{PartitionSpec, Proteus, ProteusConfig};
use proteus_adversary::{attack_buckets, LabelledBucket, SageClassifier, SageConfig};
use proteus_graph::{GraphStats, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};

fn quick_config(k: usize) -> ProteusConfig {
    ProteusConfig {
        k,
        partitions: PartitionSpec::TargetSize(8),
        graphrnn: GraphRnnConfig {
            epochs: 3,
            max_nodes: 24,
            ..Default::default()
        },
        topology_pool: 40,
        ..Default::default()
    }
}

#[test]
fn bucket_never_contains_the_whole_model() {
    // The paper's first design requirement: the model architecture in its
    // entirety is never exposed. Every bucket member must be strictly
    // smaller than the protected model.
    let g = build(ModelKind::ResNet);
    let proteus = Proteus::train(quick_config(2), &[build(ModelKind::MobileNet)]);
    let (bucket, _) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
    for b in &bucket.buckets {
        for m in &b.members {
            assert!(
                m.graph.len() < g.len() / 2,
                "a bucket member with {} nodes leaks too much of a {}-node model",
                m.graph.len(),
                g.len()
            );
        }
    }
}

#[test]
fn no_bucket_member_exposes_the_whole_model_across_the_registry() {
    // The paper's first design requirement swept over the full registry
    // (modern families included): the architecture in its entirety is
    // never exposed — every bucket member of every zoo model, real piece
    // or sentinel, is strictly smaller than the protected model, and the
    // model is always split across more than one bucket. (The tighter
    // half-the-model bound is checked on the dedicated ResNet case above;
    // branchy graphs like googlenet partition less evenly under the quick
    // 4-way config used for the sweep.)
    assert_eq!(zoo::all().len(), zoo::COUNT);
    let cfg = ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(4),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 24,
        ..Default::default()
    };
    let proteus = Proteus::train(cfg, &[build(ModelKind::MobileNet)]);
    for entry in zoo::all() {
        let g = (entry.build)();
        let (bucket, _) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        assert!(
            bucket.buckets.len() > 1,
            "{}: the whole model landed in a single bucket",
            entry.name
        );
        for b in &bucket.buckets {
            for m in &b.members {
                assert!(
                    m.graph.len() < g.len(),
                    "{}: a bucket member with {} nodes exposes the whole {}-node model",
                    entry.name,
                    m.graph.len(),
                    g.len()
                );
            }
        }
    }
}

#[test]
fn real_positions_are_not_constant() {
    // shuffling must actually move the real member around
    let g = build(ModelKind::GoogleNet);
    let proteus = Proteus::train(quick_config(3), &[build(ModelKind::ResNet)]);
    let (_, secrets) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
    let distinct: std::collections::HashSet<_> = secrets.real_positions.iter().collect();
    assert!(
        distinct.len() > 1,
        "real subgraph always at position {:?}",
        secrets.real_positions.first()
    );
}

#[test]
fn sentinel_statistics_band_protected_graph() {
    // Algorithm 1's purpose: within a bucket, the real subgraph's
    // statistics must not be an outlier. Check that for most buckets the
    // real piece's node count lies within the sentinels' min..max band.
    let g = build(ModelKind::MnasNet);
    let proteus = Proteus::train(
        quick_config(6),
        &[build(ModelKind::MobileNet), build(ModelKind::ResNet)],
    );
    let (bucket, secrets) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
    let mut inside = 0usize;
    for (b, &pos) in bucket.buckets.iter().zip(&secrets.real_positions) {
        let real_nodes = GraphStats::of(&b.members[pos].graph).num_nodes;
        let sentinel_sizes: Vec<f64> = b
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, m)| GraphStats::of(&m.graph).num_nodes)
            .collect();
        let lo = sentinel_sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sentinel_sizes.iter().cloned().fold(0.0, f64::max);
        if real_nodes >= lo - 2.0 && real_nodes <= hi + 2.0 {
            inside += 1;
        }
    }
    assert!(
        inside * 3 >= bucket.buckets.len() * 2,
        "real piece is a size outlier in {}/{} buckets",
        bucket.buckets.len() - inside,
        bucket.buckets.len()
    );
}

#[test]
fn untrained_adversary_faces_full_search_space() {
    // with an uninformative classifier the search space must stay near
    // (k+1)^n
    let g = build(ModelKind::ResNet);
    let proteus = Proteus::train(quick_config(4), &[build(ModelKind::MobileNet)]);
    let (bucket, secrets) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
    let labelled: Vec<LabelledBucket> = bucket
        .buckets
        .iter()
        .zip(&secrets.real_positions)
        .map(|(b, &pos)| LabelledBucket {
            real: b.members[pos].graph.clone(),
            sentinels: b
                .members
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, m)| m.graph.clone())
                .collect(),
        })
        .collect();
    let clf = SageClassifier::new(SageConfig::default(), 5);
    let report = attack_buckets(&clf, &labelled);
    let max_log10 = labelled.len() as f64 * 5f64.log10(); // (k+1)^n, k=4
    assert!(
        report.log10_candidates > max_log10 * 0.5,
        "untrained adversary reduced the space to 10^{:.1} of 10^{:.1}",
        report.log10_candidates,
        max_log10
    );
}
