//! Property battery for the warm sentinel inventory: concurrent
//! draw/refill interleavings, bounded-capacity exhaustion, and the
//! persisted artifact section must all be invisible on the wire —
//! sentinels are pure functions of the trained state and their key, and
//! the inventory is only a memo over that function.
//!
//! CI runs this suite in release mode (the `serve-stress` job).

use proptest::prelude::*;
use proteus::{
    PartitionSpec, Proteus, ProteusConfig, SentinelInventory, SentinelPool, TrainedArtifact,
};
use proteus_graph::wire::encode_graph;
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use std::sync::Arc;

fn tiny_config(seed: u64) -> ProteusConfig {
    ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(2),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 16,
            ..Default::default()
        },
        topology_pool: 8,
        sentinel_variants: 2,
        seed,
        ..Default::default()
    }
}

fn train(seed: u64) -> Proteus {
    Proteus::train(tiny_config(seed), &[build(ModelKind::ResNet)])
}

/// All sealed frame bytes of one request.
fn frames(proteus: &Proteus, rid: u64) -> Vec<Vec<u8>> {
    proteus
        .obfuscate_session(&build(ModelKind::AlexNet), &TensorMap::new(), rid)
        .expect("session")
        .map(|f| f.to_bytes().to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Sessions racing the background warmer — some draws hit entries the
    // warmer just built, some build inline and store first — must emit
    // the same bytes as an identically trained instance that never uses
    // an inventory at all. The join with no timeout doubles as the
    // no-deadlock check.
    #[test]
    fn concurrent_draws_race_the_warmer_without_divergence(
        seed in 0u64..1_000,
        clients in 2usize..4,
    ) {
        let warm = Arc::new(train(seed));
        let reference = train(seed);
        reference.inventory().set_enabled(false);

        let warmer = SentinelPool::spawn(Arc::clone(&warm));
        let raced: Vec<(u64, Vec<Vec<u8>>)> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..clients as u64)
                .map(|rid| {
                    let warm = Arc::clone(&warm);
                    scope.spawn(move || (rid, frames(&warm, rid)))
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("client")).collect()
        });
        let built = warmer.join();
        prop_assert!(built > 0, "warmer built nothing");
        prop_assert_eq!(warm.inventory().len(), warm.factory().key_space().len());

        for (rid, got) in raced {
            let want = frames(&reference, rid);
            prop_assert_eq!(
                got, want,
                "request {} diverged while racing the warmer", rid
            );
        }
    }

    // A bounded inventory that fills up (store refused past capacity)
    // must degrade to inline building with identical results, and what
    // it did memoize must replay byte-identically.
    #[test]
    fn exhausted_inventory_falls_back_inline(
        seed in 0u64..1_000,
        capacity in 0usize..6,
    ) {
        let proteus = train(seed);
        let factory = proteus.factory();
        let small = SentinelInventory::new(capacity);
        for key in factory.key_space() {
            let via_memo = factory.sentinel(key, Some(&small));
            let pure = factory.build_sentinel(key);
            prop_assert_eq!(
                via_memo.as_ref().map(encode_graph),
                pure.as_ref().map(encode_graph),
                "key {:?} diverged through the bounded inventory", key
            );
        }
        prop_assert!(small.len() <= capacity, "bounded inventory overflowed");
        // second sweep: stored keys replay, refused keys rebuild — same bytes
        for key in factory.key_space() {
            let replay = factory.sentinel(key, Some(&small)).map(|g| encode_graph(&g));
            let pure = factory.build_sentinel(key).map(|g| encode_graph(&g));
            prop_assert_eq!(replay, pure);
        }
    }

    // Any single-byte corruption inside the persisted sentinel section
    // is a typed artifact error, never a panic or a silent misparse.
    #[test]
    fn corrupted_inventory_section_is_rejected(
        pos_pick in proptest::num::u64::ANY,
        bit in 0u8..8,
    ) {
        let proteus = train(7);
        proteus.warm_inventory();
        let bytes = proteus.to_artifact_bytes().to_vec();

        // the sentinel section is the last of the six section frames;
        // find where it starts by walking the preceding five
        let mut buf = bytes::Bytes::copy_from_slice(&bytes[10..]);
        let total = buf.len();
        for _ in 0..5 {
            proteus_graph::wire::decode_frame(&mut buf).expect("section frame");
        }
        let tail_start = 10 + (total - buf.len());
        prop_assert!(tail_start < bytes.len());

        let pos = tail_start + (pos_pick as usize) % (bytes.len() - tail_start);
        let mut raw = bytes.clone();
        raw[pos] ^= 1u8 << bit;
        prop_assert!(
            TrainedArtifact::from_bytes(&raw).is_err(),
            "sentinel-section corruption at byte {} bit {} was accepted", pos, bit
        );
    }
}

/// A warm-started process must serve the persisted inventory's sentinels
/// byte-identically to the instance that built them — and actually *use*
/// it (no rebuild on first draw).
#[test]
fn persisted_inventory_round_trips_through_serving() {
    let proteus = train(11);
    let warmed = proteus.warm_inventory();
    assert!(warmed > 0);
    let bytes = proteus.to_artifact_bytes();
    let loaded = Proteus::from_artifact_bytes(&bytes).expect("artifact loads");
    assert_eq!(
        loaded.inventory().len(),
        warmed,
        "prefilled inventory carries every persisted sentinel"
    );

    for rid in [0u64, 5, 0xFEED] {
        assert_eq!(
            frames(&proteus, rid),
            frames(&loaded, rid),
            "request {rid:#x}: warm-started frames diverge"
        );
    }
    // the prefilled entries must actually serve draws; only negative keys
    // (builds that fail, which the artifact does not persist) may miss
    let stats = loaded.inventory().stats();
    assert!(
        stats.hits > 0,
        "loaded instance never drew from the inventory"
    );
}
