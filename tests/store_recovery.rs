//! Crash-safety battery for the durable store (`proteus::store`).
//!
//! Three contracts are enforced here, mirroring the acceptance bar of the
//! store design:
//!
//! - **Crash recovery**: a SIGKILL-equivalent interruption at *any* WAL
//!   byte boundary — simulated by truncating the on-disk log at every
//!   position past the committed horizon — recovers to exactly the last
//!   committed record. Nothing acknowledged is ever lost, and nothing
//!   unacknowledged ever resurfaces.
//! - **Tamper detection**: any single flipped byte, any duplicated or
//!   reordered record, and any marker/WAL mismatch inside the committed
//!   horizon is a typed [`StoreError`] — never a panic, never a silent
//!   partial recovery.
//! - **Resume parity**: a [`DeobfuscationSession`] interrupted at an
//!   arbitrary point, journaled into the store, and resumed after a
//!   "kill" (drop + reopen from disk) finishes with output bit-identical
//!   to the uninterrupted run, across the full model zoo.
//!
//! CI runs this suite in release mode in the `store-recovery` job,
//! alongside a real `proteus-serve` kill-and-restart round trip.

use proteus::store::{SessionCheckpoint, Store, StoreError};
use proteus::{
    DeobfuscationSession, PartitionSpec, Proteus, ProteusConfig, ProteusError, SealedBucket,
};
use proteus_graph::wire::{encode_graph, encode_params};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn quick_proteus() -> &'static Proteus {
    static QUICK: OnceLock<Proteus> = OnceLock::new();
    QUICK.get_or_init(|| {
        let cfg = ProteusConfig {
            k: 2,
            partitions: PartitionSpec::Count(3),
            graphrnn: GraphRnnConfig {
                epochs: 2,
                max_nodes: 20,
                ..Default::default()
            },
            topology_pool: 30,
            ..Default::default()
        };
        Proteus::train(cfg, &[build(ModelKind::ResNet)])
    })
}

/// A unique scratch directory per call; callers clean up on success (a
/// failed test leaves its directory behind for inspection).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "proteus-store-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes a store directory from raw WAL + marker bytes, bypassing the
/// Store API — how every crash/tamper scenario is staged.
fn stage(dir: &Path, wal: &[u8], marker: &[u8]) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("scratch dir");
    std::fs::write(Store::wal_path(dir), wal).expect("stage wal");
    std::fs::write(Store::marker_path(dir), marker).expect("stage marker");
}

/// Builds a store with `frames_per_lane` journaled frames on each given
/// lane and returns the raw on-disk bytes `(wal, marker)`.
fn journaled_store(tag: &str, lanes: &[u64], frames_per_lane: usize) -> (Vec<u8>, Vec<u8>) {
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = Store::open_or_create(&dir).expect("store creates");
    for &rid in lanes {
        for i in 0..frames_per_lane {
            let frame = vec![(rid as u8) ^ (i as u8); 48];
            store.record_lane_frame(rid, &frame).expect("journal");
        }
    }
    drop(store);
    let wal = std::fs::read(Store::wal_path(&dir)).expect("read wal");
    let marker = std::fs::read(Store::marker_path(&dir)).expect("read marker");
    let _ = std::fs::remove_dir_all(&dir);
    (wal, marker)
}

/// Byte offsets where each committed WAL record starts (wire v1 frame:
/// 22-byte header with the payload length at offset 10).
fn record_offsets(wal: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at < wal.len() {
        offsets.push(at);
        let len = u32::from_le_bytes(wal[at + 10..at + 14].try_into().expect("len field"));
        at += 22 + len as usize;
    }
    assert_eq!(at, wal.len(), "wal parses into whole records");
    offsets
}

// ---------------------------------------------------------------------------
// crash recovery: torn tails at every byte boundary

#[test]
fn kill_at_every_byte_past_the_horizon_recovers_the_committed_state() {
    // commit point: 2 lanes journaled; crash window: 2 more frames
    // appended whose marker rename "never happened"
    let dir = scratch("torn-build");
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = Store::open_or_create(&dir).expect("store creates");
    store.record_lane_frame(7, &[0xAA; 40]).expect("journal");
    store.record_lane_frame(9, &[0xBB; 40]).expect("journal");
    let committed = store.committed_len() as usize;
    let mid_marker = std::fs::read(Store::marker_path(&dir)).expect("marker snapshot");
    store.record_lane_frame(7, &[0xCC; 40]).expect("journal");
    store.finish_lane(9).expect("finish");
    drop(store);
    let wal = std::fs::read(Store::wal_path(&dir)).expect("wal snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(wal.len() > committed);

    let dir = scratch("torn");
    for cut in committed..=wal.len() {
        stage(&dir, &wal[..cut], &mid_marker);
        let (reopened, report) =
            Store::open_or_create(&dir).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(
            report.truncated_bytes as usize,
            cut - committed,
            "cut {cut}"
        );
        assert_eq!(report.pending_lanes, 2, "cut {cut}");
        // the unacknowledged appends are gone: lane 7 has exactly its
        // one committed frame, lane 9 is still pending
        let lanes = reopened.pending_lanes();
        assert_eq!(lanes[0].0, 7);
        assert_eq!(lanes[0].1.len(), 1, "cut {cut}: torn tail resurfaced");
        assert_eq!(lanes[1].0, 9);
        drop(reopened);
        // the tail was physically truncated: a second open sees a clean log
        let on_disk = std::fs::read(Store::wal_path(&dir)).expect("wal after recovery");
        assert_eq!(on_disk.len(), committed, "cut {cut}: tail not truncated");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_during_store_creation_recovers_to_a_fresh_store() {
    // a crash inside `Store::create` — after the WAL file appeared but
    // before the first marker rename — leaves a prefix of the canonical
    // genesis record and no marker. Nothing was ever acknowledged, so
    // every such state must open as a fresh store, not brick the
    // directory with a Marker error.
    use proteus::store::wal::{encode_record, RecordTag, CHAIN_SEED, STORE_FORMAT_VERSION};
    let genesis = encode_record(
        RecordTag::Genesis,
        0,
        CHAIN_SEED,
        &STORE_FORMAT_VERSION.to_le_bytes(),
    );
    let dir = scratch("create-crash");
    for cut in 0..=genesis.len() {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(Store::wal_path(&dir), &genesis[..cut]).expect("stage partial genesis");
        let (store, report) = Store::open_or_create(&dir)
            .unwrap_or_else(|e| panic!("creation kill at byte {cut} not recovered: {e}"));
        assert!(report.created, "cut {cut}");
        // the recreated store is fully usable
        store
            .record_lane_frame(1, &[0xEE; 32])
            .expect("post-recovery append");
        drop(store);
    }
    // a WAL without a marker that holds *committed-looking* data is a
    // different animal: acknowledged state lost its horizon — refuse
    let (wal, _) = journaled_store("create-crash-build", &[1], 1);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(Store::wal_path(&dir), &wal).expect("stage wal");
    assert!(
        matches!(Store::open_or_create(&dir), Err(StoreError::Marker { .. })),
        "marker-less committed data must refuse to open"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_store_keeps_accepting_appends() {
    // recovery is not read-only: the truncated log must chain correctly
    // for every append after the crash
    let (wal, marker) = journaled_store("append-build", &[1, 2], 2);
    let dir = scratch("append");
    stage(&dir, &wal, &marker);
    let (store, report) = Store::open_or_create(&dir).expect("recovers");
    assert_eq!(report.pending_lanes, 2);
    store
        .record_lane_frame(3, &[0xDD; 48])
        .expect("post-crash append");
    store.finish_lane(1).expect("post-crash finish");
    drop(store);
    let (store, report) = Store::open_or_create(&dir).expect("reopens");
    assert_eq!(report.pending_lanes, 2, "lane 1 done, lane 3 new");
    assert_eq!(store.pending_lanes()[0].0, 2);
    assert_eq!(store.pending_lanes()[1].0, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// tamper detection: typed errors, never silent resync

#[test]
fn flipping_any_byte_of_the_committed_wal_is_detected() {
    let (wal, marker) = journaled_store("flip-build", &[5], 3);
    let dir = scratch("flip");
    for pos in 0..wal.len() {
        let mut bad = wal.clone();
        bad[pos] ^= 0x01;
        stage(&dir, &bad, &marker);
        match Store::open_or_create(&dir) {
            Err(StoreError::Corrupt { .. } | StoreError::Marker { .. }) => {}
            other => panic!("flip at byte {pos}: expected Corrupt, got {other:?}"),
        }
        // the fsck path must agree with the recovery path
        assert!(
            Store::verify(&dir).is_err(),
            "verify accepted flip at {pos}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipping_any_byte_of_the_marker_is_detected() {
    let (wal, marker) = journaled_store("marker-build", &[5], 2);
    let dir = scratch("marker");
    for pos in 0..marker.len() {
        let mut bad = marker.clone();
        bad[pos] ^= 0x01;
        stage(&dir, &wal, &bad);
        match Store::open_or_create(&dir) {
            // most flips break the marker checksum; flips *of* the
            // checksum field or the committed-length field can also
            // surface as a chain/length mismatch against the WAL
            Err(StoreError::Marker { .. } | StoreError::Corrupt { .. }) => {}
            other => panic!("marker flip at byte {pos}: expected an error, got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swapped_and_duplicated_records_break_the_chain() {
    // 3 equal-sized lane records after genesis: swapping or duplicating
    // whole, individually-valid records must still be detected, because
    // each record names its predecessor's digest and its own sequence
    let (wal, marker) = journaled_store("splice-build", &[5], 3);
    let offsets = record_offsets(&wal);
    assert_eq!(offsets.len(), 4, "genesis + 3 lane records");
    let (r1, r2, r3) = (offsets[1], offsets[2], offsets[3]);
    assert_eq!(r2 - r1, r3 - r2, "equal-sized records");
    let size = r2 - r1;
    let dir = scratch("splice");

    // swap records 1 and 2
    let mut swapped = wal.clone();
    swapped.copy_within(r2..r3, r1);
    swapped[r1 + size..r1 + 2 * size].copy_from_slice(&wal[r1..r2]);
    stage(&dir, &swapped, &marker);
    assert!(
        matches!(Store::open_or_create(&dir), Err(StoreError::Corrupt { .. })),
        "swapped records were accepted"
    );

    // duplicate record 1 over record 2
    let mut duped = wal.clone();
    duped.copy_within(r1..r2, r2);
    stage(&dir, &duped, &marker);
    assert!(
        matches!(Store::open_or_create(&dir), Err(StoreError::Corrupt { .. })),
        "duplicated record was accepted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_shorter_than_the_marker_is_corrupt_not_a_torn_tail() {
    // truncation *inside* the committed horizon means acknowledged data
    // is gone — that is corruption, categorically different from an
    // unacknowledged tail
    let (wal, marker) = journaled_store("short-build", &[5], 2);
    let dir = scratch("short");
    for cut in [0, 1, wal.len() / 2, wal.len() - 1] {
        stage(&dir, &wal[..cut], &marker);
        assert!(
            matches!(Store::open_or_create(&dir), Err(StoreError::Corrupt { .. })),
            "committed-region truncation at {cut} was not Corrupt"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// checkpoint → kill → resume: bit parity across the zoo

#[test]
fn interrupted_sessions_resume_bit_identically_across_the_zoo() {
    let proteus = quick_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    let dir = scratch("zoo");
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = Store::open_or_create(&dir).expect("store creates");

    let mut expected_open = Vec::new();
    for (i, kind) in ModelKind::ALL.iter().enumerate() {
        let rid = 0x5000 + i as u64;
        let g = build(*kind);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), rid)
            .expect("session");
        let mut optimized: Vec<SealedBucket> = Vec::new();
        while let Some(frame) = session.next_frame() {
            optimized.push(frame.optimize(&optimizer, None));
        }
        let secrets = session.finish().expect("secrets");

        // the uninterrupted reference
        let mut reference = proteus.deobfuscate_session(&secrets);
        for frame in &optimized {
            reference.accept(frame.clone()).expect("accept");
        }
        let (ref_graph, ref_params) = reference.finish().expect("reference finish");

        // interrupted run: journal the secrets and the first `i % n + 1`
        // frames (a different interruption point per model), then "kill"
        let cut = (i % optimized.len()) + 1;
        store.checkpoint_session(&secrets).expect("checkpoint");
        let mut partial = proteus.deobfuscate_session(&secrets);
        for frame in &optimized[..cut] {
            let bytes = frame.to_bytes();
            partial.accept_bytes(bytes.clone()).expect("accept");
            store.checkpoint_frame(rid, &bytes).expect("journal frame");
        }
        drop(partial);
        expected_open.push((rid, kind, optimized, cut, ref_graph, ref_params));
    }
    drop(store); // the kill

    let (store, report) = Store::open_or_create(&dir).expect("recovers");
    assert_eq!(report.open_sessions, ModelKind::ALL.len());
    assert_eq!(store.open_sessions().len(), ModelKind::ALL.len());

    for (rid, kind, optimized, cut, ref_graph, ref_params) in expected_open {
        let (secrets, frames) = store.resume_session(rid).expect("resume_session");
        assert_eq!(frames.len(), cut, "{kind}: journaled frame count");
        let mut resumed = DeobfuscationSession::resume(&secrets, &frames).expect("resume");
        assert_eq!(resumed.received(), cut, "{kind}: resumed progress");
        for frame in &optimized[cut..] {
            resumed.accept(frame.clone()).expect("accept rest");
        }
        let (graph, params) = resumed.finish().expect("resumed finish");
        assert_eq!(
            encode_graph(&graph).to_vec(),
            encode_graph(&ref_graph).to_vec(),
            "{kind}: resumed graph diverges from the uninterrupted run"
        );
        assert_eq!(
            encode_params(&graph, &params).to_vec(),
            encode_params(&ref_graph, &ref_params).to_vec(),
            "{kind}: resumed params diverge from the uninterrupted run"
        );
        store.finish_session(rid).expect("finish_session");
    }
    assert!(store.open_sessions().is_empty(), "every session finished");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resuming_a_journal_with_a_duplicate_frame_fails_typed() {
    let proteus = quick_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    let g = build(ModelKind::AlexNet);
    let rid = 0x6001;
    let mut session = proteus
        .obfuscate_session(&g, &TensorMap::new(), rid)
        .expect("session");
    let first = session
        .next_frame()
        .expect("frame")
        .optimize(&optimizer, None)
        .to_bytes();
    for _ in session.by_ref() {}
    let secrets = session.finish().expect("secrets");
    let frames = vec![first.clone(), first];
    match DeobfuscationSession::resume(&secrets, &frames) {
        Err(ProteusError::DuplicateFrame { request_id, .. }) => assert_eq!(request_id, rid),
        other => panic!("expected DuplicateFrame, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// SessionCheckpoint byte codec

#[test]
fn session_checkpoint_roundtrips_and_resumes_identically() {
    let proteus = quick_proteus();
    let optimizer = Optimizer::new(Profile::OrtLike);
    let g = build(ModelKind::Bert);
    let rid = 0x7001;
    let mut session = proteus
        .obfuscate_session(&g, &TensorMap::new(), rid)
        .expect("session");
    let optimized: Vec<SealedBucket> = session
        .by_ref()
        .map(|f| f.optimize(&optimizer, None))
        .collect();
    let secrets = session.finish().expect("secrets");

    let mut reference = proteus.deobfuscate_session(&secrets);
    let mut partial = proteus.deobfuscate_session(&secrets);
    for frame in &optimized {
        reference.accept(frame.clone()).expect("accept");
    }
    partial.accept(optimized[0].clone()).expect("accept");
    let (ref_graph, ref_params) = reference.finish().expect("reference");

    let checkpoint = partial.checkpoint();
    assert_eq!(checkpoint.request_id(), rid);
    assert_eq!(checkpoint.received(), 1);
    let bytes = checkpoint.to_bytes();
    let restored = SessionCheckpoint::from_bytes(bytes.clone()).expect("decodes");
    assert_eq!(restored.request_id(), rid);
    assert_eq!(restored.received(), 1);
    let mut resumed = restored.resume();
    for frame in &optimized[1..] {
        resumed.accept(frame.clone()).expect("accept rest");
    }
    let (graph, params) = resumed.finish().expect("resumed");
    assert_eq!(
        encode_graph(&graph).to_vec(),
        encode_graph(&ref_graph).to_vec(),
        "checkpoint-resumed graph diverges"
    );
    assert_eq!(
        encode_params(&graph, &params).to_vec(),
        encode_params(&ref_graph, &ref_params).to_vec(),
        "checkpoint-resumed params diverge"
    );

    // hardening: every truncation of the checkpoint bytes fails typed
    for cut in 0..bytes.len() {
        assert!(
            SessionCheckpoint::from_bytes(bytes.slice(0..cut)).is_err(),
            "checkpoint truncation at {cut} was accepted"
        );
    }
}

// ---------------------------------------------------------------------------
// randomized battery

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn template() -> &'static (Vec<u8>, Vec<u8>, usize) {
        static T: OnceLock<(Vec<u8>, Vec<u8>, usize)> = OnceLock::new();
        T.get_or_init(|| {
            let dir = scratch("prop-build");
            let _ = std::fs::remove_dir_all(&dir);
            let (store, _) = Store::open_or_create(&dir).expect("store creates");
            store.record_lane_frame(11, &[0x11; 64]).expect("journal");
            store.record_lane_frame(13, &[0x13; 64]).expect("journal");
            let committed = store.committed_len() as usize;
            let marker = std::fs::read(Store::marker_path(&dir)).expect("marker");
            store.record_lane_frame(11, &[0x22; 64]).expect("journal");
            store.record_lane_frame(17, &[0x17; 64]).expect("journal");
            drop(store);
            let wal = std::fs::read(Store::wal_path(&dir)).expect("wal");
            let _ = std::fs::remove_dir_all(&dir);
            (wal, marker, committed)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_kill_point_recovers_or_rejects_typed(cut_pick in proptest::num::u64::ANY) {
            let (wal, marker, committed) = template();
            let committed = *committed;
            let cut = (cut_pick as usize) % (wal.len() + 1);
            let dir = scratch("prop-cut");
            stage(&dir, &wal[..cut], marker);
            match Store::open_or_create(&dir) {
                Ok((store, report)) => {
                    // only possible at or past the committed horizon,
                    // and always lands exactly on it
                    prop_assert!(cut >= committed);
                    prop_assert_eq!(report.truncated_bytes as usize, cut - committed);
                    prop_assert_eq!(store.committed_len() as usize, committed);
                    prop_assert_eq!(report.pending_lanes, 2);
                }
                Err(StoreError::Corrupt { .. }) => prop_assert!(cut < committed),
                Err(e) => panic!("untyped failure at cut {cut}: {e}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn random_byte_flip_anywhere_is_never_silent(
            pos_pick in proptest::num::u64::ANY,
            bit in 0u8..8,
        ) {
            let (wal, marker, committed) = template();
            // flip within the *committed* region (the tail is legal to
            // damage: it is truncated unread)
            let pos = (pos_pick as usize) % *committed;
            let mut bad = wal.clone();
            bad[pos] ^= 1u8 << bit;
            let dir = scratch("prop-flip");
            stage(&dir, &bad, marker);
            prop_assert!(
                matches!(
                    Store::open_or_create(&dir),
                    Err(StoreError::Corrupt { .. } | StoreError::Marker { .. })
                ),
                "flip at byte {} bit {} was accepted", pos, bit
            );
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn damage_beyond_the_horizon_never_corrupts_recovery(
            pos_pick in proptest::num::u64::ANY,
            byte in proptest::num::u8::ANY,
        ) {
            let (wal, marker, committed) = template();
            let committed = *committed;
            // the template always carries two uncommitted records
            let tail_len = wal.len() - committed;
            let pos = committed + (pos_pick as usize) % tail_len;
            let mut bad = wal.clone();
            bad[pos] = byte;
            let dir = scratch("prop-tail");
            stage(&dir, &bad, marker);
            let (store, report) = Store::open_or_create(&dir)
                .unwrap_or_else(|e| panic!("tail damage at {pos} broke recovery: {e}"));
            prop_assert_eq!(report.truncated_bytes as usize, tail_len);
            prop_assert_eq!(store.committed_len() as usize, committed);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
