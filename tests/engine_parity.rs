//! Engine parity: the worklist rewrite engine must produce **bit-identical**
//! optimized graphs to the retained naive fixpoint, across the full model
//! zoo, obfuscation bucket members (real pieces and GraphRNN-sampled
//! sentinels), and randomly generated graphs.
//!
//! "Bit-identical" is literal: `Graph`'s structural equality covers node
//! ops, attributes, edges, auto-generated names, arena layout after
//! compaction, and declared outputs. Parameter stores and rewrite
//! statistics must match too. This is the contract that makes the worklist
//! engine a pure performance change — every downstream figure (fig4's
//! geomean slowdown included) is unchanged by construction.

use proteus::{PartitionSpec, Proteus, ProteusConfig};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::{check_equivalence, Engine, Optimizer, Profile};

/// Optimizes `g` with both engines under `profile` and asserts the results
/// are indistinguishable. Returns the worklist result for further checks.
fn assert_parity(
    g: &Graph,
    params: &TensorMap,
    profile: Profile,
    label: &str,
) -> (Graph, TensorMap) {
    let worklist = Optimizer::with_engine(profile, Engine::Worklist);
    let naive = Optimizer::with_engine(profile, Engine::NaiveFixpoint);
    let (gw, pw, sw) = worklist.optimize(g, params);
    let (gn, pn, sn) = naive.optimize(g, params);
    assert_eq!(gw, gn, "{label}/{profile:?}: optimized graphs diverge");
    assert_eq!(pw, pn, "{label}/{profile:?}: optimized params diverge");
    assert_eq!(
        sw.rewrites, sn.rewrites,
        "{label}/{profile:?}: per-rule rewrite totals diverge"
    );
    assert_eq!(gw.len(), sn.nodes_after, "{label}/{profile:?}: node count");
    let lw = worklist.estimate_us(&gw);
    let ln = naive.estimate_us(&gn);
    assert_eq!(lw, ln, "{label}/{profile:?}: estimated latencies diverge");
    (gw, pw)
}

#[test]
fn zoo_parity_all_models_all_profiles() {
    // registry-count pin: a silently dropped zoo model is a test failure,
    // not a quiet coverage loss
    assert_eq!(zoo::all().len(), zoo::COUNT);
    for entry in zoo::all() {
        let g = (entry.build)();
        for profile in Profile::ALL {
            let (og, _) = assert_parity(&g, &TensorMap::new(), profile, entry.name);
            og.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
    }
}

#[test]
fn bucket_member_parity_over_graphrnn_sentinels() {
    // A small protected model, obfuscated with enough sentinels that the
    // buckets hold > 50 subgraphs: every member (real pieces and
    // GraphRNN-topology sentinels alike) must optimize identically under
    // both engines.
    let (g, params) = {
        use proteus_graph::{Activation, ConvAttrs, Op};
        let mut g = Graph::new("protected");
        let x = g.input([1, 3, 8, 8]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).padding(1)), [x]);
        let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [r1]);
        let a = g.add(Op::Add, [c2, r1]);
        let r2 = g.add(Op::Activation(Activation::Relu), [a]);
        let gap = g.add(Op::GlobalAveragePool, [r2]);
        g.set_outputs([gap]);
        let params = TensorMap::init_random(&g, 11);
        (g, params)
    };
    let cfg = ProteusConfig {
        k: 12,
        partitions: PartitionSpec::Count(4),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 20,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    };
    let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
    let (model, _) = proteus.obfuscate(&g, &params).unwrap();
    assert!(
        model.total_subgraphs() >= 50,
        "need >= 50 members for coverage, got {}",
        model.total_subgraphs()
    );
    for (bi, bucket) in model.buckets.iter().enumerate() {
        for (mi, member) in bucket.members.iter().enumerate() {
            for profile in Profile::ALL {
                assert_parity(
                    &member.graph,
                    &member.params,
                    profile,
                    &format!("bucket{bi}/member{mi}"),
                );
            }
        }
    }
}

#[test]
fn worklist_output_is_semantically_equivalent() {
    // Beyond structural parity: the worklist engine's output must still
    // compute the same function as the unoptimized graph (interpreter
    // probes), on a parameterized model where every fusion rewrites
    // weights.
    use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Op, PoolAttrs};
    let mut g = Graph::new("semantic");
    let x = g.input([1, 3, 8, 8]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 8, 3).padding(1).bias(false)),
        [x],
    );
    let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c1]);
    let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
    let d = g.add(Op::Dropout { p: 20 }, [r1]);
    let p1 = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [d]);
    let f = g.add(Op::Flatten, [p1]);
    let fc = g.add(Op::Gemm(GemmAttrs::new(128, 10)), [f]);
    let t = g.add(Op::Activation(Activation::Tanh), [fc]);
    g.set_outputs([t]);
    let params = TensorMap::init_random(&g, 23);
    for profile in Profile::ALL {
        let (og, op) = assert_parity(&g, &params, profile, "semantic");
        let eq = check_equivalence(&g, &params, &og, &op, 3, 1e-3, 5).unwrap();
        assert!(eq.is_equivalent(), "{profile:?}: {eq:?}");
    }
}

#[test]
fn optimizer_default_engine_is_worklist() {
    assert_eq!(Optimizer::new(Profile::OrtLike).engine(), Engine::Worklist);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;
    use proteus_graph::{Activation, Op, Shape};

    /// Random DAGs over the ops the rewrite rules interact with:
    /// activations, adds/muls, identities, dropouts, reshape chains, and
    /// transpose pairs — the patterns where sweep-order bugs would surface.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        proptest::collection::vec((0u8..9, proptest::num::u64::ANY), 3..40).prop_map(|specs| {
            let mut g = Graph::new("prop");
            let mut ids = vec![g.input([2, 3, 4])];
            for (kind, pick) in specs {
                let a = ids[(pick as usize) % ids.len()];
                let b = ids[(pick as usize / 3) % ids.len()];
                let id = match kind {
                    0 => g.add(Op::Activation(Activation::Relu), [a]),
                    1 => g.add(Op::Activation(Activation::Sigmoid), [a]),
                    2 => g.add(Op::Identity, [a]),
                    3 => g.add(Op::Dropout { p: 20 }, [a]),
                    4 => g.add(Op::Add, [a, b]),
                    5 => g.add(Op::Mul, [a, b]),
                    6 => g.add(
                        Op::Reshape {
                            shape: Shape::from([2, 12]),
                        },
                        [a],
                    ),
                    7 => g.add(
                        Op::Transpose {
                            perm: vec![0, 2, 1],
                        },
                        [a],
                    ),
                    _ => g.add(
                        Op::Transpose {
                            perm: vec![2, 0, 1],
                        },
                        [a],
                    ),
                };
                ids.push(id);
            }
            let last = *ids.last().expect("nonempty");
            g.set_outputs([last]);
            g
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn engines_agree_on_random_graphs(
            g in arb_graph(),
            profile_idx in 0usize..Profile::ALL.len(),
        ) {
            let profile = Profile::ALL[profile_idx];
            let (og, _) = assert_parity(&g, &TensorMap::new(), profile, "proptest");
            og.validate().unwrap();
        }
    }
}

mod modern_shape_proptests {
    use super::*;
    use proptest::prelude::*;
    use proteus_graph::{Activation, Op};

    /// U-Net-style skip graphs: a chain of activations with channel-axis
    /// `Concat` skip connections back to earlier positions — the shape the
    /// tvm-like profile's reshape/transpose-first anchor ordering sweeps
    /// differently than the other profiles.
    fn arb_skip_graph() -> impl Strategy<Value = Graph> {
        proptest::collection::vec((proptest::num::u64::ANY, proptest::bool::ANY), 2..10).prop_map(
            |specs| {
                let mut g = Graph::new("skips");
                let x = g.input([1, 4, 6, 6]);
                let mut trunk = vec![x];
                for (pick, concat) in specs {
                    let prev = *trunk.last().expect("nonempty");
                    let next = if concat {
                        let skip = trunk[(pick as usize) % trunk.len()];
                        g.add(Op::Concat { axis: 1 }, [prev, skip])
                    } else {
                        g.add(Op::Activation(Activation::Silu), [prev])
                    };
                    trunk.push(next);
                }
                let out = *trunk.last().expect("nonempty");
                g.set_outputs([out]);
                g
            },
        )
    }

    /// GNN-style aggregation graphs: repeated `MatMul` against a constant
    /// adjacency operator with interleaved activations/residuals, closed by
    /// a `ReduceMean` readout.
    fn arb_aggregation_graph() -> impl Strategy<Value = Graph> {
        proptest::collection::vec((0u8..3, proptest::bool::ANY), 1..8).prop_map(|specs| {
            let mut g = Graph::new("aggregate");
            let h0 = g.input([6, 8]);
            let adj = g.constant([6, 6]);
            let mut h = h0;
            for (kind, residual) in specs {
                let next = match kind {
                    0 => g.add(Op::MatMul, [adj, h]),
                    1 => g.add(Op::Activation(Activation::Relu), [h]),
                    _ => g.add(Op::Identity, [h]),
                };
                h = if residual {
                    g.add(Op::Add, [next, h])
                } else {
                    next
                };
            }
            let pooled = g.add(
                Op::ReduceMean {
                    axes: vec![0],
                    keepdims: true,
                },
                [h],
            );
            g.set_outputs([pooled]);
            g
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Parity *and* interpreter equivalence on U-Net skip shapes, under
        // every profile (profile 3 included).
        #[test]
        fn unet_skip_shapes_optimize_equivalently(
            g in arb_skip_graph(),
            profile_idx in 0usize..Profile::ALL.len(),
        ) {
            let profile = Profile::ALL[profile_idx];
            let params = TensorMap::init_random(&g, 17);
            let (og, op) = assert_parity(&g, &params, profile, "unet-skips");
            og.validate().unwrap();
            let eq = check_equivalence(&g, &params, &og, &op, 2, 1e-3, 5).unwrap();
            prop_assert!(eq.is_equivalent(), "{:?}: {:?}", profile, eq);
        }

        // Parity *and* interpreter equivalence on GNN aggregation shapes,
        // under every profile.
        #[test]
        fn gnn_aggregation_shapes_optimize_equivalently(
            g in arb_aggregation_graph(),
            profile_idx in 0usize..Profile::ALL.len(),
        ) {
            let profile = Profile::ALL[profile_idx];
            let params = TensorMap::init_random(&g, 29);
            let (og, op) = assert_parity(&g, &params, profile, "gnn-aggregation");
            og.validate().unwrap();
            let eq = check_equivalence(&g, &params, &og, &op, 2, 1e-3, 5).unwrap();
            prop_assert!(eq.is_equivalent(), "{:?}: {:?}", profile, eq);
        }
    }
}
