//! Cross-checks of analytic quantities against numbers printed in the
//! paper itself. These don't run the full pipeline — they pin our formulas
//! to the paper's published tables, so the harness math is known-correct
//! before any measurement is interpreted.
//!
//! The Figure 4a slowdown band is the one measured claim promoted into
//! tier 1: the cost model is deterministic, so the geomean is a fixed
//! number and the band check is as stable as the analytic rows above.

use proteus_adversary::analytic_log10_candidates;
use proteus_bench::latency_triple;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::Profile;

/// Figure 6 rows: (n, k, specificity, paper's candidate count).
/// The paper computes candidates = [1 + (1-β)k]^n; our helper must agree
/// with every published row to within rounding of the printed mantissa.
#[test]
fn figure6_candidate_counts_match_paper_rows() {
    let rows = [
        // model, n, k, specificity, paper candidates (log10)
        ("densenet-proteus", 19usize, 20usize, 0.338, 8.33e21_f64),
        ("googlenet-proteus", 11, 20, 0.346, 4.30e12),
        ("inception-proteus", 19, 20, 0.229, 1.23e23),
        ("mnasnet-proteus", 11, 20, 0.117, 9.59e13),
        ("resnet-proteus", 10, 20, 0.451, 6.12e10),
        ("mobilenet-proteus", 11, 20, 0.135, 7.72e13),
        ("bert-proteus", 16, 20, 0.910, 1.37e7),
        ("roberta-proteus", 16, 20, 0.862, 1.54e9),
        ("xlm-proteus", 25, 20, 0.906, 2.99e11),
        ("densenet-random", 19, 20, 0.000, 1.32e25),
        ("mobilenet-random", 11, 20, 0.607, 2.66e10),
    ];
    for (name, n, k, spec, paper) in rows {
        let ours = analytic_log10_candidates(n, k, spec);
        let paper_log10 = paper.log10();
        assert!(
            (ours - paper_log10).abs() < 0.15,
            "{name}: ours 10^{ours:.2} vs paper 10^{paper_log10:.2}"
        );
    }
}

/// §6.1: n = 24, k = 50, sensitivity 84.9% -> [50(1-0.849)]^24 ≈ 1.18e21.
/// (The case study counts only surviving sentinels, not the +1 term, so we
/// check the paper's own arithmetic directly.)
#[test]
fn nas_case_study_arithmetic() {
    let survivors_per_bucket: f64 = 50.0 * (1.0 - 0.849);
    let log10 = 24.0 * survivors_per_bucket.log10();
    assert!((log10 - 1.18e21_f64.log10()).abs() < 0.1, "log10 = {log10}");
}

/// §6.2: n = 83, k = 20, sensitivity 44% -> [20(1-0.44)]^83 ≈ 1.22e87.
#[test]
fn seresnet_case_study_arithmetic() {
    let survivors_per_bucket: f64 = 20.0 * (1.0 - 0.44);
    let log10 = 83.0 * survivors_per_bucket.log10();
    assert!((log10 - 1.22e87_f64.log10()).abs() < 0.2, "log10 = {log10}");
}

/// §4.1: hiding among O((k+1)^n) architectures; the paper's abstract quotes
/// up to 10^32 possible models. With Figure 6's largest configuration
/// (n = 25, k = 20) the full space is (k+1)^25 ≈ 10^33 — same order.
#[test]
fn abstract_search_space_order_of_magnitude() {
    let full = analytic_log10_candidates(25, 20, 0.0);
    assert!((31.0..=35.0).contains(&full), "log10 = {full}");
}

/// Figure 4a: Proteus within 1.07–1.14x of the best attainable latency
/// (geomean over the figure's model set, OrtLike profile). Partition
/// search, blind per-piece optimization, and the cost model are all
/// seeded, so this measures the same fixed number on every run; the band
/// is quoted at two decimals (the seed measured 1.1434x).
#[test]
fn figure4a_geomean_slowdown_stays_in_the_paper_band() {
    let fig4a = [
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Bert,
        ModelKind::Roberta,
        ModelKind::DistilBert,
    ];
    let log_sum: f64 = fig4a
        .iter()
        .map(|&kind| {
            let (_, best, proteus) = latency_triple(&build(kind), Profile::OrtLike, 8, 42);
            let slowdown = proteus / best;
            assert!(
                slowdown >= 1.0,
                "{kind}: blind partition optimization beat the unpartitioned optimum"
            );
            slowdown.ln()
        })
        .sum();
    let geomean = (log_sum / fig4a.len() as f64).exp();
    let rounded = (geomean * 100.0).round() / 100.0;
    assert!(
        (1.07..=1.14).contains(&rounded),
        "fig4a geomean slowdown {geomean:.4}x left the 1.07-1.14x band"
    );
}

/// Figure 4, extended: the partition-blindness slowdown band re-measured
/// over the *full* registry (modern families included) under every
/// optimizer profile. Like the fig4a check, everything here is seeded and
/// the cost model is deterministic, so each (profile, zoo) geomean is a
/// fixed number; the bands are quoted at two decimals around the seed
/// measurements (ort 1.1061x, hidet 1.0710x, tvm 1.0965x).
#[test]
fn extended_zoo_slowdown_bands_hold_under_every_profile() {
    // registry-count pin: the extended band covers the whole registry
    assert_eq!(zoo::all().len(), zoo::COUNT);
    let bands = [
        (Profile::OrtLike, 1.07..=1.15),
        (Profile::HidetLike, 1.03..=1.11),
        (Profile::TvmLike, 1.06..=1.14),
    ];
    for (profile, band) in bands {
        let log_sum: f64 = zoo::all()
            .iter()
            .map(|entry| {
                let (_, best, proteus) = latency_triple(&(entry.build)(), profile, 8, 42);
                let slowdown = proteus / best;
                // >= up to float-association noise: on graphs the
                // partitioner splits losslessly (e.g. graphsage under the
                // ort profile) the two paths land on the same estimate
                assert!(
                    slowdown >= 0.999,
                    "{}/{profile:?}: blind partition optimization beat the optimum: {slowdown:.4}",
                    entry.name
                );
                slowdown.ln()
            })
            .sum();
        let geomean = (log_sum / zoo::COUNT as f64).exp();
        let rounded = (geomean * 100.0).round() / 100.0;
        eprintln!("extended-zoo slowdown {profile:?}: {geomean:.4}x");
        assert!(
            band.contains(&rounded),
            "{profile:?}: extended-zoo geomean slowdown {geomean:.4}x left {band:?}"
        );
    }
}

/// Figure 5, extended: sentinel statistics stay close to the real pieces'
/// on the modern families too. One representative model per family is
/// partitioned, its Proteus sentinels generated, and the KS distance
/// between real and sentinel average-degree samples must stay below the
/// pinned ceiling — the property that makes statistics-based
/// identification fail (§5.3.1).
#[test]
fn figure5_sentinel_statistics_band_extends_to_modern_families() {
    use proteus::{PartitionSpec, Proteus, ProteusConfig, SentinelMode};
    use proteus_graph::stats::ks_distance;
    use proteus_graph::{GraphStats, TensorMap};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_partition::{partition_balanced, PartitionPlan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let representatives = [
        ModelKind::ResNet,
        ModelKind::Bert,
        ModelKind::GptDecoder,
        ModelKind::GraphSage,
        ModelKind::UNet,
    ];
    let corpus: Vec<_> = representatives.iter().map(|&k| build(k)).collect();
    let config = ProteusConfig {
        k: 2,
        partitions: PartitionSpec::Count(4),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 24,
            ..Default::default()
        },
        topology_pool: 30,
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(33);
    let mut real_degrees = Vec::new();
    let mut fake_degrees = Vec::new();
    for g in &corpus {
        let assignment = partition_balanced(g, 4, 8, 11);
        let plan =
            PartitionPlan::extract(g, &TensorMap::new(), &assignment).expect("extract succeeds");
        for piece in &plan.pieces {
            real_degrees.push(GraphStats::of(&piece.graph).avg_degree);
            for s in proteus
                .factory()
                .generate(&piece.graph, 2, SentinelMode::Generative, &mut rng)
            {
                fake_degrees.push(GraphStats::of(&s).avg_degree);
            }
        }
    }
    let ks = ks_distance(&real_degrees, &fake_degrees);
    eprintln!("fig5 extended: avg-degree KS distance {ks:.4}");
    assert!(
        ks <= 0.45,
        "sentinel avg-degree distribution drifted from the reals: KS {ks:.4} > 0.45"
    );
}
