//! Workspace smoke tests: the core flow of every `examples/` program,
//! exercised through library calls so example rot is caught by tier-1
//! (`cargo test -q`) instead of by someone running the binaries by hand.
//!
//! Each test is a scaled-down mirror of one example:
//! - [`quickstart_flow`] <-> `examples/quickstart.rs`
//! - [`confidential_service_flow`] <-> `examples/confidential_service.rs`
//! - [`adversary_attack_flow`] <-> `examples/adversary_attack.rs`
//! - [`sentinel_gallery_flow`] <-> `examples/sentinel_gallery.rs`

use proteus::{
    optimize_model, random_opcode_sentinels, PartitionSpec, Proteus, ProteusConfig, SealedBucket,
    SentinelMode,
};
use proteus_adversary::{attack_buckets, Example, LabelledBucket, SageClassifier, SageConfig};
use proteus_graph::{
    dot::to_dot, Activation, ConvAttrs, Executor, Graph, GraphStats, Op, Tensor, TensorMap,
};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// The quickstart example's secret model: stride-2 stem plus a residual
/// 3x3 block. Channel counts matter — below ~32 channels the OrtLike
/// profile's Winograd heuristic legitimately backfires (the paper's §6.1
/// NAS observation), so the smoke test must stay in the regime the example
/// demonstrates.
fn secret_cnn() -> (Graph, TensorMap) {
    let mut g = Graph::new("workspace-secret");
    let x = g.input([1, 3, 32, 32]);
    let c1 = g.add(Op::Conv(ConvAttrs::new(3, 64, 3).stride(2).padding(1)), [x]);
    let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
    let c2 = g.add(Op::Conv(ConvAttrs::new(64, 64, 3).padding(1)), [r1]);
    let skip = g.add(Op::Add, [c2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [skip]);
    let gap = g.add(Op::GlobalAveragePool, [r2]);
    g.set_outputs([gap]);
    let params = TensorMap::init_random(&g, 42);
    (g, params)
}

/// One trained pipeline shared by all smoke tests — `Proteus::train` is the
/// slow step and its output is immutable.
fn trained() -> &'static Proteus {
    static PROTEUS: OnceLock<Proteus> = OnceLock::new();
    PROTEUS.get_or_init(|| {
        let config = ProteusConfig {
            k: 2,
            partitions: PartitionSpec::Count(2),
            graphrnn: GraphRnnConfig {
                epochs: 2,
                ..Default::default()
            },
            topology_pool: 20,
            ..Default::default()
        };
        Proteus::train(config, &[build(ModelKind::MobileNet)])
    })
}

/// `examples/quickstart.rs`: obfuscate -> optimize every member ->
/// de-obfuscate -> identical function, non-worse latency estimate.
#[test]
fn quickstart_flow() {
    let (secret, weights) = secret_cnn();
    let proteus = trained();
    let (bucket, secrets) = proteus.obfuscate(&secret, &weights).expect("obfuscate");
    assert_eq!(bucket.buckets[0].members.len(), proteus.config().k + 1);

    let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));
    let (model, params) = proteus
        .deobfuscate(&secrets, &optimized)
        .expect("deobfuscate");

    let mut rng = StdRng::seed_from_u64(7);
    let probe = Tensor::random([1, 3, 32, 32], 1.0, &mut rng);
    let before = Executor::new(&secret, &weights)
        .run(std::slice::from_ref(&probe))
        .expect("run secret");
    let after = Executor::new(&model, &params)
        .run(std::slice::from_ref(&probe))
        .expect("run optimized");
    let diff = before[0].max_abs_diff(&after[0]);
    assert!(diff < 1e-3, "optimization changed semantics: diff {diff}");

    let optimizer = Optimizer::new(Profile::OrtLike);
    let t_before = optimizer.estimate_us(&secret).expect("estimate");
    let t_after = optimizer.estimate_us(&model).expect("estimate");
    assert!(
        t_after <= t_before,
        "optimized model slower: {t_after} > {t_before}"
    );
}

/// `examples/confidential_service.rs`: only serialized frames cross the
/// trust boundary, one sealed bucket at a time, in both directions.
#[test]
fn confidential_service_flow() {
    let (secret, weights) = secret_cnn();
    let proteus = trained();
    let optimizer = Optimizer::new(Profile::OrtLike);

    // owner -> service -> owner, frame by frame
    let mut session = proteus
        .obfuscate_session(&secret, &weights, 0xCAFE)
        .expect("session opens");
    let mut returned_wire = Vec::new();
    while let Some(frame) = session.next_frame() {
        // owner seals the frame...
        let wire = frame.to_bytes();
        assert!(!wire.is_empty());
        // ...the service decodes, optimizes, re-seals...
        let received = SealedBucket::from_bytes(wire).expect("service decode");
        assert_eq!(received.bucket.members.len(), proteus.config().k + 1);
        returned_wire.push(received.optimize(&optimizer, None).to_bytes());
    }
    let secrets = session.finish().expect("secrets after all frames");

    // ...and the owner reassembles from frames in any order
    let mut reassembly = proteus.deobfuscate_session(&secrets);
    returned_wire.reverse();
    for wire in returned_wire {
        reassembly.accept_bytes(wire).expect("owner decode");
    }
    let (model, params) = reassembly.finish().expect("reassemble");
    model.validate().expect("reassembled model is well-formed");

    let mut rng = StdRng::seed_from_u64(11);
    let probe = Tensor::random([1, 3, 32, 32], 1.0, &mut rng);
    let before = Executor::new(&secret, &weights)
        .run(std::slice::from_ref(&probe))
        .expect("run secret");
    let after = Executor::new(&model, &params)
        .run(std::slice::from_ref(&probe))
        .expect("run optimized");
    assert!(before[0].allclose(&after[0], 1e-3));
}

/// `examples/adversary_attack.rs`: the GNN adversary attacks buckets of
/// Proteus and of random-opcode baseline sentinels; reports stay sane.
#[test]
fn adversary_attack_flow() {
    let proteus = trained();
    let mut rng = StdRng::seed_from_u64(5);
    let protected = build(ModelKind::ResNet);
    let assignment = partition_by_size(&protected, 10, 8, 3);
    let plan = PartitionPlan::extract(&protected, &TensorMap::new(), &assignment).expect("extract");
    let k = 3;

    let pieces: Vec<&Graph> = plan.pieces.iter().map(|p| &p.graph).take(3).collect();
    let mut buckets = Vec::new();
    let mut examples = Vec::new();
    for piece in &pieces {
        let sentinels = proteus
            .factory()
            .generate(piece, k, SentinelMode::Generative, &mut rng);
        assert_eq!(
            sentinels.len(),
            k,
            "factory must always produce k sentinels"
        );
        for s in &sentinels {
            examples.push(Example::new(s, true));
        }
        examples.push(Example::new(piece, false));
        buckets.push(LabelledBucket {
            real: (*piece).clone(),
            sentinels,
        });
    }
    // The baseline generator rides the same sampler band (paper §5.3.2).
    let baseline = random_opcode_sentinels(
        pieces[0],
        k,
        proteus.factory().sampler(),
        proteus.config().beta,
        &mut rng,
    );
    assert_eq!(baseline.len(), k);

    let mut clf = SageClassifier::new(
        SageConfig {
            epochs: 2,
            ..Default::default()
        },
        11,
    );
    let history = clf.train(&examples, 13);
    assert!(!history.is_empty());
    assert!(history.iter().all(|l| l.is_finite()));

    let report = attack_buckets(&clf, &buckets);
    assert!(
        (0.0..=1.0).contains(&report.min_gamma),
        "min_gamma {} out of range",
        report.min_gamma
    );
    assert!((0.0..=1.0).contains(&report.specificity));
    assert!(report.log10_candidates >= 0.0);
}

/// `examples/sentinel_gallery.rs`: sentinels render as Graphviz DOT with
/// survey-style statistics.
#[test]
fn sentinel_gallery_flow() {
    let proteus = trained();
    let mut rng = StdRng::seed_from_u64(2024);
    let g = build(ModelKind::SEResNet);
    let a = partition_by_size(&g, 10, 8, 17);
    let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).expect("extract");
    let piece = plan
        .pieces
        .iter()
        .map(|p| p.graph.clone())
        .find(|g| (8..=16).contains(&g.len()))
        .expect("a survey-sized piece exists");
    let sentinel = proteus
        .factory()
        .generate(&piece, 1, SentinelMode::Generative, &mut rng)
        .remove(0);

    for graph in [&piece, &sentinel] {
        let stats = GraphStats::of(graph);
        assert!(stats.avg_degree > 0.0);
        let dot = to_dot(graph);
        assert!(
            dot.starts_with("digraph"),
            "not DOT: {}",
            &dot[..20.min(dot.len())]
        );
        assert!(dot.contains("->"), "DOT output has no edges");
    }
}
