//! Versioned, length-prefixed connection handshake.
//!
//! Before any frame flows, the client sends a [`ClientHello`] and the
//! server answers with either a [`ServerHello`] (accepted) or a `PRTE`
//! error frame (rejected, typed) followed by a close. Both hellos are
//! checksummed with the same FNV-1a scheme as data frames, so a
//! corrupted handshake is caught byte-for-byte instead of misparsing.
//!
//! What the handshake pins down:
//!
//! - **network protocol version** ([`NET_PROTOCOL_VERSION`]) — the
//!   framing/handshake layout itself;
//! - **wire version** — the data-frame format the client will send
//!   (the server rejects versions it does not speak);
//! - **tenant auth token** — admission control and per-tenant quotas;
//! - **artifact fingerprint** — the client states which trained
//!   artifact it expects to be talking to
//!   ([`proteus::artifact::config_fingerprint`]); a server warm-started
//!   from different trained state rejects the connection rather than
//!   serve subtly-different bytes.

use crate::codec::FrameReader;
use crate::error::NetError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{fnv1a64, WireError, WIRE_VERSION};
use std::io::Read;

/// The handshake + framing layout version this library speaks. Bumped
/// whenever the hello byte layout or the frame family set changes.
pub const NET_PROTOCOL_VERSION: u16 = 1;

/// Magic bytes opening a [`ClientHello`].
pub const CLIENT_HELLO_MAGIC: [u8; 4] = *b"PRTH";

/// Magic bytes opening a [`ServerHello`].
pub const SERVER_HELLO_MAGIC: [u8; 4] = *b"PRTS";

/// Largest auth token / banner a hello may carry.
pub const MAX_HELLO_BLOB: usize = 4096;

/// Fixed-size prefix of both hellos: magic(4) + net proto(2) + wire
/// version(2) + fingerprint(8) + blob len(4) + checksum(8).
const HELLO_PREFIX: usize = 28;

/// The client's opening message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Handshake/framing layout version the client speaks.
    pub net_protocol: u16,
    /// Data-frame wire version the client will send.
    pub wire_version: u16,
    /// Fingerprint of the trained artifact the client expects the
    /// server to be warm-started from.
    pub fingerprint: u64,
    /// Tenant auth token.
    pub token: String,
}

/// The server's acceptance message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Handshake/framing layout version the server speaks.
    pub net_protocol: u16,
    /// Newest data-frame wire version the server accepts.
    pub wire_version: u16,
    /// Fingerprint of the trained artifact the server is serving.
    pub fingerprint: u64,
    /// Free-form server identification banner.
    pub banner: String,
}

fn encode_hello(magic: [u8; 4], proto: u16, wire: u16, fingerprint: u64, blob: &str) -> Bytes {
    let blob = blob.as_bytes();
    let mut buf = BytesMut::with_capacity(HELLO_PREFIX + blob.len());
    buf.put_slice(&magic);
    buf.put_u16_le(proto);
    buf.put_u16_le(wire);
    buf.put_u64_le(fingerprint);
    buf.put_u32_le(blob.len() as u32);
    let mut hashed = buf[4..20].to_vec();
    hashed.extend_from_slice(blob);
    buf.put_u64_le(fnv1a64(&hashed));
    buf.put_slice(blob);
    buf.freeze()
}

/// Decoded fields shared by both hello directions.
struct RawHello {
    proto: u16,
    wire: u16,
    fingerprint: u64,
    blob: String,
}

fn decode_hello(expect_magic: [u8; 4], buf: &mut Bytes) -> Result<RawHello, NetError> {
    if buf.len() < 4 {
        return Err(NetError::Wire(WireError::truncated("hello magic")));
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf.split_to(4));
    if magic != expect_magic {
        return Err(NetError::Wire(WireError::BadMagic { got: magic }));
    }
    if buf.len() < HELLO_PREFIX - 4 {
        return Err(NetError::Wire(WireError::truncated("hello header")));
    }
    let proto = buf.get_u16_le();
    let wire = buf.get_u16_le();
    let fingerprint = buf.get_u64_le();
    let blob_len = buf.get_u32_le() as usize;
    let checksum = buf.get_u64_le();
    if blob_len > MAX_HELLO_BLOB {
        return Err(NetError::Wire(WireError::malformed(format!(
            "hello blob length {blob_len} is implausible"
        ))));
    }
    if buf.len() < blob_len {
        return Err(NetError::Wire(WireError::truncated("hello blob")));
    }
    let blob_bytes = buf.split_to(blob_len);
    let mut hashed = Vec::with_capacity(16 + blob_len);
    hashed.extend_from_slice(&proto.to_le_bytes());
    hashed.extend_from_slice(&wire.to_le_bytes());
    hashed.extend_from_slice(&fingerprint.to_le_bytes());
    hashed.extend_from_slice(&(blob_len as u32).to_le_bytes());
    hashed.extend_from_slice(&blob_bytes);
    let got = fnv1a64(&hashed);
    if got != checksum {
        return Err(NetError::Wire(WireError::ChecksumMismatch {
            expected: checksum,
            got,
        }));
    }
    let blob = String::from_utf8(blob_bytes.to_vec())
        .map_err(|_| NetError::Wire(WireError::malformed("hello blob is not valid utf8")))?;
    Ok(RawHello {
        proto,
        wire,
        fingerprint,
        blob,
    })
}

impl ClientHello {
    /// Builds the hello this library sends for a connection.
    pub fn new(fingerprint: u64, token: impl Into<String>) -> ClientHello {
        ClientHello {
            net_protocol: NET_PROTOCOL_VERSION,
            wire_version: WIRE_VERSION,
            fingerprint,
            token: token.into(),
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        encode_hello(
            CLIENT_HELLO_MAGIC,
            self.net_protocol,
            self.wire_version,
            self.fingerprint,
            &self.token,
        )
    }

    /// Decodes from the front of `buf`, leaving trailing bytes.
    ///
    /// # Errors
    /// [`NetError::Wire`] for bad magic, truncation, corruption,
    /// implausible token length, or invalid UTF-8.
    pub fn decode(buf: &mut Bytes) -> Result<ClientHello, NetError> {
        let raw = decode_hello(CLIENT_HELLO_MAGIC, buf)?;
        Ok(ClientHello {
            net_protocol: raw.proto,
            wire_version: raw.wire,
            fingerprint: raw.fingerprint,
            token: raw.blob,
        })
    }
}

impl ServerHello {
    /// Builds the hello a server answers an accepted connection with.
    pub fn new(fingerprint: u64, banner: impl Into<String>) -> ServerHello {
        ServerHello {
            net_protocol: NET_PROTOCOL_VERSION,
            wire_version: WIRE_VERSION,
            fingerprint,
            banner: banner.into(),
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        encode_hello(
            SERVER_HELLO_MAGIC,
            self.net_protocol,
            self.wire_version,
            self.fingerprint,
            &self.banner,
        )
    }

    /// Decodes from the front of `buf`, leaving trailing bytes.
    ///
    /// # Errors
    /// As [`ClientHello::decode`].
    pub fn decode(buf: &mut Bytes) -> Result<ServerHello, NetError> {
        let raw = decode_hello(SERVER_HELLO_MAGIC, buf)?;
        Ok(ServerHello {
            net_protocol: raw.proto,
            wire_version: raw.wire,
            fingerprint: raw.fingerprint,
            banner: raw.blob,
        })
    }
}

/// Reads one hello's worth of bytes from a stream into `reader`,
/// tolerating arbitrary chunking: first the fixed prefix, then exactly
/// the blob length it announces. Returns the complete hello bytes;
/// anything the peer pipelined after its hello stays buffered in
/// `reader` for frame reassembly.
///
/// # Errors
/// [`NetError::Io`] on read failure, [`NetError::Handshake`] on EOF
/// mid-hello, [`NetError::Wire`] for an implausible blob length.
pub fn read_hello_bytes(
    stream: &mut impl Read,
    reader: &mut FrameReader,
) -> Result<Bytes, NetError> {
    let mut chunk = [0u8; 512];
    loop {
        if let Some(len_field) = reader.peek_bytes(16, 4) {
            // blob length field sits at bytes 16..20 of either hello
            let blob_len =
                u32::from_le_bytes([len_field[0], len_field[1], len_field[2], len_field[3]])
                    as usize;
            if blob_len > MAX_HELLO_BLOB {
                return Err(NetError::Wire(WireError::malformed(format!(
                    "hello blob length {blob_len} is implausible"
                ))));
            }
            if reader.buffered() >= HELLO_PREFIX + blob_len {
                return Ok(reader.split_bytes(HELLO_PREFIX + blob_len));
            }
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| NetError::io("reading handshake", e))?;
        if n == 0 {
            return Err(NetError::handshake("peer closed mid-handshake"));
        }
        reader.push(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    // tests assert on Results aggressively; the unwrap/expect discipline
    // is for production paths
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::io::Cursor;

    #[test]
    fn client_hello_roundtrip() {
        let hello = ClientHello::new(0xFEED_CAFE_1234_5678, "tenant-token");
        let mut buf = hello.encode();
        assert_eq!(ClientHello::decode(&mut buf).unwrap(), hello);
        assert!(buf.is_empty());
    }

    #[test]
    fn server_hello_roundtrip() {
        let hello = ServerHello::new(42, "proteus-serve/0.1");
        let mut buf = hello.encode();
        assert_eq!(ServerHello::decode(&mut buf).unwrap(), hello);
        assert!(buf.is_empty());
    }

    #[test]
    fn hello_detects_single_byte_corruption_everywhere() {
        let bytes = ClientHello::new(7, "secret").encode();
        for pos in 0..bytes.len() {
            let mut raw = bytes.to_vec();
            raw[pos] ^= 0x20;
            let mut buf = Bytes::copy_from_slice(&raw);
            assert!(
                ClientHello::decode(&mut buf).is_err(),
                "corruption at byte {pos} accepted"
            );
        }
    }

    #[test]
    fn hello_rejects_truncation_at_every_length() {
        let bytes = ServerHello::new(7, "banner").encode();
        for cut in 0..bytes.len() {
            let mut buf = bytes.slice(0..cut);
            assert!(
                ServerHello::decode(&mut buf).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn hello_directions_do_not_cross_decode() {
        let mut c = ClientHello::new(1, "t").encode();
        assert!(matches!(
            ServerHello::decode(&mut c),
            Err(NetError::Wire(WireError::BadMagic { .. }))
        ));
        let mut s = ServerHello::new(1, "b").encode();
        assert!(matches!(
            ClientHello::decode(&mut s),
            Err(NetError::Wire(WireError::BadMagic { .. }))
        ));
    }

    #[test]
    fn read_hello_bytes_tolerates_any_chunking() {
        let hello = ClientHello::new(9, "some-longer-token-value");
        let encoded = hello.encode();
        // Cursor reads in whatever sizes the loop's buffer allows; also
        // exercise a sink that returns one byte at a time
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut reader = FrameReader::new();
        let mut bytes = read_hello_bytes(&mut Cursor::new(encoded.to_vec()), &mut reader).unwrap();
        assert_eq!(ClientHello::decode(&mut bytes).unwrap(), hello);
        let mut reader = FrameReader::new();
        let mut bytes = read_hello_bytes(&mut OneByte(&encoded, 0), &mut reader).unwrap();
        assert_eq!(ClientHello::decode(&mut bytes).unwrap(), hello);
    }

    #[test]
    fn read_hello_leaves_pipelined_frames_buffered() {
        use proteus_graph::wire::encode_frame_v2;
        let hello = ClientHello::new(9, "token");
        let frame = encode_frame_v2(5, 0, b"eager payload");
        let mut stream = hello.encode().to_vec();
        stream.extend_from_slice(&frame);
        let mut reader = FrameReader::new();
        let mut bytes = read_hello_bytes(&mut Cursor::new(stream), &mut reader).unwrap();
        assert_eq!(ClientHello::decode(&mut bytes).unwrap(), hello);
        // the frame the peer pipelined right behind its hello is intact
        assert_eq!(
            reader.try_next().unwrap(),
            Some(crate::codec::NetFrame::Data(frame))
        );
    }

    #[test]
    fn read_hello_bytes_rejects_eof_mid_hello() {
        let encoded = ClientHello::new(9, "token").encode();
        let partial = &encoded[..encoded.len() - 2];
        let mut reader = FrameReader::new();
        assert!(matches!(
            read_hello_bytes(&mut Cursor::new(partial.to_vec()), &mut reader),
            Err(NetError::Handshake { .. })
        ));
    }
}
