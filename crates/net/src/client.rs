//! The owner-side network client: opens an authenticated connection,
//! streams sealed-bucket frames out, and collects optimized frames (or
//! typed error frames) back.
//!
//! The client never decodes bucket payloads itself — response frames
//! are returned as raw wire bytes for
//! [`proteus::DeobfuscationSession::accept_mux_bytes`], so the
//! end-to-end checksum check happens exactly once, at reassembly, the
//! same as the in-process path.

use crate::codec::{FrameReader, FrameWriter, NetFrame};
use crate::error::NetError;
use crate::handshake::{read_hello_bytes, ClientHello, ServerHello, NET_PROTOCOL_VERSION};
use bytes::Bytes;
use proteus_graph::wire::{decode_error_frame, WIRE_VERSION};
use proteus_graph::wire::{peek_frame_request_id, ErrorFrame, ERROR_FRAME_MAGIC};
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::thread;

/// One request to stream through a connection: its id and its
/// pre-encoded v2 mux frames (from `SealedBucket::to_mux_bytes`).
#[derive(Debug, Clone)]
pub struct NetRequest {
    /// The request id carried in every frame header.
    pub request_id: u64,
    /// The request's frames, in submission order.
    pub frames: Vec<Bytes>,
}

/// The server's answer for one request.
#[derive(Debug, Clone)]
pub struct NetResponse {
    /// The request this answers.
    pub request_id: u64,
    /// The optimized frames (raw wire bytes, submission-independent
    /// completion order), or the typed failure the server reported.
    pub result: Result<Vec<Bytes>, ErrorFrame>,
}

/// An authenticated connection to a `proteus-serve` daemon.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    hello: ServerHello,
}

impl NetClient {
    /// Connects, authenticates, and verifies the server's artifact
    /// fingerprint.
    ///
    /// # Errors
    /// - [`NetError::Io`] — connect/read/write failure;
    /// - [`NetError::Remote`] — the server rejected the handshake with
    ///   a typed error frame ([`proteus_graph::ErrorCode::BadAuth`],
    ///   [`proteus_graph::ErrorCode::FingerprintMismatch`], ...);
    /// - [`NetError::FingerprintMismatch`] — the server *accepted* but
    ///   announced a different artifact than expected (belt and
    ///   braces; a correct server rejects first);
    /// - [`NetError::VersionMismatch`] — the server speaks a different
    ///   network protocol version;
    /// - [`NetError::Wire`] / [`NetError::Handshake`] — a malformed
    ///   reply.
    pub fn connect(
        addr: impl ToSocketAddrs,
        token: &str,
        expected_fingerprint: u64,
    ) -> Result<NetClient, NetError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| NetError::io("connecting to server", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("setting nodelay", e))?;
        let hello = ClientHello::new(expected_fingerprint, token);
        FrameWriter::new(&mut stream).write_frame(&hello.encode())?;

        let mut reader = FrameReader::new();
        let mut reply = read_hello_bytes(&mut stream, &mut reader)?;
        if reply.len() >= 4 && reply[0..4] == ERROR_FRAME_MAGIC {
            // typed rejection; the server closes after sending it
            let frame = decode_error_frame(&mut reply)?;
            return Err(NetError::Remote(frame));
        }
        let server = ServerHello::decode(&mut reply)?;
        if server.net_protocol != NET_PROTOCOL_VERSION {
            return Err(NetError::VersionMismatch {
                got: server.net_protocol,
                supported: NET_PROTOCOL_VERSION,
            });
        }
        if server.wire_version != WIRE_VERSION {
            return Err(NetError::VersionMismatch {
                got: server.wire_version,
                supported: WIRE_VERSION,
            });
        }
        if server.fingerprint != expected_fingerprint {
            return Err(NetError::FingerprintMismatch {
                expected: expected_fingerprint,
                got: server.fingerprint,
            });
        }
        Ok(NetClient {
            stream,
            reader,
            hello: server,
        })
    }

    /// The hello the server answered with.
    pub fn server_hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Streams a batch of requests through the connection and collects
    /// every answer, consuming the connection (the write half is closed
    /// to signal end-of-stream; the server drains and closes).
    ///
    /// Frames of different requests are interleaved round-robin on the
    /// wire — deliberately, to exercise the server's per-connection
    /// demultiplexer the way concurrent tenants would. A reader thread
    /// drains response frames concurrently with submission, so neither
    /// side's socket buffer can fill and deadlock the exchange.
    ///
    /// # Errors
    /// [`NetError::Io`] / [`NetError::Wire`] for transport and framing
    /// failures. Per-request server failures do NOT fail the batch —
    /// they come back typed in the matching [`NetResponse::result`].
    pub fn run_requests(self, requests: Vec<NetRequest>) -> Result<Vec<NetResponse>, NetError> {
        let NetClient {
            stream,
            reader,
            hello: _,
        } = self;
        let read_half = stream
            .try_clone()
            .map_err(|e| NetError::io("cloning stream for reader", e))?;
        let collector = thread::spawn(move || collect_responses(read_half, reader));

        let mut writer = FrameWriter::new(&stream);
        let mut write_err: Option<NetError> = None;
        // round-robin interleave across requests
        let max_len = requests.iter().map(|r| r.frames.len()).max().unwrap_or(0);
        'outer: for i in 0..max_len {
            for req in &requests {
                if let Some(frame) = req.frames.get(i) {
                    if let Err(e) = writer.write_frame(frame) {
                        // server may have torn the connection down with a
                        // typed error in flight — keep it, prefer what
                        // the collector saw
                        write_err = Some(e);
                        break 'outer;
                    }
                }
            }
        }
        let _ = stream.shutdown(Shutdown::Write);

        let (mut by_request, fatal) = match collector.join() {
            Ok(r) => r,
            Err(_) => {
                return Err(NetError::protocol(
                    "response collector thread panicked".to_string(),
                ))
            }
        };
        if let Some(e) = fatal {
            return Err(e);
        }
        if let Some(e) = write_err {
            return Err(e);
        }
        Ok(requests
            .iter()
            .map(|req| NetResponse {
                request_id: req.request_id,
                result: by_request.remove(&req.request_id).unwrap_or(Ok(Vec::new())),
            })
            .collect())
    }

    /// [`NetClient::run_requests`] for a single request, surfacing a
    /// server-side failure as [`NetError::Remote`].
    ///
    /// # Errors
    /// As [`NetClient::run_requests`], plus [`NetError::Remote`] when
    /// the server answered with an error frame.
    pub fn run_request(self, request_id: u64, frames: Vec<Bytes>) -> Result<Vec<Bytes>, NetError> {
        let mut responses = self.run_requests(vec![NetRequest { request_id, frames }])?;
        let response = responses
            .pop()
            .ok_or_else(|| NetError::protocol("no response for request"))?;
        response.result.map_err(NetError::Remote)
    }
}

type ResponseMap = HashMap<u64, Result<Vec<Bytes>, ErrorFrame>>;

/// Reads the stream to EOF, demultiplexing data frames by request id
/// and recording the first error frame per request (an errored lane
/// yields no further data).
fn collect_responses(
    mut stream: TcpStream,
    mut reader: FrameReader,
) -> (ResponseMap, Option<NetError>) {
    let mut out: ResponseMap = HashMap::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // drain everything already buffered before blocking on the socket
        loop {
            match reader.try_next() {
                Ok(Some(NetFrame::Data(raw))) => {
                    let rid = match peek_frame_request_id(&raw) {
                        Ok(rid) => rid,
                        Err(e) => return (out, Some(NetError::Wire(e))),
                    };
                    if let Ok(frames) = out.entry(rid).or_insert_with(|| Ok(Vec::new())) {
                        frames.push(raw);
                    }
                }
                Ok(Some(NetFrame::Error(frame))) => {
                    out.insert(frame.request_id, Err(frame));
                }
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if reader.buffered() > 0 {
                    return (
                        out,
                        Some(NetError::protocol(
                            "server closed mid-frame (torn response)",
                        )),
                    );
                }
                return (out, None);
            }
            Ok(n) => reader.push(&chunk[..n]),
            Err(e) => return (out, Some(NetError::io("reading responses", e))),
        }
    }
}
