//! Incremental frame codec: reassembles wire frames from arbitrary TCP
//! read-chunk boundaries.
//!
//! The in-process codec (`proteus_graph::wire::decode_frame`) assumes it
//! is handed at least one whole frame. A TCP receiver has no such
//! luxury: a `read` may return one byte of a header, a header plus half
//! a payload, or three frames back to back. [`FrameReader`] buffers
//! whatever arrives and yields exactly the frames that have fully
//! landed, in order, without copying payload bytes out of the
//! reassembly buffer more than once.
//!
//! The reader recognises both frame families by their 4-byte magic —
//! `PRTB` data frames (v1 and v2) and `PRTE` error frames — so one
//! stream can interleave results and failures. Data frames are yielded
//! as their *raw bytes* ([`NetFrame::Data`]): the server forwards them
//! untouched into `RequestHandle::submit_bytes` (which does the full
//! checksum validation), and the client hands them to
//! `DeobfuscationSession::accept_mux_bytes` — the reader never weakens
//! the end-to-end integrity check by re-encoding. Error frames are fully
//! decoded and checksum-verified here ([`NetFrame::Error`]).

use crate::error::NetError;
use bytes::{Bytes, BytesMut};
use proteus_graph::wire::{
    decode_error_frame, ErrorFrame, WireError, ERROR_FRAME_MAGIC, FRAME_MAGIC, WIRE_VERSION,
    WIRE_VERSION_V1, WIRE_VERSION_V2,
};
use std::io::Write;

/// Largest data-frame payload the incremental reader will buffer
/// (1 GiB). A length field beyond this is a corrupt or hostile header,
/// not a legitimate bucket — sealed buckets are orders of magnitude
/// smaller — and rejecting it keeps a malformed peer from ballooning
/// server memory.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// v1 data-frame header length: magic(4) + version(2) + bucket(4) +
/// len(4) + checksum(8).
const V1_HEADER: usize = 22;
/// v2 data-frame header length: v1 plus the request id(8).
const V2_HEADER: usize = 30;
/// Error-frame header length: magic(4) + version(2) + request id(8) +
/// code(2) + len(4) + checksum(8).
const ERR_HEADER: usize = 28;

/// One frame reassembled from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFrame {
    /// A complete data frame, as its raw wire bytes (header included) —
    /// ready for `submit_bytes` / `accept_mux_bytes`, which perform the
    /// full checksum validation.
    Data(Bytes),
    /// A complete, checksum-verified error frame.
    Error(ErrorFrame),
}

/// Buffers raw socket bytes and yields complete frames.
///
/// Feed chunks with [`FrameReader::push`]; drain frames with
/// [`FrameReader::try_next`]. Any split is legal — 1-byte feeds, a
/// split inside the magic, inside a length field, or mid-payload — and
/// back-to-back frames delivered in one chunk come out one at a time.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: BytesMut,
    /// Set on the first framing error: the byte position is
    /// unsynchronisable afterwards, so every later poll re-errors
    /// instead of guessing at a resync point.
    poisoned: bool,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends freshly-read socket bytes to the reassembly buffer.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Copies `len` bytes starting at offset `at` out of the buffer
    /// without consuming them; `None` when fewer bytes are buffered.
    /// Used by the handshake layer, which shares the connection's
    /// reader so bytes a peer pipelines after its hello stay queued for
    /// frame reassembly.
    pub fn peek_bytes(&self, at: usize, len: usize) -> Option<Vec<u8>> {
        if self.buf.len() < at + len {
            return None;
        }
        Some(self.buf[at..at + len].to_vec())
    }

    /// Consumes and returns the first `len` buffered bytes, which must
    /// be present (the handshake layer checks via
    /// [`FrameReader::buffered`] first). Anything after them stays
    /// buffered.
    pub fn split_bytes(&mut self, len: usize) -> Bytes {
        let len = len.min(self.buf.len());
        self.buf.split_to(len).freeze()
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    /// [`NetError::Wire`] with [`WireError::BadMagic`] /
    /// [`WireError::UnknownVersion`] / [`WireError::Malformed`] when the
    /// buffered bytes cannot be a frame this library speaks, and with
    /// the error decoder's rejections for corrupt `PRTE` frames. All of
    /// these are fatal for the stream: after a framing error the byte
    /// position is unsynchronisable and the connection must close. The
    /// reader enforces that itself — once it has returned any error,
    /// every subsequent poll errors too, regardless of what is pushed.
    pub fn try_next(&mut self) -> Result<Option<NetFrame>, NetError> {
        if self.poisoned {
            return Err(NetError::Wire(WireError::Malformed {
                detail: "frame stream already failed; the connection must close".to_string(),
            }));
        }
        let result = self.try_next_unpoisoned();
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn try_next_unpoisoned(&mut self) -> Result<Option<NetFrame>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&self.buf[0..4]);
        if magic == FRAME_MAGIC {
            self.try_next_data()
        } else if magic == ERROR_FRAME_MAGIC {
            self.try_next_error()
        } else {
            Err(NetError::Wire(WireError::BadMagic { got: magic }))
        }
    }

    fn try_next_data(&mut self) -> Result<Option<NetFrame>, NetError> {
        if self.buf.len() < 6 {
            return Ok(None);
        }
        let version = u16::from_le_bytes([self.buf[4], self.buf[5]]);
        let (header, len_at) = match version {
            WIRE_VERSION_V1 => (V1_HEADER, 10),
            WIRE_VERSION_V2 => (V2_HEADER, 18),
            got => {
                return Err(NetError::Wire(WireError::UnknownVersion {
                    got,
                    supported: WIRE_VERSION,
                }))
            }
        };
        if self.buf.len() < len_at + 4 {
            return Ok(None);
        }
        let payload_len = u32::from_le_bytes([
            self.buf[len_at],
            self.buf[len_at + 1],
            self.buf[len_at + 2],
            self.buf[len_at + 3],
        ]) as usize;
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(NetError::Wire(WireError::Malformed {
                detail: format!("frame payload length {payload_len} exceeds the 1 GiB cap"),
            }));
        }
        let total = header + payload_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let raw = self.buf.split_to(total).freeze();
        Ok(Some(NetFrame::Data(raw)))
    }

    fn try_next_error(&mut self) -> Result<Option<NetFrame>, NetError> {
        if self.buf.len() < ERR_HEADER {
            return Ok(None);
        }
        let detail_len =
            u32::from_le_bytes([self.buf[16], self.buf[17], self.buf[18], self.buf[19]]) as usize;
        if detail_len > proteus_graph::wire::MAX_ERROR_DETAIL {
            return Err(NetError::Wire(WireError::Malformed {
                detail: format!("error frame detail length {detail_len} is implausible"),
            }));
        }
        let total = ERR_HEADER + detail_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut raw = self.buf.split_to(total).freeze();
        let frame = decode_error_frame(&mut raw)?;
        Ok(Some(NetFrame::Error(frame)))
    }
}

/// Writes whole frames to a byte sink. Thin — frames arrive
/// pre-encoded — but it centralises the write-all-or-fail contract:
/// a frame is never partially written without the error surfacing, so a
/// receiver never sees a torn frame from a live sender.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    sink: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> FrameWriter<W> {
        FrameWriter { sink }
    }

    /// Writes one pre-encoded frame in full.
    ///
    /// # Errors
    /// [`NetError::Io`] when the sink fails; the frame may then be torn
    /// on the wire and the connection must close.
    pub fn write_frame(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.sink
            .write_all(frame)
            .map_err(|e| NetError::io("writing frame", e))
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    // tests assert on Results aggressively; the unwrap/expect discipline
    // is for production paths
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use proteus_graph::wire::{encode_error_frame, encode_frame, encode_frame_v2, ErrorCode};

    fn feed_in_chunks(frames: &[Bytes], chunk: usize) -> Vec<NetFrame> {
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.push(piece);
            while let Some(frame) = reader.try_next().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(reader.buffered(), 0, "no leftover bytes");
        out
    }

    #[test]
    fn one_byte_feeds_reassemble_mixed_stream() {
        let frames = vec![
            encode_frame_v2(7, 0, b"first bucket"),
            encode_error_frame(&ErrorFrame::new(8, ErrorCode::Deadline, "late")),
            encode_frame(3, b"legacy v1"),
            encode_frame_v2(7, 1, b"second bucket"),
        ];
        for chunk in [1usize, 2, 3, 5, 7, 13, 64, 4096] {
            let out = feed_in_chunks(&frames, chunk);
            assert_eq!(out.len(), 4, "chunk size {chunk}");
            assert_eq!(out[0], NetFrame::Data(frames[0].clone()));
            assert!(matches!(&out[1], NetFrame::Error(e) if e.code == ErrorCode::Deadline));
            assert_eq!(out[2], NetFrame::Data(frames[2].clone()));
            assert_eq!(out[3], NetFrame::Data(frames[3].clone()));
        }
    }

    #[test]
    fn back_to_back_frames_in_one_push() {
        let a = encode_frame_v2(1, 0, b"aa");
        let b = encode_frame_v2(2, 0, b"bb");
        let mut reader = FrameReader::new();
        let mut joined = a.to_vec();
        joined.extend_from_slice(&b);
        reader.push(&joined);
        assert_eq!(reader.try_next().unwrap(), Some(NetFrame::Data(a)));
        assert_eq!(reader.try_next().unwrap(), Some(NetFrame::Data(b)));
        assert_eq!(reader.try_next().unwrap(), None);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut reader = FrameReader::new();
        reader.push(b"JUNKJUNKJUNK");
        assert!(matches!(
            reader.try_next(),
            Err(NetError::Wire(WireError::BadMagic { .. }))
        ));
    }

    #[test]
    fn unknown_version_is_fatal() {
        let frame = encode_frame_v2(1, 0, b"x");
        let mut raw = frame.to_vec();
        raw[4] = 99;
        let mut reader = FrameReader::new();
        reader.push(&raw);
        assert!(matches!(
            reader.try_next(),
            Err(NetError::Wire(WireError::UnknownVersion { got: 99, .. }))
        ));
    }

    #[test]
    fn oversized_length_field_is_fatal_before_buffering() {
        let frame = encode_frame_v2(1, 0, b"x");
        let mut raw = frame.to_vec();
        // payload_len field of a v2 frame sits at bytes 18..22
        raw[18..22].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&raw[..22]);
        assert!(matches!(
            reader.try_next(),
            Err(NetError::Wire(WireError::Malformed { .. }))
        ));
    }

    #[test]
    fn partial_header_and_partial_payload_wait_for_more() {
        let frame = encode_frame_v2(5, 2, b"payload bytes here");
        let mut reader = FrameReader::new();
        reader.push(&frame[..3]); // inside the magic
        assert_eq!(reader.try_next().unwrap(), None);
        reader.push(&frame[3..19]); // inside the length field
        assert_eq!(reader.try_next().unwrap(), None);
        reader.push(&frame[19..frame.len() - 1]); // all but the last byte
        assert_eq!(reader.try_next().unwrap(), None);
        reader.push(&frame[frame.len() - 1..]);
        assert_eq!(reader.try_next().unwrap(), Some(NetFrame::Data(frame)));
    }

    #[test]
    fn corrupt_error_frame_is_fatal() {
        let frame = encode_error_frame(&ErrorFrame::new(1, ErrorCode::Internal, "boom"));
        let mut raw = frame.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        let mut reader = FrameReader::new();
        reader.push(&raw);
        assert!(matches!(
            reader.try_next(),
            Err(NetError::Wire(WireError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn writer_passes_frames_through_verbatim() {
        let frame = encode_frame_v2(9, 0, b"verbatim");
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_frame(&frame).unwrap();
        writer.write_frame(&frame).unwrap();
        let sink = writer.into_inner();
        assert_eq!(sink.len(), frame.len() * 2);
        assert_eq!(&sink[..frame.len()], &frame[..]);
    }
}
