//! The networking error taxonomy, and the mapping that flattens core
//! [`ProteusError`]s to wire [`ErrorCode`]s so they can cross the socket
//! typed.

use proteus::ProteusError;
use proteus_graph::{ErrorCode, ErrorFrame, WireError};
use std::fmt;
use std::io;

/// Everything the networking layer can fail with. Every variant is a
/// typed condition — connection teardown without one of these is a bug,
/// not a protocol outcome.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// What was being done when the I/O failed.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// Bytes on the wire failed frame decoding.
    Wire(WireError),
    /// A core pipeline operation failed locally (session, artifact,
    /// runtime).
    Proteus(ProteusError),
    /// The peer's hello was malformed or arrived out of order.
    Handshake {
        /// What was wrong.
        detail: String,
    },
    /// The peer speaks a network-protocol version this library does not.
    VersionMismatch {
        /// Version the peer announced.
        got: u16,
        /// Version this library speaks.
        supported: u16,
    },
    /// The peer serves (or expects) a different trained artifact.
    FingerprintMismatch {
        /// Fingerprint this side expected.
        expected: u64,
        /// Fingerprint the peer announced.
        got: u64,
    },
    /// The server rejected or failed the request and said so with a
    /// typed error frame.
    Remote(ErrorFrame),
    /// A protocol invariant was violated (frame for an unknown request,
    /// response after end-of-stream, ...).
    Protocol {
        /// What was violated.
        detail: String,
    },
}

impl NetError {
    /// Shorthand for [`NetError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> NetError {
        NetError::Io {
            context: context.into(),
            source,
        }
    }

    /// Shorthand for [`NetError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> NetError {
        NetError::Protocol {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`NetError::Handshake`].
    pub fn handshake(detail: impl Into<String>) -> NetError {
        NetError::Handshake {
            detail: detail.into(),
        }
    }

    /// The typed code of the remote failure, when this error is one.
    pub fn remote_code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Remote(frame) => Some(frame.code),
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "net i/o error {context}: {source}"),
            NetError::Wire(e) => write!(f, "net wire error: {e}"),
            NetError::Proteus(e) => write!(f, "net pipeline error: {e}"),
            NetError::Handshake { detail } => write!(f, "handshake error: {detail}"),
            NetError::VersionMismatch { got, supported } => write!(
                f,
                "protocol version mismatch: peer speaks {got}, this library speaks {supported}"
            ),
            NetError::FingerprintMismatch { expected, got } => write!(
                f,
                "artifact fingerprint mismatch: expected {expected:#018x}, peer has {got:#018x}"
            ),
            NetError::Remote(frame) => write!(f, "{frame}"),
            NetError::Protocol { detail } => write!(f, "net protocol error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Wire(e) => Some(e),
            NetError::Proteus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Wire(e)
    }
}

impl From<ProteusError> for NetError {
    fn from(e: ProteusError) -> NetError {
        NetError::Proteus(e)
    }
}

/// Flattens a core [`ProteusError`] to the stable wire [`ErrorCode`] a
/// server reports it under. Total — every variant maps somewhere, so a
/// new core variant without a deliberate code lands on
/// [`ErrorCode::Internal`] rather than tearing the connection down.
pub fn error_code_for(err: &ProteusError) -> ErrorCode {
    match err {
        ProteusError::Config { .. } => ErrorCode::Config,
        ProteusError::Partition { .. } => ErrorCode::Partition,
        ProteusError::Wire(_) => ErrorCode::Wire,
        ProteusError::Graph(_) => ErrorCode::Graph,
        ProteusError::Protocol { .. } => ErrorCode::Protocol,
        ProteusError::DuplicateFrame { .. } => ErrorCode::DuplicateFrame,
        ProteusError::Artifact(_) => ErrorCode::Artifact,
        ProteusError::WorkerCrashed { .. } => ErrorCode::WorkerCrashed,
        ProteusError::Deadline { .. } => ErrorCode::Deadline,
        ProteusError::ReplicaUnavailable { .. } => ErrorCode::ReplicaUnavailable,
        ProteusError::RetriesExhausted { .. } => ErrorCode::RetriesExhausted,
        // durable-store failures are a server-side condition the client
        // can neither cause nor repair
        ProteusError::Store(_) => ErrorCode::Internal,
    }
}

/// Builds the error frame a server sends for a request that failed with
/// `err`.
pub fn error_frame_for(request_id: u64, err: &ProteusError) -> ErrorFrame {
    ErrorFrame::new(request_id, error_code_for(err), err.to_string())
}
