//! The serving daemon: accepts authenticated connections, demultiplexes
//! interleaved frames per connection by peeking the request id, and
//! streams each request through a [`proteus::ServeRuntime`] or
//! [`proteus::Fleet`] lane.
//!
//! ## Threading and failure domains
//!
//! One accept thread polls the listener; each connection gets a
//! *reader* thread (socket → [`FrameReader`] → lane `submit_bytes`) and
//! a *writer* thread (lane `try_recv` → socket). The split matters for
//! backpressure: a reader blocked in `submit_bytes` (lane window full)
//! stops reading, TCP flow control propagates the stall to the client,
//! and the writer keeps draining completed frames the whole time — so
//! the window opens again and the system never deadlocks on a full
//! socket buffer in either direction.
//!
//! All socket writes after the handshake go through the writer thread;
//! the reader queues error frames for it instead of writing directly.
//! Frames are written whole or not at all, so a live server never emits
//! a torn frame — a client sees either a complete frame or a closed
//! connection.
//!
//! ## Admission control
//!
//! Three gates, each rejected with a typed error frame rather than a
//! reset: connection limit (at accept), tenant auth + version +
//! fingerprint (at handshake), and per-tenant concurrent-request quota
//! (at first frame of a new request id).
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] stops accepting, flags draining (new request
//! ids are rejected with [`ErrorCode::Shutdown`]), waits for in-flight
//! requests to finish within the grace period, then force-closes
//! stragglers. A fleet backend is drained replica by replica —
//! reusing [`proteus::Fleet::drain`] — before the call returns.

use crate::codec::{FrameReader, FrameWriter, NetFrame};
use crate::error::{error_frame_for, NetError};
use crate::handshake::{read_hello_bytes, ClientHello, ServerHello, NET_PROTOCOL_VERSION};
use bytes::Bytes;
use proteus::serve::RequestHandle;
use proteus::store::Store;
use proteus::{Fleet, ProteusError, ServeRuntime};
use proteus_graph::wire::{
    encode_error_frame, peek_frame_request_id, ErrorCode, ErrorFrame, WIRE_VERSION,
    WIRE_VERSION_V1, WIRE_VERSION_V2,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Lock, recovering the guard from a poisoned mutex: the shared state
/// is counters and registries, valid at every instant, so a panicking
/// peer thread must not wedge the rest of the server.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tenant's credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAuth {
    /// Tenant name (quota accounting key).
    pub tenant: String,
    /// The token the tenant authenticates with.
    pub token: String,
}

impl TenantAuth {
    /// Builds a credential.
    pub fn new(tenant: impl Into<String>, token: impl Into<String>) -> TenantAuth {
        TenantAuth {
            tenant: tenant.into(),
            token: token.into(),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free
    /// port; read it back from [`NetServer::local_addr`]).
    pub addr: String,
    /// Accepted tenant credentials. Empty means *no* client can
    /// authenticate — auth is never implicitly open.
    pub auth: Vec<TenantAuth>,
    /// Maximum concurrently-open client connections; `0` = unlimited.
    pub max_connections: usize,
    /// Maximum concurrently-active requests per tenant; `0` =
    /// unlimited.
    pub tenant_quota: usize,
    /// Free-form banner announced in the server hello.
    pub banner: String,
    /// Durable store to journal in-flight lanes into. Every frame a
    /// lane accepts is recorded before serving proceeds, and the lane
    /// is marked done when it completes or fails — so a killed daemon
    /// restarted with the same store re-runs exactly the lanes whose
    /// clients never got their answer. `None` = no durability.
    pub store: Option<Arc<Store>>,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            addr: "127.0.0.1:0".to_string(),
            auth: Vec::new(),
            max_connections: 0,
            tenant_quota: 0,
            banner: "proteus-serve".to_string(),
            store: None,
        }
    }
}

/// The optimization engine behind the socket: a single shared runtime,
/// or a replicated fleet (requests route by consistent hash and the
/// server reuses fleet drain on shutdown).
pub enum NetBackend {
    /// One shared [`ServeRuntime`].
    Runtime(ServeRuntime),
    /// A replicated [`Fleet`].
    Fleet(Fleet),
}

impl std::fmt::Debug for NetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetBackend::Runtime(_) => f.write_str("NetBackend::Runtime"),
            NetBackend::Fleet(fleet) => {
                write!(f, "NetBackend::Fleet({} replicas)", fleet.replicas())
            }
        }
    }
}

impl NetBackend {
    /// Opens a lane (a [`RequestHandle`]) for one request id, routing to
    /// the shared runtime or the fleet's replica for that id. The server
    /// uses this per admitted request; `proteus-serve` also uses it to
    /// replay journaled lanes during store recovery.
    pub fn lane(&self, request_id: u64) -> Result<RequestHandle, ProteusError> {
        match self {
            NetBackend::Runtime(rt) => Ok(rt.handle(request_id)),
            NetBackend::Fleet(fleet) => fleet.lane(request_id),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections that passed the connection limit and were handed to
    /// a handler thread.
    pub connections_accepted: usize,
    /// Connections turned away at the limit.
    pub connections_rejected: usize,
    /// Handshakes rejected (bad auth, version, fingerprint, malformed).
    pub handshakes_rejected: usize,
    /// Requests whose every frame was optimized and written back.
    pub requests_completed: usize,
    /// Requests that ended with an error frame (admission rejections
    /// included).
    pub requests_failed: usize,
    /// Requests admitted and currently streaming (lane open).
    pub requests_active: usize,
    /// Connections currently open.
    pub active_connections: usize,
    /// Durable-journal appends that failed. Non-zero means the daemon
    /// kept serving with durability degraded: lanes opened after the
    /// first failure would not be replayed by a restart. The store
    /// itself stays consistent (failed appends roll back), so this is
    /// a health signal, not a corruption signal.
    pub journal_errors: usize,
}

struct Counters {
    connections_accepted: AtomicUsize,
    connections_rejected: AtomicUsize,
    handshakes_rejected: AtomicUsize,
    requests_completed: AtomicUsize,
    requests_failed: AtomicUsize,
    requests_active: AtomicUsize,
    active_connections: AtomicUsize,
    journal_errors: AtomicUsize,
}

struct ServerShared {
    backend: NetBackend,
    config: NetServerConfig,
    /// token → tenant.
    tokens: HashMap<String, String>,
    fingerprint: u64,
    /// Set once: stop accepting, reject new request ids, drain.
    draining: AtomicBool,
    counters: Counters,
    /// Concurrently-active requests per tenant.
    tenant_active: Mutex<HashMap<String, usize>>,
    /// Clones of every open connection, for force-close on shutdown.
    open_streams: Mutex<Vec<TcpStream>>,
    /// Handler threads, joined on shutdown.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// How a lane ended, for the completed/failed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneOutcome {
    Completed,
    Failed,
}

impl ServerShared {
    /// Counts a durable-journal append failure and logs the first one
    /// (stderr is the daemon's operational log). One line, not a flood:
    /// after the first failure the `journal_errors` stat is the signal,
    /// and a poisoned store rejects every later append with the same
    /// error anyway. Serving continues — durability is degraded, but a
    /// live answer still reaches the client.
    fn note_journal_error(&self, request_id: u64, what: &str, err: &proteus::store::StoreError) {
        let seen = self.counters.journal_errors.fetch_add(1, Ordering::SeqCst);
        if seen == 0 {
            eprintln!(
                "proteus-serve: durable {what} failed for request {request_id:#x}: {err} — \
                 serving continues with durability degraded (journal_errors in stats)"
            );
        }
    }

    fn release_tenant(&self, tenant: &str) {
        let mut map = relock(&self.tenant_active);
        if let Some(n) = map.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(tenant);
            }
        }
    }

    /// The single owner of every lane-teardown side effect: the
    /// `requests_active` decrement, the tenant-quota release, the
    /// completed/failed counter, and the durable lane-done mark. Takes
    /// the [`Lane`] by value — a lane can only be passed here once
    /// (removing it from the connection's map is what yields ownership),
    /// so the gauge can never double-decrement no matter how many
    /// teardown paths race.
    fn release_lane(&self, request_id: u64, lane: Lane, outcome: LaneOutcome) {
        self.release_tenant(&lane.tenant);
        self.counters.requests_active.fetch_sub(1, Ordering::SeqCst);
        match outcome {
            LaneOutcome::Completed => &self.counters.requests_completed,
            LaneOutcome::Failed => &self.counters.requests_failed,
        }
        .fetch_add(1, Ordering::SeqCst);
        if let Some(store) = &self.config.store {
            // the client has its answer (or its error frame) either
            // way: the journaled lane must not be re-run on restart.
            // Journal failure must not take down live serving, but it
            // must not be silent either — count and log it.
            if let Err(e) = store.finish_lane(request_id) {
                self.note_journal_error(request_id, "lane-done mark", &e);
            }
        }
    }
}

/// A running TCP serving daemon. Dropping the server shuts it down with
/// a short grace period; call [`NetServer::shutdown`] for an explicit
/// drain with a chosen budget.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("fingerprint", &self.fingerprint)
            .field("draining", &self.draining)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    /// [`NetError::Io`] when the address cannot be bound.
    pub fn bind(
        backend: NetBackend,
        fingerprint: u64,
        config: NetServerConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| NetError::io(format!("binding {}", config.addr), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("reading bound address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("setting listener nonblocking", e))?;
        let tokens = config
            .auth
            .iter()
            .map(|a| (a.token.clone(), a.tenant.clone()))
            .collect();
        let shared = Arc::new(ServerShared {
            backend,
            config,
            tokens,
            fingerprint,
            draining: AtomicBool::new(false),
            counters: Counters {
                connections_accepted: AtomicUsize::new(0),
                connections_rejected: AtomicUsize::new(0),
                handshakes_rejected: AtomicUsize::new(0),
                requests_completed: AtomicUsize::new(0),
                requests_failed: AtomicUsize::new(0),
                requests_active: AtomicUsize::new(0),
                active_connections: AtomicUsize::new(0),
                journal_errors: AtomicUsize::new(0),
            },
            tenant_active: Mutex::new(HashMap::new()),
            open_streams: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("proteus-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| NetError::io("spawning accept thread", e))?;
        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> NetServerStats {
        let c = &self.shared.counters;
        NetServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::SeqCst),
            connections_rejected: c.connections_rejected.load(Ordering::SeqCst),
            handshakes_rejected: c.handshakes_rejected.load(Ordering::SeqCst),
            requests_completed: c.requests_completed.load(Ordering::SeqCst),
            requests_failed: c.requests_failed.load(Ordering::SeqCst),
            requests_active: c.requests_active.load(Ordering::SeqCst),
            active_connections: c.active_connections.load(Ordering::SeqCst),
            journal_errors: c.journal_errors.load(Ordering::SeqCst),
        }
    }

    /// Graceful drain: stop accepting, reject new request ids with
    /// [`ErrorCode::Shutdown`], let in-flight requests finish within
    /// `grace`, force-close whatever remains, join every thread, and
    /// drain the backend (fleet replicas via [`proteus::Fleet::drain`]).
    ///
    /// Returns the final counters.
    pub fn shutdown(mut self, grace: Duration) -> NetServerStats {
        self.shutdown_inner(grace)
    }

    fn shutdown_inner(&mut self, grace: Duration) -> NetServerStats {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // exits promptly: the loop polls `draining`
        }
        let deadline = Instant::now() + grace;
        while self
            .shared
            .counters
            .active_connections
            .load(Ordering::SeqCst)
            > 0
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(1));
        }
        // force-close stragglers; handler threads then exit on I/O error
        for stream in relock(&self.shared.open_streams).iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers: Vec<JoinHandle<()>> = relock(&self.shared.handlers).drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        if let NetBackend::Fleet(fleet) = &self.shared.backend {
            for index in 0..fleet.replicas() {
                let _ = fleet.drain(index);
            }
        }
        self.stats()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner(Duration::from_secs(5));
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let limit = shared.config.max_connections;
                let active = shared.counters.active_connections.load(Ordering::SeqCst);
                if limit > 0 && active >= limit {
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::SeqCst);
                    reject_connection(
                        stream,
                        ErrorCode::ConnectionLimit,
                        format!("server is at its connection limit of {limit}"),
                    );
                    continue;
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::SeqCst);
                shared
                    .counters
                    .active_connections
                    .fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    relock(&shared.open_streams).push(clone);
                }
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("proteus-net-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared
                            .counters
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(handle) => relock(&shared.handlers).push(handle),
                    Err(_) => {
                        // thread spawn failure: undo the accept accounting
                        shared
                            .counters
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // listener drops here: further connects are refused by the OS
}

/// Answers a connection that never gets a handler thread (limit, or a
/// rejected handshake) with one typed error frame, then closes.
fn reject_connection(mut stream: TcpStream, code: ErrorCode, detail: String) {
    let frame = encode_error_frame(&ErrorFrame::new(0, code, detail));
    let _ = FrameWriter::new(&mut stream).write_frame(&frame);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One request's lane and its per-connection bookkeeping.
struct Lane {
    handle: RequestHandle,
    tenant: String,
    /// Frames submitted into the lane from this connection.
    submitted: usize,
    /// Optimized frames written back to the client.
    delivered: usize,
    /// Total frames the request will produce, learned from the first
    /// completed bucket (every sealed bucket carries `num_buckets`).
    expected: Option<usize>,
    /// An error frame for this lane has been written; it is dead.
    failed: bool,
}

/// State shared between a connection's reader and writer threads.
struct ConnState {
    lanes: HashMap<u64, Lane>,
    /// Request ids rejected at admission — later frames for them are
    /// dropped without another error frame.
    rejected: HashSet<u64>,
    /// Error frames queued by the reader for the writer to send.
    errors: VecDeque<ErrorFrame>,
    /// The client half-closed (or the read side failed): no more
    /// submissions; drain and close.
    eof: bool,
    /// The connection is unusable (write failed): drop everything now.
    fatal: bool,
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();

    // --- handshake ---
    let hello = match read_hello_bytes(&mut stream, &mut reader) {
        Ok(mut bytes) => match ClientHello::decode(&mut bytes) {
            Ok(hello) => hello,
            Err(e) => {
                shared
                    .counters
                    .handshakes_rejected
                    .fetch_add(1, Ordering::SeqCst);
                reject_connection(stream, ErrorCode::Protocol, format!("malformed hello: {e}"));
                return;
            }
        },
        Err(_) => {
            // peer vanished before completing a hello; nothing to answer
            shared
                .counters
                .handshakes_rejected
                .fetch_add(1, Ordering::SeqCst);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let rejection = if hello.net_protocol != NET_PROTOCOL_VERSION {
        Some((
            ErrorCode::VersionMismatch,
            format!(
                "client speaks net protocol {}, server speaks {}",
                hello.net_protocol, NET_PROTOCOL_VERSION
            ),
        ))
    } else if hello.wire_version != WIRE_VERSION_V1 && hello.wire_version != WIRE_VERSION_V2 {
        Some((
            ErrorCode::VersionMismatch,
            format!(
                "client sends wire version {}, server accepts up to {}",
                hello.wire_version, WIRE_VERSION
            ),
        ))
    } else if shared.draining.load(Ordering::SeqCst) {
        Some((
            ErrorCode::Shutdown,
            "server is draining for shutdown".to_string(),
        ))
    } else {
        match shared.tokens.get(&hello.token) {
            None => Some((ErrorCode::BadAuth, "unknown tenant auth token".to_string())),
            Some(_) if hello.fingerprint != shared.fingerprint => Some((
                ErrorCode::FingerprintMismatch,
                format!(
                    "client expects artifact {:#018x}, server serves {:#018x}",
                    hello.fingerprint, shared.fingerprint
                ),
            )),
            Some(_) => None,
        }
    };
    if let Some((code, detail)) = rejection {
        shared
            .counters
            .handshakes_rejected
            .fetch_add(1, Ordering::SeqCst);
        reject_connection(stream, code, detail);
        return;
    }
    // tokens map hit is guaranteed by the rejection chain above
    let tenant = match shared.tokens.get(&hello.token) {
        Some(t) => t.clone(),
        None => return,
    };
    let server_hello = ServerHello::new(shared.fingerprint, shared.config.banner.clone());
    if FrameWriter::new(&mut stream)
        .write_frame(&server_hello.encode())
        .is_err()
    {
        return;
    }

    // --- frame exchange ---
    let state = Arc::new(Mutex::new(ConnState {
        lanes: HashMap::new(),
        rejected: HashSet::new(),
        errors: VecDeque::new(),
        eof: false,
        fatal: false,
    }));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_state = Arc::clone(&state);
    let writer_shared = Arc::clone(shared);
    let writer = match thread::Builder::new()
        .name("proteus-net-write".to_string())
        .spawn(move || writer_loop(writer_stream, &writer_state, &writer_shared))
    {
        Ok(handle) => handle,
        Err(_) => return,
    };

    reader_loop(&mut stream, &mut reader, &state, shared, &tenant);
    let _ = writer.join();
    // release anything still held (fatal teardown path)
    let mut st = relock(&state);
    for (rid, lane) in st.lanes.drain() {
        // dropping the last handle clone cancels the lane: queued tasks
        // detach, nothing is ever written for it — fails closed
        shared.release_lane(rid, lane, LaneOutcome::Failed);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Socket → frames → lanes. Runs on the connection's main thread.
fn reader_loop(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    state: &Arc<Mutex<ConnState>>,
    shared: &Arc<ServerShared>,
    tenant: &str,
) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // drain complete frames before blocking on the socket again
        loop {
            match reader.try_next() {
                Ok(Some(NetFrame::Data(raw))) => {
                    if !dispatch_frame(raw, state, shared, tenant) {
                        relock(state).eof = true;
                        return;
                    }
                }
                Ok(Some(NetFrame::Error(_))) => {
                    // clients have no business sending error frames;
                    // treat it as a framing violation and close
                    let mut st = relock(state);
                    st.errors.push_back(ErrorFrame::new(
                        0,
                        ErrorCode::Protocol,
                        "client sent an error frame",
                    ));
                    st.eof = true;
                    return;
                }
                Ok(None) => break,
                Err(e) => {
                    // unsynchronisable stream: report once, stop reading
                    let mut st = relock(state);
                    st.errors
                        .push_back(ErrorFrame::new(0, ErrorCode::Wire, e.to_string()));
                    st.eof = true;
                    return;
                }
            }
        }
        if relock(state).fatal {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                relock(state).eof = true;
                return;
            }
            Ok(n) => reader.push(&chunk[..n]),
            Err(_) => {
                let mut st = relock(state);
                st.eof = true;
                st.fatal = true;
                return;
            }
        }
    }
}

/// Routes one raw data frame to its lane, opening the lane (through
/// admission control) on the first frame of a new request id. Returns
/// `false` only for failures that must end the connection.
fn dispatch_frame(
    raw: Bytes,
    state: &Arc<Mutex<ConnState>>,
    shared: &Arc<ServerShared>,
    tenant: &str,
) -> bool {
    let request_id = match peek_frame_request_id(&raw) {
        Ok(rid) => rid,
        Err(e) => {
            let mut st = relock(state);
            st.errors
                .push_back(ErrorFrame::new(0, ErrorCode::Wire, e.to_string()));
            return false;
        }
    };
    // fast path: existing lane (clone the handle out so submit_bytes —
    // which can block on the backpressure window — runs without the
    // connection lock held)
    let existing = {
        let mut st = relock(state);
        if st.rejected.contains(&request_id) {
            return true; // already rejected; drop silently
        }
        match st.lanes.get_mut(&request_id) {
            Some(lane) if lane.failed => return true,
            Some(lane) => {
                lane.submitted += 1;
                Some(lane.handle.clone())
            }
            None => None,
        }
    };
    let handle = match existing {
        Some(h) => h,
        None => {
            // admission for a new request id
            let reject = |code: ErrorCode, detail: String| {
                let mut st = relock(state);
                st.rejected.insert(request_id);
                st.errors
                    .push_back(ErrorFrame::new(request_id, code, detail));
                shared
                    .counters
                    .requests_failed
                    .fetch_add(1, Ordering::SeqCst);
            };
            if shared.draining.load(Ordering::SeqCst) {
                reject(
                    ErrorCode::Shutdown,
                    "server is draining; request rejected".to_string(),
                );
                return true;
            }
            let quota = shared.config.tenant_quota;
            if quota > 0 {
                let mut map = relock(&shared.tenant_active);
                let n = map.entry(tenant.to_string()).or_insert(0);
                if *n >= quota {
                    drop(map);
                    reject(
                        ErrorCode::QuotaExceeded,
                        format!("tenant {tenant} is at its quota of {quota} concurrent requests"),
                    );
                    return true;
                }
                *n += 1;
            } else {
                *relock(&shared.tenant_active)
                    .entry(tenant.to_string())
                    .or_insert(0) += 1;
            }
            match shared.backend.lane(request_id) {
                Ok(handle) => {
                    let mut st = relock(state);
                    st.lanes.insert(
                        request_id,
                        Lane {
                            handle: handle.clone(),
                            tenant: tenant.to_string(),
                            submitted: 1,
                            delivered: 0,
                            expected: None,
                            failed: false,
                        },
                    );
                    shared
                        .counters
                        .requests_active
                        .fetch_add(1, Ordering::SeqCst);
                    handle
                }
                Err(e) => {
                    shared.release_tenant(tenant);
                    reject(crate::error::error_code_for(&e), e.to_string());
                    return true;
                }
            }
        }
    };
    // journal *before* submitting: once the frame can influence an
    // answer the client might act on, it must survive a daemon kill.
    // A frame the lane then rejects (duplicate, corrupt) is journaled
    // too — harmless, since resume replays it into a lane that rejects
    // it identically. Journal failure must not take down live serving
    // (the store rolls a failed append back, staying consistent), but
    // it is counted and logged — durability is degraded from here on.
    if let Some(store) = &shared.config.store {
        if let Err(e) = store.record_lane_frame(request_id, &raw) {
            shared.note_journal_error(request_id, "frame journal", &e);
        }
    }
    if let Err(e) = handle.submit_bytes(raw) {
        // the lane survives a per-frame rejection (duplicate, corrupt);
        // the client learns which frame and why
        let mut st = relock(state);
        st.errors.push_back(error_frame_for(request_id, &e));
    }
    true
}

/// Lanes → socket. Runs until the connection is finished: every lane
/// complete or failed, the reader at EOF, and the error queue flushed.
fn writer_loop(stream: TcpStream, state: &Arc<Mutex<ConnState>>, shared: &Arc<ServerShared>) {
    let mut writer = FrameWriter::new(&stream);
    loop {
        // collect work under the lock, write outside it
        let (errors, ready, done) = {
            let mut st = relock(state);
            let errors: Vec<ErrorFrame> = st.errors.drain(..).collect();
            let mut ready: Vec<(u64, Bytes)> = Vec::new();
            let mut failed: Vec<(u64, ErrorFrame)> = Vec::new();
            let mut completed: Vec<u64> = Vec::new();
            let eof = st.eof;
            for (&rid, lane) in st.lanes.iter_mut() {
                while let Some(bucket) = lane.handle.try_recv() {
                    lane.expected = Some(bucket.num_buckets as usize);
                    lane.delivered += 1;
                    ready.push((rid, bucket.to_mux_bytes(rid)));
                }
                if let Some(err) = lane.handle.failure() {
                    if !lane.failed {
                        lane.failed = true;
                        failed.push((rid, error_frame_for(rid, &err)));
                    }
                    continue;
                }
                let complete = lane.expected.is_some_and(|e| lane.delivered == e);
                // at client EOF a lane that will never see its missing
                // frames (client bailed early) finishes once everything
                // actually submitted has come back
                let drained_at_eof =
                    eof && lane.delivered == lane.submitted && lane.handle.in_flight() == 0;
                if complete || drained_at_eof {
                    completed.push(rid);
                }
            }
            for (rid, frame) in failed {
                st.errors.push_back(frame);
                if let Some(lane) = st.lanes.remove(&rid) {
                    shared.release_lane(rid, lane, LaneOutcome::Failed);
                }
                st.rejected.insert(rid);
            }
            for rid in completed {
                if let Some(lane) = st.lanes.remove(&rid) {
                    let outcome = if lane.expected.is_some_and(|e| lane.delivered == e) {
                        LaneOutcome::Completed
                    } else {
                        // drained at EOF short of the full bucket count:
                        // the client abandoned the request mid-stream
                        LaneOutcome::Failed
                    };
                    shared.release_lane(rid, lane, outcome);
                }
            }
            // take failure frames queued just above in the same pass
            let mut all_errors = errors;
            all_errors.extend(st.errors.drain(..));
            let finished = st.fatal || (st.eof && st.lanes.is_empty() && all_errors.is_empty());
            (all_errors, ready, finished)
        };
        let mut write_failed = false;
        for frame in &errors {
            if writer.write_frame(&encode_error_frame(frame)).is_err() {
                write_failed = true;
                break;
            }
        }
        if !write_failed {
            for (_rid, bytes) in &ready {
                if writer.write_frame(bytes).is_err() {
                    write_failed = true;
                    break;
                }
            }
        }
        if write_failed {
            // client is gone: fail closed — drop every lane (cancelling
            // queued work) and let the reader observe `fatal`
            let mut st = relock(state);
            st.fatal = true;
            for (rid, lane) in st.lanes.drain() {
                shared.release_lane(rid, lane, LaneOutcome::Failed);
            }
            return;
        }
        if done {
            let _ = stream.shutdown(Shutdown::Write);
            return;
        }
        thread::sleep(Duration::from_micros(200));
    }
}
