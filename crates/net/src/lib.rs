//! TCP serving boundary for Proteus — the deployable realization of the
//! paper's threat model (§3.1): the model owner and the optimization
//! service live in *different processes* separated by an untrusted
//! network, and the only bytes that cross are sealed buckets.
//!
//! Three layers:
//!
//! - [`codec`] — an incremental [`FrameReader`]/[`FrameWriter`] pair that
//!   reassembles wire v1/v2 data frames and `PRTE` error frames from
//!   arbitrary TCP read-chunk boundaries (the in-process codec in
//!   `proteus_graph::wire` assumes whole buffers).
//! - [`handshake`] — a versioned length-prefixed hello exchange carrying
//!   the network protocol version, the wire version, the tenant auth
//!   token, and the expected trained-artifact fingerprint; every
//!   mismatch is rejected with a typed error frame, never a silent
//!   disconnect.
//! - [`server`] / [`client`] — [`NetServer`] accepts N connections,
//!   demultiplexes interleaved frames per connection by peeking the
//!   request id, and streams each request through a
//!   [`proteus::ServeRuntime`] or [`proteus::Fleet`] lane;
//!   [`NetClient`] streams an obfuscation session's sealed buckets out
//!   and reassembles the optimized results. Loopback round trips are
//!   bit-identical to the in-process session path — the e2e suite
//!   asserts exactly that.
//!
//! Server-side failures cross the wire as typed
//! [`proteus_graph::ErrorFrame`]s (see [`error`]), so a client observes
//! `Deadline` or `QuotaExceeded` as a value it can match on instead of a
//! connection reset.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod codec;
pub mod error;
pub mod handshake;
pub mod server;

pub use client::{NetClient, NetRequest, NetResponse};
pub use codec::{FrameReader, FrameWriter, NetFrame, MAX_FRAME_PAYLOAD};
pub use error::{error_code_for, NetError};
pub use handshake::{ClientHello, ServerHello, NET_PROTOCOL_VERSION};
pub use server::{NetBackend, NetServer, NetServerConfig, NetServerStats, TenantAuth};
