//! `proteus-client` — the model-owner CLI: streams a model's sealed
//! buckets to a `proteus-serve` daemon and reassembles the optimized
//! model from the frames that come back.
//!
//! The client is the owner party of the paper's threat model: it holds
//! the model and the obfuscation secrets; only sealed buckets (real
//! subgraphs hidden among sentinels) ever cross the socket. By default
//! every response frame is hard-checked for byte parity against the
//! in-process optimization path — the loopback deployment must be
//! bit-identical to running the optimizer in-process, or something on
//! the wire changed semantics.
//!
//! ```text
//! proteus-client --artifact zoo.prta --addr 127.0.0.1:7070 \
//!     --token sesame --models resnet,bert --request-id 100
//! ```

use proteus::{DeobfuscationSession, Proteus};
use proteus_graph::TensorMap;
use proteus_models::{build, ModelKind};
use proteus_net::{NetClient, NetRequest};
use proteus_opt::{Optimizer, Profile};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: proteus-client --artifact PATH --addr HOST:PORT [--token SECRET]\n\
         \x20      [--models a,b,..] [--request-id N] [--profile ort|hidet] [--no-verify]\n\
         \n\
         --artifact    PRTA artifact (must match the server's fingerprint)\n\
         --token       tenant auth secret (default demo)\n\
         --models      zoo models to optimize remotely (default resnet)\n\
         --request-id  base request id; model i uses base+i (default 1)\n\
         --no-verify   skip the in-process byte-parity check\n\
         \n\
         model names: {}",
        ModelKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_kinds(list: &str) -> Result<Vec<ModelKind>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            ModelKind::ALL
                .iter()
                .copied()
                .find(|k| k.name() == name)
                .ok_or_else(|| format!("unknown model `{name}`"))
        })
        .collect()
}

fn run(args: &[String]) -> Result<(), String> {
    let artifact = flag_value(args, "--artifact").ok_or("missing --artifact PATH")?;
    let addr = flag_value(args, "--addr").ok_or("missing --addr HOST:PORT")?;
    let token = flag_value(args, "--token").unwrap_or_else(|| "demo".to_string());
    let kinds = parse_kinds(&flag_value(args, "--models").unwrap_or_else(|| "resnet".to_string()))?;
    if kinds.is_empty() {
        return Err("--models names no models".to_string());
    }
    let base_rid: u64 = flag_value(args, "--request-id")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--request-id: bad u64 `{v}`"))
        })
        .transpose()?
        .unwrap_or(1);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("ort") => Profile::OrtLike,
        Some("hidet") => Profile::HidetLike,
        Some("tvm") => Profile::TvmLike,
        Some(other) => return Err(format!("unknown profile `{other}` (ort|hidet|tvm)")),
    };

    let t = Instant::now();
    let proteus = Proteus::load_artifact(&artifact).map_err(|e| e.to_string())?;
    let fingerprint = proteus.config_fingerprint();
    eprintln!(
        "warm-started from {artifact} in {:.1} ms (config fingerprint {fingerprint:#018x})",
        t.elapsed().as_secs_f64() * 1e3
    );

    // owner side: one obfuscation session per model, frames pre-encoded
    let params = TensorMap::new();
    let mut requests = Vec::new();
    let mut secrets = Vec::new();
    let mut input_frames = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let rid = base_rid + i as u64;
        let g = build(kind);
        let mut session = proteus
            .obfuscate_session(&g, &params, rid)
            .map_err(|e| e.to_string())?;
        let mut frames = Vec::with_capacity(session.num_buckets());
        let mut wire = Vec::with_capacity(session.num_buckets());
        while let Some(frame) = session.next_frame() {
            wire.push(frame.to_mux_bytes(rid));
            frames.push(frame);
        }
        secrets.push(session.finish().map_err(|e| e.to_string())?);
        input_frames.push(frames);
        requests.push(NetRequest {
            request_id: rid,
            frames: wire,
        });
    }

    let t = Instant::now();
    let client = NetClient::connect(&addr, &token, fingerprint).map_err(|e| e.to_string())?;
    eprintln!(
        "connected to {addr} as tenant token holder ({})",
        client.server_hello().banner
    );
    let responses = client.run_requests(requests).map_err(|e| e.to_string())?;
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let optimizer = Optimizer::new(profile);
    let mut total_frames = 0usize;
    for ((response, secret), (kind, inputs)) in responses
        .iter()
        .zip(&secrets)
        .zip(kinds.iter().zip(&input_frames))
    {
        let frames = response
            .result
            .as_ref()
            .map_err(|e| format!("server failed {}: {e}", kind.name()))?;
        if verify {
            // the deployment invariant: remote wire bytes are
            // bit-identical to optimizing the same frames in-process
            let mut want: Vec<Vec<u8>> = inputs
                .iter()
                .map(|f| {
                    f.optimize(&optimizer, Some(1))
                        .to_mux_bytes(response.request_id)
                        .to_vec()
                })
                .collect();
            let mut got: Vec<Vec<u8>> = frames.iter().map(|b| b.to_vec()).collect();
            want.sort();
            got.sort();
            if want != got {
                return Err(format!(
                    "BYTE PARITY VIOLATION on {}: remote frames differ from the in-process path",
                    kind.name()
                ));
            }
        }
        let mut reassembly = DeobfuscationSession::new(secret);
        for raw in frames {
            reassembly
                .accept_mux_bytes(raw.clone())
                .map_err(|e| e.to_string())?;
        }
        let (graph, _params) = reassembly.finish().map_err(|e| e.to_string())?;
        graph.validate().map_err(|e| e.to_string())?;
        total_frames += frames.len();
        println!(
            "{:<12} rid {:>4}  {} frames  {} optimized nodes{}",
            kind.name(),
            response.request_id,
            frames.len(),
            graph.len(),
            if verify { "  parity OK" } else { "" }
        );
    }
    println!(
        "{} model(s), {total_frames} frames round-tripped in {wall_ms:.1} ms{}",
        kinds.len(),
        if verify {
            " — every byte identical to the in-process path"
        } else {
            ""
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
