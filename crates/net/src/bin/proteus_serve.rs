//! `proteus-serve` — the TCP serving daemon: warm-starts from a `PRTA`
//! artifact and serves wire-v2 obfuscation traffic on a socket.
//!
//! The daemon is the optimizer party of the paper's threat model: it
//! holds trained sentinel-generation state (so obfuscated buckets are
//! indistinguishable) but never sees a whole model — clients stream
//! sealed buckets at it and reassemble the optimized results with
//! secrets that never leave their process.
//!
//! ```text
//! proteus-serve --artifact zoo.prta --addr 127.0.0.1:7070 \
//!     --token team-a:sesame --token team-b:mellon \
//!     --replicas 2 --quota 8 --max-connections 64
//! ```
//!
//! `--oneshot` serves until the first accepted connection has come and
//! gone, then drains and exits — the deterministic mode CI's loopback
//! round trip uses (no signal choreography needed).
//!
//! `--store-dir DIR` makes the daemon crash-safe: the artifact and every
//! in-flight request are journaled into a durable store
//! ([`proteus::store`]), so a `kill -9`'d daemon restarted on the same
//! directory warm-starts from the stored artifact, re-optimizes exactly
//! the requests whose clients never got their answer (bit-identical, by
//! request-id-keyed determinism), and only then takes new traffic.

use proteus::store::Store;
use proteus::{Fleet, FleetConfig, Proteus, ServeConfig};
use proteus_net::{NetBackend, NetServer, NetServerConfig, TenantAuth};
use proteus_opt::{Optimizer, Profile};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: proteus-serve [--artifact PATH] [--store-dir DIR] [--addr HOST:PORT]\n\
         \x20      [--token TENANT:SECRET ...]\n\
         \x20      [--replicas N] [--workers N] [--window N] [--cache N]\n\
         \x20      [--max-connections N] [--quota N] [--profile ort|hidet]\n\
         \x20      [--oneshot] [--grace-secs N]\n\
         \n\
         --artifact       PRTA artifact to warm-start from (see proteus-train)\n\
         --store-dir      durable store directory: journals the artifact and every\n\
         \x20                in-flight request; a killed daemon restarted here recovers\n\
         \x20                and finishes them. With --artifact, the artifact is stored;\n\
         \x20                without it, the daemon warm-starts from the store\n\
         --addr           bind address (default 127.0.0.1:7070; port 0 picks a free port)\n\
         --token          tenant credential, repeatable (default demo:demo)\n\
         --replicas       fleet replicas; 1 = single shared runtime (default 1)\n\
         --quota          max concurrent requests per tenant; 0 = unlimited\n\
         --max-connections max open connections; 0 = unlimited\n\
         --oneshot        exit after the first connection completes\n\
         --grace-secs     shutdown drain budget (default 30)"
    );
    ExitCode::FAILURE
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects an integer, got `{v}`")),
    }
}

fn parse_tokens(args: &[String]) -> Result<Vec<TenantAuth>, String> {
    let mut auth = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--token" {
            let spec = args
                .get(i + 1)
                .ok_or("--token expects TENANT:SECRET".to_string())?;
            let (tenant, secret) = spec
                .split_once(':')
                .ok_or_else(|| format!("--token `{spec}` is not TENANT:SECRET"))?;
            if tenant.is_empty() || secret.is_empty() {
                return Err(format!("--token `{spec}` has an empty side"));
            }
            auth.push(TenantAuth::new(tenant, secret));
        }
    }
    if auth.is_empty() {
        auth.push(TenantAuth::new("demo", "demo"));
    }
    Ok(auth)
}

fn run(args: &[String]) -> Result<(), String> {
    let artifact = flag_value(args, "--artifact");
    let store_dir = flag_value(args, "--store-dir");
    if artifact.is_none() && store_dir.is_none() {
        return Err("missing --artifact PATH (or --store-dir DIR holding one)".to_string());
    }
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let auth = parse_tokens(args)?;
    let replicas = parse_usize(args, "--replicas", 1)?;
    let oneshot = args.iter().any(|a| a == "--oneshot");
    let grace = Duration::from_secs(parse_usize(args, "--grace-secs", 30)? as u64);
    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("ort") => Profile::OrtLike,
        Some("hidet") => Profile::HidetLike,
        Some("tvm") => Profile::TvmLike,
        Some(other) => return Err(format!("unknown profile `{other}` (ort|hidet|tvm)")),
    };
    let serve_config = ServeConfig {
        workers: parse_usize(args, "--workers", 0)?,
        window: parse_usize(args, "--window", 4)?,
        cache_capacity: parse_usize(args, "--cache", 4096)?,
        ..Default::default()
    };

    // a corrupt or tampered store is a hard startup error (typed, never
    // a silent partial recovery) — the operator must intervene
    let store = match &store_dir {
        Some(dir) => {
            let (store, report) = Store::open_or_create(dir).map_err(|e| e.to_string())?;
            eprintln!("store {dir}: {report}");
            Some(Arc::new(store))
        }
        None => None,
    };

    let t = Instant::now();
    let proteus = match (&artifact, &store) {
        (Some(path), _) => Proteus::load_artifact(path).map_err(|e| e.to_string())?,
        (None, Some(store)) => Proteus::load_artifact_store(store).map_err(|e| e.to_string())?,
        (None, None) => unreachable!("rejected above"),
    };
    if let (Some(_), Some(store)) = (&artifact, &store) {
        // make the artifact durable so later restarts need no --artifact
        proteus
            .save_artifact_store(store)
            .map_err(|e| e.to_string())?;
    }
    let fingerprint = proteus.config_fingerprint();
    eprintln!(
        "warm-started from {} in {:.1} ms (config fingerprint {fingerprint:#018x})",
        artifact.as_deref().unwrap_or("store"),
        t.elapsed().as_secs_f64() * 1e3
    );

    let optimizer = Optimizer::new(profile);
    let backend = if replicas <= 1 {
        NetBackend::Runtime(
            proteus::ServeRuntime::new(optimizer, serve_config).map_err(|e| e.to_string())?,
        )
    } else {
        NetBackend::Fleet(
            Fleet::new(
                optimizer,
                FleetConfig {
                    replicas,
                    serve: serve_config,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?,
        )
    };

    // before taking traffic: finish every lane the previous incarnation
    // was killed in the middle of. Re-optimizing is deterministic
    // (request-id-keyed), so a client retrying its request gets
    // bit-identical frames — now served from the warmed cache.
    if let Some(store) = &store {
        for (rid, frames) in store.pending_lanes() {
            let replay = || -> Result<usize, proteus::ProteusError> {
                let handle = backend.lane(rid)?;
                for frame in &frames {
                    handle.submit_bytes(frame.clone())?;
                }
                let mut delivered = 0;
                for _ in &frames {
                    handle.recv_bytes()?;
                    delivered += 1;
                }
                Ok(delivered)
            };
            match replay() {
                Ok(n) => eprintln!("recovered lane {rid:#x}: re-optimized {n} frame(s)"),
                // a lane that fails on replay failed identically before
                // the kill (duplicates, corrupt frames); it fails closed
                // here exactly like the live path
                Err(e) => eprintln!("recovered lane {rid:#x}: failed closed ({e})"),
            }
            store.finish_lane(rid).map_err(|e| e.to_string())?;
        }
    }

    let tenants = auth.len();
    let server = NetServer::bind(
        backend,
        fingerprint,
        NetServerConfig {
            addr,
            auth,
            max_connections: parse_usize(args, "--max-connections", 0)?,
            tenant_quota: parse_usize(args, "--quota", 0)?,
            banner: format!("proteus-serve/{}", env!("CARGO_PKG_VERSION")),
            store: store.clone(),
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} ({tenants} tenant(s){})",
        server.local_addr(),
        if oneshot { ", oneshot" } else { "" }
    );

    if oneshot {
        // serve until at least one connection has been accepted AND all
        // connections have gone away again, then drain
        loop {
            let stats = server.stats();
            if stats.connections_accepted > 0 && stats.active_connections == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.shutdown(grace);
        eprintln!(
            "oneshot complete: {} request(s) completed, {} failed, {} handshake(s) rejected",
            stats.requests_completed, stats.requests_failed, stats.handshakes_rejected
        );
        return Ok(());
    }

    // long-running mode: serve until the process is killed. Park the
    // main thread; connection threads do all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
