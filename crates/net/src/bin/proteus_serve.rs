//! `proteus-serve` — the TCP serving daemon: warm-starts from a `PRTA`
//! artifact and serves wire-v2 obfuscation traffic on a socket.
//!
//! The daemon is the optimizer party of the paper's threat model: it
//! holds trained sentinel-generation state (so obfuscated buckets are
//! indistinguishable) but never sees a whole model — clients stream
//! sealed buckets at it and reassemble the optimized results with
//! secrets that never leave their process.
//!
//! ```text
//! proteus-serve --artifact zoo.prta --addr 127.0.0.1:7070 \
//!     --token team-a:sesame --token team-b:mellon \
//!     --replicas 2 --quota 8 --max-connections 64
//! ```
//!
//! `--oneshot` serves until the first accepted connection has come and
//! gone, then drains and exits — the deterministic mode CI's loopback
//! round trip uses (no signal choreography needed).

use proteus::{Fleet, FleetConfig, Proteus, ServeConfig};
use proteus_net::{NetBackend, NetServer, NetServerConfig, TenantAuth};
use proteus_opt::{Optimizer, Profile};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: proteus-serve --artifact PATH [--addr HOST:PORT] [--token TENANT:SECRET ...]\n\
         \x20      [--replicas N] [--workers N] [--window N] [--cache N]\n\
         \x20      [--max-connections N] [--quota N] [--profile ort|hidet]\n\
         \x20      [--oneshot] [--grace-secs N]\n\
         \n\
         --artifact       PRTA artifact to warm-start from (see proteus-train)\n\
         --addr           bind address (default 127.0.0.1:7070; port 0 picks a free port)\n\
         --token          tenant credential, repeatable (default demo:demo)\n\
         --replicas       fleet replicas; 1 = single shared runtime (default 1)\n\
         --quota          max concurrent requests per tenant; 0 = unlimited\n\
         --max-connections max open connections; 0 = unlimited\n\
         --oneshot        exit after the first connection completes\n\
         --grace-secs     shutdown drain budget (default 30)"
    );
    ExitCode::FAILURE
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects an integer, got `{v}`")),
    }
}

fn parse_tokens(args: &[String]) -> Result<Vec<TenantAuth>, String> {
    let mut auth = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--token" {
            let spec = args
                .get(i + 1)
                .ok_or("--token expects TENANT:SECRET".to_string())?;
            let (tenant, secret) = spec
                .split_once(':')
                .ok_or_else(|| format!("--token `{spec}` is not TENANT:SECRET"))?;
            if tenant.is_empty() || secret.is_empty() {
                return Err(format!("--token `{spec}` has an empty side"));
            }
            auth.push(TenantAuth::new(tenant, secret));
        }
    }
    if auth.is_empty() {
        auth.push(TenantAuth::new("demo", "demo"));
    }
    Ok(auth)
}

fn run(args: &[String]) -> Result<(), String> {
    let artifact = flag_value(args, "--artifact").ok_or("missing --artifact PATH")?;
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let auth = parse_tokens(args)?;
    let replicas = parse_usize(args, "--replicas", 1)?;
    let oneshot = args.iter().any(|a| a == "--oneshot");
    let grace = Duration::from_secs(parse_usize(args, "--grace-secs", 30)? as u64);
    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("ort") => Profile::OrtLike,
        Some("hidet") => Profile::HidetLike,
        Some(other) => return Err(format!("unknown profile `{other}` (ort|hidet)")),
    };
    let serve_config = ServeConfig {
        workers: parse_usize(args, "--workers", 0)?,
        window: parse_usize(args, "--window", 4)?,
        cache_capacity: parse_usize(args, "--cache", 4096)?,
        ..Default::default()
    };

    let t = Instant::now();
    let proteus = Proteus::load_artifact(&artifact).map_err(|e| e.to_string())?;
    let fingerprint = proteus.config_fingerprint();
    eprintln!(
        "warm-started from {artifact} in {:.1} ms (config fingerprint {fingerprint:#018x})",
        t.elapsed().as_secs_f64() * 1e3
    );

    let optimizer = Optimizer::new(profile);
    let backend = if replicas <= 1 {
        NetBackend::Runtime(
            proteus::ServeRuntime::new(optimizer, serve_config).map_err(|e| e.to_string())?,
        )
    } else {
        NetBackend::Fleet(
            Fleet::new(
                optimizer,
                FleetConfig {
                    replicas,
                    serve: serve_config,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?,
        )
    };

    let tenants = auth.len();
    let server = NetServer::bind(
        backend,
        fingerprint,
        NetServerConfig {
            addr,
            auth,
            max_connections: parse_usize(args, "--max-connections", 0)?,
            tenant_quota: parse_usize(args, "--quota", 0)?,
            banner: format!("proteus-serve/{}", env!("CARGO_PKG_VERSION")),
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} ({tenants} tenant(s){})",
        server.local_addr(),
        if oneshot { ", oneshot" } else { "" }
    );

    if oneshot {
        // serve until at least one connection has been accepted AND all
        // connections have gone away again, then drain
        loop {
            let stats = server.stats();
            if stats.connections_accepted > 0 && stats.active_connections == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.shutdown(grace);
        eprintln!(
            "oneshot complete: {} request(s) completed, {} failed, {} handshake(s) rejected",
            stats.requests_completed, stats.requests_failed, stats.handshakes_rejected
        );
        return Ok(());
    }

    // long-running mode: serve until the process is killed. Park the
    // main thread; connection threads do all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
