//! Tensor shapes and static shape inference.
//!
//! Shape inference walks the graph in topological order and computes the
//! output shape of every node, enforcing the same consistency rules the
//! paper's SMT operator-population step encodes as constraints (channel
//! agreement, broadcastability, pooling divisibility, …).

use crate::graph::{Graph, NodeId};
use crate::op::Op;
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A tensor shape (row-major dimensions). Rank-0 denotes a scalar.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimensions.
    pub fn new(dims: Vec<usize>) -> Shape {
        Shape(dims)
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// NCHW accessors; return `None` when the rank is not 4.
    pub fn nchw(&self) -> Option<(usize, usize, usize, usize)> {
        match self.0.as_slice() {
            &[n, c, h, w] => Some((n, c, h, w)),
            _ => None,
        }
    }

    /// Numpy-style broadcast of two shapes.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let (a, b) = (&self.0, &other.0);
        let rank = a.len().max(b.len());
        let mut out = vec![0; rank];
        for i in 0..rank {
            let da = if i < rank - a.len() {
                1
            } else {
                a[i - (rank - a.len())]
            };
            let db = if i < rank - b.len() {
                1
            } else {
                b[i - (rank - b.len())]
            };
            out[i] = if da == db {
                da
            } else if da == 1 {
                db
            } else if db == 1 {
                da
            } else {
                return None;
            };
        }
        Some(Shape(out))
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Shape {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Output spatial size of a conv/pool window.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

fn err(node: &str, detail: impl Into<String>) -> GraphError {
    GraphError::ShapeMismatch {
        node: node.to_string(),
        detail: detail.into(),
    }
}

/// Infers the output shape of a single operator given its input shapes.
///
/// # Errors
/// Returns [`GraphError::ShapeMismatch`] when the inputs are inconsistent
/// with the operator's attributes.
pub fn infer_op(op: &Op, name: &str, ins: &[&Shape]) -> Result<Shape> {
    let one = |idx: usize| -> &Shape { ins[idx] };
    match op {
        Op::Input { shape } | Op::Constant { shape } => Ok(shape.clone()),
        Op::Conv(c) => {
            let (n, ch, h, w) = one(0)
                .nchw()
                .ok_or_else(|| err(name, format!("conv input must be NCHW, got {}", one(0))))?;
            if ch != c.in_channels {
                return Err(err(
                    name,
                    format!("conv expects {} input channels, got {ch}", c.in_channels),
                ));
            }
            if c.groups == 0 || c.in_channels % c.groups != 0 || c.out_channels % c.groups != 0 {
                return Err(err(name, format!("bad group count {}", c.groups)));
            }
            let oh = conv_out_dim(h, c.kernel, c.stride, c.padding)
                .ok_or_else(|| err(name, format!("kernel {} too large for h={h}", c.kernel)))?;
            let ow = conv_out_dim(w, c.kernel, c.stride, c.padding)
                .ok_or_else(|| err(name, format!("kernel {} too large for w={w}", c.kernel)))?;
            let out = Shape::from([n, c.out_channels, oh, ow]);
            if c.fused_add {
                let other = one(1);
                if other != &out {
                    return Err(err(
                        name,
                        format!("fused add operand {other} does not match conv output {out}"),
                    ));
                }
            }
            Ok(out)
        }
        Op::Gemm(g) => {
            let dims = one(0).dims();
            let last = *dims
                .last()
                .ok_or_else(|| err(name, "gemm input is scalar"))?;
            if last != g.in_features {
                return Err(err(
                    name,
                    format!("gemm expects {} input features, got {last}", g.in_features),
                ));
            }
            let mut out = dims.to_vec();
            *out.last_mut().expect("nonempty") = g.out_features;
            Ok(Shape(out))
        }
        Op::MatMul | Op::MatMulT => {
            let (a, b) = (one(0).dims(), one(1).dims());
            if a.len() < 2 || b.len() < 2 {
                return Err(err(name, "matmul operands must have rank >= 2"));
            }
            let (m, k1) = (a[a.len() - 2], a[a.len() - 1]);
            let (k2, n) = match op {
                Op::MatMul => (b[b.len() - 2], b[b.len() - 1]),
                _ => (b[b.len() - 1], b[b.len() - 2]),
            };
            if k1 != k2 {
                return Err(err(name, format!("matmul inner dims {k1} vs {k2}")));
            }
            let batch_a = Shape(a[..a.len() - 2].to_vec());
            let batch_b = Shape(b[..b.len() - 2].to_vec());
            let batch = batch_a
                .broadcast(&batch_b)
                .ok_or_else(|| err(name, "matmul batch dims not broadcastable"))?;
            let mut out = batch.0;
            out.push(m);
            out.push(n);
            Ok(Shape(out))
        }
        Op::BatchNorm(b) => {
            let s = one(0);
            let (_, ch, _, _) = s
                .nchw()
                .ok_or_else(|| err(name, format!("batchnorm input must be NCHW, got {s}")))?;
            if ch != b.channels {
                return Err(err(
                    name,
                    format!("batchnorm over {} channels, input has {ch}", b.channels),
                ));
            }
            Ok(s.clone())
        }
        Op::LayerNorm(l) => {
            let s = one(0);
            let last = *s
                .dims()
                .last()
                .ok_or_else(|| err(name, "layernorm on scalar"))?;
            if last != l.dim {
                return Err(err(
                    name,
                    format!("layernorm dim {} vs input {last}", l.dim),
                ));
            }
            Ok(s.clone())
        }
        Op::SkipLayerNorm(l) => {
            let s = one(0)
                .broadcast(one(1))
                .ok_or_else(|| err(name, "skip-layernorm operands not broadcastable"))?;
            let last = *s
                .dims()
                .last()
                .ok_or_else(|| err(name, "layernorm on scalar"))?;
            if last != l.dim {
                return Err(err(
                    name,
                    format!("layernorm dim {} vs input {last}", l.dim),
                ));
            }
            Ok(s)
        }
        Op::Activation(_) | Op::Identity | Op::Dropout { .. } => Ok(one(0).clone()),
        Op::Softmax { axis } => {
            let s = one(0);
            let rank = s.rank() as isize;
            let ax = if *axis < 0 { axis + rank } else { *axis };
            if ax < 0 || ax >= rank {
                return Err(err(
                    name,
                    format!("softmax axis {axis} out of range for {s}"),
                ));
            }
            Ok(s.clone())
        }
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::AddAct(_) => one(0)
            .broadcast(one(1))
            .ok_or_else(|| err(name, format!("cannot broadcast {} with {}", one(0), one(1)))),
        Op::MaxPool(p) | Op::AveragePool(p) => {
            let (n, c, h, w) = one(0)
                .nchw()
                .ok_or_else(|| err(name, format!("pool input must be NCHW, got {}", one(0))))?;
            let oh = conv_out_dim(h, p.kernel, p.stride, p.padding).ok_or_else(|| {
                err(
                    name,
                    format!("pool kernel {} too large for h={h}", p.kernel),
                )
            })?;
            let ow = conv_out_dim(w, p.kernel, p.stride, p.padding).ok_or_else(|| {
                err(
                    name,
                    format!("pool kernel {} too large for w={w}", p.kernel),
                )
            })?;
            Ok(Shape::from([n, c, oh, ow]))
        }
        Op::GlobalAveragePool => {
            let (n, c, _, _) = one(0)
                .nchw()
                .ok_or_else(|| err(name, format!("GAP input must be NCHW, got {}", one(0))))?;
            Ok(Shape::from([n, c, 1, 1]))
        }
        Op::Concat { axis } => {
            let first = one(0);
            if *axis >= first.rank() {
                return Err(err(name, format!("concat axis {axis} out of range")));
            }
            let mut total = 0;
            for s in ins {
                if s.rank() != first.rank() {
                    return Err(err(name, "concat rank mismatch"));
                }
                for (d, (&a, &b)) in s.dims().iter().zip(first.dims()).enumerate() {
                    if d != *axis && a != b {
                        return Err(err(name, format!("concat dim {d} mismatch: {a} vs {b}")));
                    }
                }
                total += s.dims()[*axis];
            }
            let mut out = first.dims().to_vec();
            out[*axis] = total;
            Ok(Shape(out))
        }
        Op::Flatten => {
            let d = one(0).dims();
            if d.is_empty() {
                return Err(err(name, "flatten on scalar"));
            }
            Ok(Shape::from([d[0], d[1..].iter().product::<usize>()]))
        }
        Op::Reshape { shape } => {
            if shape.numel() != one(0).numel() {
                return Err(err(
                    name,
                    format!("reshape {} -> {} changes element count", one(0), shape),
                ));
            }
            Ok(shape.clone())
        }
        Op::Transpose { perm } => {
            let d = one(0).dims();
            if perm.len() != d.len() {
                return Err(err(name, "transpose perm rank mismatch"));
            }
            let mut seen = vec![false; d.len()];
            for &p in perm {
                if p >= d.len() || seen[p] {
                    return Err(err(name, "transpose perm is not a permutation"));
                }
                seen[p] = true;
            }
            Ok(Shape(perm.iter().map(|&p| d[p]).collect()))
        }
        Op::ReduceMean { axes, keepdims } => {
            let d = one(0).dims();
            for &a in axes {
                if a >= d.len() {
                    return Err(err(name, format!("reduce axis {a} out of range")));
                }
            }
            let mut out = Vec::new();
            for (i, &dim) in d.iter().enumerate() {
                if axes.contains(&i) {
                    if *keepdims {
                        out.push(1);
                    }
                } else {
                    out.push(dim);
                }
            }
            Ok(Shape(out))
        }
        Op::Gather { dim, .. } => {
            let mut out = one(0).dims().to_vec();
            out.push(*dim);
            Ok(Shape(out))
        }
    }
}

/// Infers shapes for every live node of `graph`.
///
/// # Errors
/// Propagates topology errors from [`Graph::topo_order`] and per-node
/// [`GraphError::ShapeMismatch`] failures.
pub fn infer_shapes(graph: &Graph) -> Result<HashMap<NodeId, Shape>> {
    let order = graph.topo_order()?;
    let mut shapes: HashMap<NodeId, Shape> = HashMap::with_capacity(order.len());
    for id in order {
        let node = graph.node(id).expect("topo order yields live nodes");
        let ins: Vec<&Shape> = node.inputs.iter().map(|i| &shapes[i]).collect();
        let shape = infer_op(&node.op, &node.name, &ins)?;
        shapes.insert(id, shape);
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, PoolAttrs};

    #[test]
    fn broadcast_rules() {
        let a = Shape::from([4, 1, 3]);
        let b = Shape::from([2, 3]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 2, 3]);
        assert_eq!(
            Shape::from([5])
                .broadcast(&Shape::from([5]))
                .unwrap()
                .dims(),
            &[5]
        );
        assert!(Shape::from([4]).broadcast(&Shape::from([3])).is_none());
        // scalar broadcasts with anything
        assert_eq!(
            Shape::new(vec![])
                .broadcast(&Shape::from([2, 2]))
                .unwrap()
                .dims(),
            &[2, 2]
        );
    }

    #[test]
    fn conv_output_shape() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 224, 224]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 64, 7).stride(2).padding(3)), [x]);
        g.set_outputs([c]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&c].dims(), &[1, 64, 112, 112]);
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(16, 8, 3)), [x]);
        g.set_outputs([c]);
        assert!(matches!(
            infer_shapes(&g),
            Err(GraphError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn grouped_conv_shapes() {
        let mut g = Graph::new("t");
        let x = g.input([2, 32, 16, 16]);
        let c = g.add(Op::Conv(ConvAttrs::depthwise(32, 3).padding(1)), [x]);
        g.set_outputs([c]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&c].dims(), &[2, 32, 16, 16]);
    }

    #[test]
    fn pooling_and_gap() {
        let mut g = Graph::new("t");
        let x = g.input([1, 8, 32, 32]);
        let mp = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [x]);
        let gap = g.add(Op::GlobalAveragePool, [mp]);
        g.set_outputs([gap]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&mp].dims(), &[1, 8, 16, 16]);
        assert_eq!(shapes[&gap].dims(), &[1, 8, 1, 1]);
    }

    #[test]
    fn gemm_and_flatten() {
        let mut g = Graph::new("t");
        let x = g.input([4, 16, 2, 2]);
        let f = g.add(Op::Flatten, [x]);
        let fc = g.add(Op::Gemm(GemmAttrs::new(64, 10)), [f]);
        g.set_outputs([fc]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&f].dims(), &[4, 64]);
        assert_eq!(shapes[&fc].dims(), &[4, 10]);
    }

    #[test]
    fn matmul_batched_broadcast() {
        let mut g = Graph::new("t");
        let a = g.input([2, 8, 16, 32]);
        let b = g.input([2, 8, 32, 16]);
        let m = g.add(Op::MatMul, [a, b]);
        g.set_outputs([m]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&m].dims(), &[2, 8, 16, 16]);
    }

    #[test]
    fn concat_shapes() {
        let mut g = Graph::new("t");
        let a = g.input([1, 16, 8, 8]);
        let b = g.input([1, 32, 8, 8]);
        let c = g.add(Op::Concat { axis: 1 }, [a, b]);
        g.set_outputs([c]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&c].dims(), &[1, 48, 8, 8]);
    }

    #[test]
    fn transformer_block_shapes() {
        // Gather -> LayerNorm -> MatMul(QK^T via transpose) -> Softmax
        let mut g = Graph::new("t");
        let ids = g.input([1, 128]);
        let emb = g.add(
            Op::Gather {
                vocab: 1000,
                dim: 64,
            },
            [ids],
        );
        let ln = g.add(Op::LayerNorm(crate::op::LayerNormAttrs { dim: 64 }), [emb]);
        let q = g.add(Op::Gemm(GemmAttrs::new(64, 64)), [ln]);
        let k = g.add(Op::Gemm(GemmAttrs::new(64, 64)), [ln]);
        let kt = g.add(
            Op::Transpose {
                perm: vec![0, 2, 1],
            },
            [k],
        );
        let scores = g.add(Op::MatMul, [q, kt]);
        let probs = g.add(Op::Softmax { axis: -1 }, [scores]);
        g.set_outputs([probs]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&emb].dims(), &[1, 128, 64]);
        assert_eq!(shapes[&scores].dims(), &[1, 128, 128]);
        assert_eq!(shapes[&probs].dims(), &[1, 128, 128]);
    }

    #[test]
    fn reshape_must_preserve_numel() {
        let mut g = Graph::new("t");
        let x = g.input([2, 6]);
        let r = g.add(
            Op::Reshape {
                shape: Shape::from([3, 4]),
            },
            [x],
        );
        g.set_outputs([r]);
        assert!(infer_shapes(&g).is_ok());

        let mut g2 = Graph::new("t2");
        let x2 = g2.input([2, 6]);
        let r2 = g2.add(
            Op::Reshape {
                shape: Shape::from([5, 2]),
            },
            [x2],
        );
        g2.set_outputs([r2]);
        assert!(infer_shapes(&g2).is_err());
    }

    #[test]
    fn reduce_mean_shapes() {
        let mut g = Graph::new("t");
        let x = g.input([2, 16, 4, 4]);
        let r = g.add(
            Op::ReduceMean {
                axes: vec![2, 3],
                keepdims: true,
            },
            [x],
        );
        let r2 = g.add(
            Op::ReduceMean {
                axes: vec![2, 3],
                keepdims: false,
            },
            [x],
        );
        g.set_outputs([r, r2]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&r].dims(), &[2, 16, 1, 1]);
        assert_eq!(shapes[&r2].dims(), &[2, 16]);
    }

    #[test]
    fn batchnorm_channel_check() {
        let mut g = Graph::new("t");
        let x = g.input([1, 8, 4, 4]);
        let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [x]);
        g.set_outputs([bn]);
        assert!(infer_shapes(&g).is_ok());

        let mut g2 = Graph::new("t");
        let x2 = g2.input([1, 8, 4, 4]);
        let bn2 = g2.add(Op::BatchNorm(BatchNormAttrs { channels: 16 }), [x2]);
        g2.set_outputs([bn2]);
        assert!(infer_shapes(&g2).is_err());
    }

    #[test]
    fn fused_conv_add_shape_check() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4, 8, 8]);
        let skip = g.input([1, 8, 8, 8]);
        let mut attrs = ConvAttrs::new(4, 8, 3).padding(1);
        attrs.fused_add = true;
        attrs.fused_act = Some(Activation::Relu);
        let c = g.add(Op::Conv(attrs), [x, skip]);
        g.set_outputs([c]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&c].dims(), &[1, 8, 8, 8]);
    }
}
