//! Cached graph analyses for the rewrite engine.
//!
//! The optimizer party runs the same graph-level passes over `(k+1)×n`
//! subgraphs per obfuscated model, so recomputing successors, use counts,
//! topological order, and shapes from scratch inside every rule is the
//! system's hottest waste. This module computes them once per graph
//! *generation* (see [`Graph::generation`]) into dense, arena-indexed
//! storage:
//!
//! - [`NodeMap<T>`] — a `Vec` keyed by [`NodeId`] arena index, replacing the
//!   `HashMap<NodeId, _>` allocations of the naive helpers;
//! - [`GraphAnalysis`] — successors, use counts, topological order, and an
//!   opcode → nodes index computed in one O(V+E) pass, plus lazily-computed
//!   shape inference, all stamped with the generation they were computed at.
//!
//! A `GraphAnalysis` is a *snapshot*: rules may keep reading it while they
//! mutate the graph (the sweep semantics the rewrite rules are written
//! against), but reusing a snapshot for a *new* sweep after mutations is a
//! bug. [`GraphAnalysis::assert_fresh`] panics on that in debug builds.

use crate::graph::{Graph, NodeId};
use crate::op::OpCode;
use crate::shape::{infer_op, Shape};
use crate::{GraphError, Result};
use std::cell::OnceCell;
use std::ops::{Index, IndexMut};

/// A dense secondary map over a graph's node arena: `T` per arena slot,
/// indexed by [`NodeId`]. Tombstoned and never-written slots hold
/// `T::default()`.
///
/// Indexing with an id minted *after* the map was created panics (the map
/// is sized to the arena it was built against).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMap<T> {
    data: Vec<T>,
}

impl<T: Default + Clone> NodeMap<T> {
    /// A map with `arena_len` default-initialized slots.
    pub fn new(arena_len: usize) -> NodeMap<T> {
        NodeMap {
            data: vec![T::default(); arena_len],
        }
    }

    /// A map sized for `graph`'s arena.
    pub fn for_graph(graph: &Graph) -> NodeMap<T> {
        NodeMap::new(graph.arena_len())
    }
}

impl<T> NodeMap<T> {
    /// Number of slots (the arena length at construction).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Fallible slot access (`None` for out-of-range ids).
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.data.get(id.index())
    }

    /// Fallible mutable slot access.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.data.get_mut(id.index())
    }

    /// Iterates `(id, value)` over all slots in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (NodeId::from_index(i), v))
    }
}

impl<T> Index<NodeId> for NodeMap<T> {
    type Output = T;
    fn index(&self, id: NodeId) -> &T {
        &self.data[id.index()]
    }
}

impl<T> IndexMut<NodeId> for NodeMap<T> {
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.data[id.index()]
    }
}

/// All standard graph analyses, computed together and generation-stamped.
///
/// Successor lists are stored in CSR form (one flat edge array plus
/// offsets) rather than a `Vec<Vec<_>>` — the analysis is recomputed once
/// per graph generation on the optimizer's hottest path, so per-node heap
/// allocations matter.
#[derive(Debug)]
pub struct GraphAnalysis {
    generation: u64,
    arena_len: usize,
    use_counts: NodeMap<usize>,
    /// CSR offsets into `succ_edges`; slot `i` covers
    /// `succ_edges[succ_offsets[i]..succ_offsets[i + 1]]`.
    succ_offsets: Vec<u32>,
    succ_edges: Vec<NodeId>,
    topo: Result<Vec<NodeId>>,
    by_opcode: Vec<Vec<NodeId>>,
    /// Lazily-computed shape table; inner `None` means inference failed
    /// (mirrors `infer_shapes(g).ok()`). Lazy because only one rule needs
    /// shapes — eagerly inferring them would bloat every other sweep.
    shapes: OnceCell<Option<NodeMap<Shape>>>,
}

impl GraphAnalysis {
    /// Computes successors, use counts (graph outputs count as a use, as in
    /// [`Graph::use_counts`]), topological order, and the opcode index in
    /// one O(V+E) pass over `graph`.
    ///
    /// The topological order is bit-compatible with [`Graph::topo_order`]
    /// (same tie-breaking), so rules that switched to the cached order
    /// rewrite in exactly the same sequence as before.
    pub fn compute(graph: &Graph) -> GraphAnalysis {
        let arena_len = graph.arena_len();
        let mut use_counts: NodeMap<usize> = NodeMap::new(arena_len);
        let mut indegree: NodeMap<usize> = NodeMap::new(arena_len);
        let mut consumer_counts: Vec<u32> = vec![0; arena_len];
        let mut by_opcode: Vec<Vec<NodeId>> = vec![Vec::new(); OpCode::COUNT];
        let mut live = 0usize;
        let mut edges = 0usize;
        let mut dangling: Option<GraphError> = None;
        for (id, node) in graph.iter() {
            live += 1;
            by_opcode[node.op.opcode().index()].push(id);
            indegree[id] = node.inputs.len();
            edges += node.inputs.len();
            for &inp in &node.inputs {
                if !graph.contains(inp) && dangling.is_none() {
                    dangling = Some(GraphError::DanglingInput {
                        node: node.name.clone(),
                        input: inp,
                    });
                }
                if let Some(c) = use_counts.get_mut(inp) {
                    *c += 1;
                }
                if let Some(c) = consumer_counts.get_mut(inp.index()) {
                    *c += 1;
                }
            }
        }
        for &out in graph.outputs() {
            if let Some(c) = use_counts.get_mut(out) {
                *c += 1;
            }
        }
        // CSR successors: prefix-sum offsets, then a second edge sweep in
        // arena order (which keeps each successor list in consumer arena
        // order — the ordering `Graph::successors` produces).
        let mut succ_offsets: Vec<u32> = Vec::with_capacity(arena_len + 1);
        let mut acc = 0u32;
        succ_offsets.push(0);
        for &c in &consumer_counts {
            acc += c;
            succ_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = succ_offsets[..arena_len].to_vec();
        let mut succ_edges: Vec<NodeId> = vec![NodeId::from_index(0); edges];
        for (id, node) in graph.iter() {
            for &inp in &node.inputs {
                if let Some(c) = cursor.get_mut(inp.index()) {
                    succ_edges[*c as usize] = id;
                    *c += 1;
                }
            }
        }
        let succ_of = |id: NodeId| -> &[NodeId] {
            &succ_edges[succ_offsets[id.index()] as usize..succ_offsets[id.index() + 1] as usize]
        };
        let topo = match dangling {
            Some(e) => Err(e),
            None => {
                // Kahn's algorithm with the exact tie-breaking of
                // `Graph::topo_order`: seed with zero-indegree ids ascending,
                // pop from the back (largest id first).
                let mut ready: Vec<NodeId> = graph
                    .iter()
                    .filter(|&(id, _)| indegree[id] == 0)
                    .map(|(id, _)| id)
                    .collect();
                let mut order: Vec<NodeId> = Vec::with_capacity(live);
                while let Some(id) = ready.pop() {
                    order.push(id);
                    for &u in succ_of(id) {
                        indegree[u] -= 1;
                        if indegree[u] == 0 {
                            ready.push(u);
                        }
                    }
                }
                if order.len() == live {
                    Ok(order)
                } else {
                    Err(GraphError::Cyclic)
                }
            }
        };
        GraphAnalysis {
            generation: graph.generation(),
            arena_len,
            use_counts,
            succ_offsets,
            succ_edges,
            topo,
            by_opcode,
            shapes: OnceCell::new(),
        }
    }

    /// The graph generation this analysis was computed at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when this analysis still matches `graph`'s current generation.
    pub fn is_fresh(&self, graph: &Graph) -> bool {
        self.generation == graph.generation() && self.arena_len == graph.arena_len()
    }

    /// Panics in debug builds when this analysis is stale for `graph` — the
    /// guard that catches engines (or rules) reusing a snapshot across
    /// mutations without recomputing. Release builds skip the check.
    pub fn assert_fresh(&self, graph: &Graph) {
        debug_assert!(
            self.is_fresh(graph),
            "stale GraphAnalysis: computed at generation {} but graph `{}` is at {} \
             (a rule or engine mutated the graph without invalidating its analysis)",
            self.generation,
            graph.name(),
            graph.generation(),
        );
    }

    /// Consumers of `id` (the inverse edge list), in arena order of the
    /// consumer — identical contents to [`Graph::successors`]. Empty for
    /// ids outside the snapshot arena.
    pub fn succ_of(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        if i + 1 >= self.succ_offsets.len() {
            return &[];
        }
        &self.succ_edges[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// Fan-out per node, counting graph outputs as consumers — identical to
    /// [`Graph::use_counts`].
    pub fn use_counts(&self) -> &NodeMap<usize> {
        &self.use_counts
    }

    /// Number of consumers of `id` (0 for ids outside the snapshot arena).
    pub fn use_count(&self, id: NodeId) -> usize {
        self.use_counts.get(id).copied().unwrap_or(0)
    }

    /// The topological order (inputs before users), or the error
    /// [`Graph::topo_order`] would report.
    pub fn topo(&self) -> Result<&[NodeId]> {
        match &self.topo {
            Ok(order) => Ok(order),
            Err(e) => Err(e.clone()),
        }
    }

    /// Live nodes of one opcode, in arena order.
    pub fn of_opcode(&self, code: OpCode) -> &[NodeId] {
        &self.by_opcode[code.index()]
    }

    /// Live nodes whose opcode is in `codes`, merged into arena order —
    /// the per-rule worklist seed.
    pub fn nodes_with(&self, codes: &[OpCode]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for &c in codes {
            out.extend_from_slice(self.of_opcode(c));
        }
        out.sort_unstable();
        out
    }

    /// Inferred shape per node, or `None` when inference fails — the cached
    /// equivalent of `infer_shapes(graph).ok()`. Computed on first access
    /// and memoized. `graph` must be the graph this analysis was computed
    /// from, at the same generation (checked in debug builds).
    pub fn shapes(&self, graph: &Graph) -> Option<&NodeMap<Shape>> {
        self.assert_fresh(graph);
        self.shapes
            .get_or_init(|| {
                let order = self.topo.as_ref().ok()?;
                let mut table: NodeMap<Shape> = NodeMap::new(self.arena_len);
                for &id in order {
                    let node = graph.node(id)?;
                    let ins: Vec<&Shape> = node.inputs.iter().map(|&i| &table[i]).collect();
                    match infer_op(&node.op, &node.name, &ins) {
                        Ok(s) => table[id] = s,
                        Err(_) => return None,
                    }
                }
                Some(table)
            })
            .as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, Op};
    use std::collections::HashMap;

    fn diamond() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new("diamond");
        let x = g.input([1, 8]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Activation(Activation::Sigmoid), [x]);
        let a = g.add(Op::Add, [r, s]);
        g.set_outputs([a]);
        (g, [x, r, s, a])
    }

    #[test]
    fn matches_naive_helpers() {
        let (g, _) = diamond();
        let a = GraphAnalysis::compute(&g);
        let naive_succ = g.successors();
        let naive_uses = g.use_counts();
        for (id, _) in g.iter() {
            assert_eq!(a.succ_of(id), naive_succ[&id].as_slice(), "succ of {id}");
            assert_eq!(a.use_count(id), naive_uses[&id], "uses of {id}");
        }
        assert!(a.succ_of(NodeId::from_index(999)).is_empty());
        assert_eq!(a.topo().unwrap(), g.topo_order().unwrap().as_slice());
    }

    #[test]
    fn topo_order_bit_compatible_on_branchy_graph() {
        // A wider graph exercises the tie-breaking path.
        let mut g = Graph::new("wide");
        let x = g.input([1, 4]);
        let y = g.input([1, 4]);
        let mut layer: Vec<NodeId> = vec![x, y];
        for _ in 0..4 {
            let mut next = Vec::new();
            for i in 0..layer.len() {
                let a = layer[i];
                let b = layer[(i + 1) % layer.len()];
                next.push(g.add(Op::Add, [a, b]));
                next.push(g.add(Op::Activation(Activation::Relu), [a]));
            }
            layer = next;
        }
        g.set_outputs(layer.iter().copied().take(3).collect::<Vec<_>>());
        let a = GraphAnalysis::compute(&g);
        assert_eq!(a.topo().unwrap(), g.topo_order().unwrap().as_slice());
    }

    #[test]
    fn shapes_match_infer_shapes() {
        let (g, _) = diamond();
        let a = GraphAnalysis::compute(&g);
        let naive = crate::shape::infer_shapes(&g).unwrap();
        let table = a.shapes(&g).expect("diamond infers");
        for (id, shape) in &naive {
            assert_eq!(&table[*id], shape);
        }
    }

    #[test]
    fn shape_failure_memoized_as_none() {
        let mut g = Graph::new("bad");
        let x = g.input([1, 4]);
        let y = g.input([1, 5]);
        let a = g.add(Op::Add, [x, y]); // 4 vs 5: not broadcastable
        g.set_outputs([a]);
        let an = GraphAnalysis::compute(&g);
        assert!(an.shapes(&g).is_none());
        assert!(an.shapes(&g).is_none()); // second hit uses the memo
    }

    #[test]
    fn opcode_index_covers_live_nodes() {
        let (g, [x, r, s, a]) = diamond();
        let an = GraphAnalysis::compute(&g);
        assert_eq!(an.of_opcode(OpCode::Input), &[x]);
        assert_eq!(an.of_opcode(OpCode::Relu), &[r]);
        assert_eq!(an.of_opcode(OpCode::Add), &[a]);
        assert_eq!(
            an.nodes_with(&[OpCode::Relu, OpCode::Sigmoid]),
            vec![r, s],
            "multi-opcode seed is in arena order"
        );
        assert!(an.of_opcode(OpCode::Conv).is_empty());
    }

    #[test]
    fn detects_cycles_and_dangling_like_topo_order() {
        let (mut g, [x, r, _, a]) = diamond();
        g.node_mut(r).unwrap().inputs = vec![a];
        assert_eq!(GraphAnalysis::compute(&g).topo(), Err(GraphError::Cyclic));
        g.node_mut(r).unwrap().inputs = vec![x];
        let victim = r;
        g.remove(victim);
        assert!(matches!(
            GraphAnalysis::compute(&g).topo(),
            Err(GraphError::DanglingInput { .. })
        ));
    }

    #[test]
    fn freshness_tracks_generation() {
        let (mut g, [x, ..]) = diamond();
        let a = GraphAnalysis::compute(&g);
        assert!(a.is_fresh(&g));
        a.assert_fresh(&g);
        g.add(Op::Activation(Activation::Tanh), [x]);
        assert!(!a.is_fresh(&g));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn stale_access_panics_in_debug() {
        let (mut g, [x, ..]) = diamond();
        let a = GraphAnalysis::compute(&g);
        g.add(Op::Activation(Activation::Tanh), [x]);
        // A rule that mutated the graph and then reads shapes off the old
        // snapshot must trip the guard.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.shapes(&g);
        }));
        assert!(err.is_err(), "stale shapes() access should panic in debug");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.assert_fresh(&g);
        }));
        assert!(err.is_err(), "assert_fresh on stale analysis should panic");
    }

    #[test]
    fn node_map_basics() {
        let (g, [x, r, ..]) = diamond();
        let mut m: NodeMap<usize> = NodeMap::for_graph(&g);
        assert_eq!(m.len(), g.arena_len());
        m[x] = 7;
        *m.get_mut(r).unwrap() = 9;
        assert_eq!(m[x], 7);
        assert_eq!(m.get(r), Some(&9));
        assert_eq!(m.get(NodeId::from_index(100)), None);
        let collected: HashMap<NodeId, usize> = m
            .iter()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (i, v))
            .collect();
        assert_eq!(collected.len(), 2);
    }
}
