//! Reference interpreter.
//!
//! The interpreter gives the IR executable semantics so that the workspace
//! can *verify* — not assume — the paper's premise that optimizer rewrites
//! and Proteus' partition/reassemble cycle are functionally correct
//! (paper §4.3). It is deliberately naive (no blocking, no vectorization):
//! it is an oracle, not a runtime. Performance claims come from the cost
//! model in `proteus-opt`, never from this module.

use crate::graph::{Graph, NodeId};
use crate::op::Op;
use crate::shape::Shape;
use crate::{GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "tensor data does not match shape {shape}"
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Tensor with i.i.d. uniform values in `[-scale, scale]`.
    pub fn random(shape: impl Into<Shape>, scale: f32, rng: &mut StdRng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Immutable view of the elements (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the elements (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.data.len());
        self.shape = shape;
        self
    }

    /// Maximum absolute difference to another tensor (∞ if shapes differ).
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        if self.shape != other.shape {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

/// Parameter store: maps a node id to its parameter tensors (ONNX
/// "initializers"). See [`param_signature`] for per-operator layouts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TensorMap {
    params: HashMap<NodeId, Vec<Tensor>>,
}

impl TensorMap {
    /// An empty store.
    pub fn new() -> TensorMap {
        TensorMap::default()
    }

    /// Parameters for `id`, if any.
    pub fn get(&self, id: NodeId) -> Option<&[Tensor]> {
        self.params.get(&id).map(|v| v.as_slice())
    }

    /// Inserts (replacing) the parameters of `id`.
    pub fn insert(&mut self, id: NodeId, tensors: Vec<Tensor>) {
        self.params.insert(id, tensors);
    }

    /// Removes and returns the parameters of `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<Vec<Tensor>> {
        self.params.remove(&id)
    }

    /// Number of nodes with parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no node has parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Populates random parameters (scale chosen for numeric stability) for
    /// every node of `graph` that requires them. Existing entries are
    /// replaced. Deterministic in `seed`.
    pub fn init_random(graph: &Graph, seed: u64) -> TensorMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = TensorMap::new();
        for (id, node) in graph.iter() {
            let sig = param_signature(&node.op);
            if sig.is_empty() {
                continue;
            }
            let tensors: Vec<Tensor> = sig
                .iter()
                .enumerate()
                .map(|(i, s)| match &node.op {
                    // BN variance (index 3) must be positive.
                    Op::BatchNorm(_) if i == 3 => {
                        let mut t = Tensor::random(s.clone(), 0.4, &mut rng);
                        for v in t.data_mut() {
                            *v = v.abs() + 0.5;
                        }
                        t
                    }
                    _ => {
                        let fan_in = s.numel().max(1) as f32;
                        Tensor::random(s.clone(), (1.0 / fan_in.sqrt()).min(0.5), &mut rng)
                    }
                })
                .collect();
            map.insert(id, tensors);
        }
        map
    }
}

/// Parameter tensor shapes required by an operator, in storage order.
///
/// | Op | Parameters |
/// |---|---|
/// | `Conv` | `W [out, in/groups, k, k]`, then `B [out]` if `has_bias` |
/// | `Gemm` | `W [out, in]`, then `B [out]` if `has_bias` |
/// | `BatchNorm` | `scale [c]`, `bias [c]`, `mean [c]`, `var [c]` |
/// | `LayerNorm` | `scale [d]`, `bias [d]` |
/// | `Gather` | `table [vocab, dim]` |
/// | `Constant` | the value tensor |
pub fn param_signature(op: &Op) -> Vec<Shape> {
    match op {
        Op::Conv(c) => {
            let mut v = vec![Shape::from([
                c.out_channels,
                c.in_channels / c.groups.max(1),
                c.kernel,
                c.kernel,
            ])];
            if c.has_bias {
                v.push(Shape::from([c.out_channels]));
            }
            v
        }
        Op::Gemm(g) => {
            let mut v = vec![Shape::from([g.out_features, g.in_features])];
            if g.has_bias {
                v.push(Shape::from([g.out_features]));
            }
            v
        }
        Op::BatchNorm(b) => vec![
            Shape::from([b.channels]),
            Shape::from([b.channels]),
            Shape::from([b.channels]),
            Shape::from([b.channels]),
        ],
        Op::LayerNorm(l) | Op::SkipLayerNorm(l) => {
            vec![Shape::from([l.dim]), Shape::from([l.dim])]
        }
        Op::Gather { vocab, dim } => vec![Shape::from([*vocab, *dim])],
        Op::Constant { shape } => vec![shape.clone()],
        _ => Vec::new(),
    }
}

/// Executes graphs against a parameter store.
#[derive(Debug)]
pub struct Executor<'a> {
    graph: &'a Graph,
    params: &'a TensorMap,
}

impl<'a> Executor<'a> {
    /// Binds an executor to a graph and its parameters.
    pub fn new(graph: &'a Graph, params: &'a TensorMap) -> Executor<'a> {
        Executor { graph, params }
    }

    /// Runs the graph on `inputs` (bound to `Op::Input` nodes in arena
    /// order) and returns the declared outputs.
    ///
    /// # Errors
    /// Returns [`GraphError::Exec`] on missing parameters or input-count
    /// mismatch, and propagates topology/shape errors.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let order = self.graph.topo_order()?;
        let mut values: HashMap<NodeId, Tensor> = HashMap::new();
        let mut next_input = 0usize;
        // Bind inputs in arena order for determinism.
        let mut input_ids: Vec<NodeId> = self
            .graph
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
            .map(|(id, _)| id)
            .collect();
        input_ids.sort();
        for id in order {
            let node = self.graph.node(id).expect("live");
            let result = match &node.op {
                Op::Input { shape } => {
                    let pos = input_ids.iter().position(|&i| i == id).expect("input id");
                    let t = inputs.get(pos).ok_or_else(|| GraphError::Exec {
                        node: node.name.clone(),
                        detail: format!("missing input #{pos}"),
                    })?;
                    if t.shape() != shape {
                        return Err(GraphError::Exec {
                            node: node.name.clone(),
                            detail: format!("input shape {} != declared {shape}", t.shape()),
                        });
                    }
                    next_input += 1;
                    let _ = next_input;
                    t.clone()
                }
                Op::Constant { .. } => self.param(id, node, 0)?.clone(),
                _ => {
                    let ins: Vec<&Tensor> = node.inputs.iter().map(|i| &values[i]).collect();
                    self.eval(id, node, &ins)?
                }
            };
            values.insert(id, result);
        }
        Ok(self
            .graph
            .outputs()
            .iter()
            .map(|o| values[o].clone())
            .collect())
    }

    fn param(&self, id: NodeId, node: &crate::graph::Node, idx: usize) -> Result<&Tensor> {
        self.params
            .get(id)
            .and_then(|p| p.get(idx))
            .ok_or_else(|| GraphError::Exec {
                node: node.name.clone(),
                detail: format!("missing parameter tensor #{idx}"),
            })
    }

    fn eval(&self, id: NodeId, node: &crate::graph::Node, ins: &[&Tensor]) -> Result<Tensor> {
        let name = &node.name;
        let fail = |detail: String| GraphError::Exec {
            node: name.clone(),
            detail,
        };
        Ok(match &node.op {
            Op::Input { .. } | Op::Constant { .. } => unreachable!("handled in run()"),
            Op::Conv(c) => {
                let w = self.param(id, node, 0)?;
                let b = if c.has_bias {
                    Some(self.param(id, node, 1)?)
                } else {
                    None
                };
                let mut out = conv2d(ins[0], w, b, c.stride, c.padding, c.groups).map_err(fail)?;
                if c.fused_add {
                    out = broadcast_binop(&out, ins[1], |x, y| x + y).map_err(fail)?;
                }
                if let Some(act) = c.fused_act {
                    for v in out.data_mut() {
                        *v = act.apply(*v);
                    }
                }
                out
            }
            Op::Gemm(g) => {
                let w = self.param(id, node, 0)?;
                let b = if g.has_bias {
                    Some(self.param(id, node, 1)?)
                } else {
                    None
                };
                let mut out = gemm(ins[0], w, b).map_err(fail)?;
                if let Some(act) = g.fused_act {
                    for v in out.data_mut() {
                        *v = act.apply(*v);
                    }
                }
                out
            }
            Op::MatMul => matmul(ins[0], ins[1]).map_err(fail)?,
            Op::MatMulT => {
                let b = transpose_last_two(ins[1]).map_err(fail)?;
                matmul(ins[0], &b).map_err(fail)?
            }
            Op::BatchNorm(_) => {
                let scale = self.param(id, node, 0)?.data().to_vec();
                let bias = self.param(id, node, 1)?.data().to_vec();
                let mean = self.param(id, node, 2)?.data().to_vec();
                let var = self.param(id, node, 3)?.data().to_vec();
                batch_norm(ins[0], &scale, &bias, &mean, &var).map_err(fail)?
            }
            Op::LayerNorm(_) => {
                let scale = self.param(id, node, 0)?.data().to_vec();
                let bias = self.param(id, node, 1)?.data().to_vec();
                layer_norm(ins[0], &scale, &bias).map_err(fail)?
            }
            Op::SkipLayerNorm(_) => {
                let scale = self.param(id, node, 0)?.data().to_vec();
                let bias = self.param(id, node, 1)?.data().to_vec();
                let sum = broadcast_binop(ins[0], ins[1], |a, b| a + b).map_err(&fail)?;
                layer_norm(&sum, &scale, &bias).map_err(fail)?
            }
            Op::Activation(a) => {
                let mut out = ins[0].clone();
                for v in out.data_mut() {
                    *v = a.apply(*v);
                }
                out
            }
            Op::Softmax { axis } => softmax(ins[0], *axis).map_err(fail)?,
            Op::Add => broadcast_binop(ins[0], ins[1], |a, b| a + b).map_err(fail)?,
            Op::Sub => broadcast_binop(ins[0], ins[1], |a, b| a - b).map_err(fail)?,
            Op::Mul => broadcast_binop(ins[0], ins[1], |a, b| a * b).map_err(fail)?,
            Op::Div => broadcast_binop(ins[0], ins[1], |a, b| a / b).map_err(fail)?,
            Op::AddAct(act) => {
                let mut out = broadcast_binop(ins[0], ins[1], |a, b| a + b).map_err(fail)?;
                for v in out.data_mut() {
                    *v = act.apply(*v);
                }
                out
            }
            Op::MaxPool(p) => {
                pool(ins[0], p.kernel, p.stride, p.padding, PoolMode::Max).map_err(fail)?
            }
            Op::AveragePool(p) => {
                pool(ins[0], p.kernel, p.stride, p.padding, PoolMode::Avg).map_err(fail)?
            }
            Op::GlobalAveragePool => global_average_pool(ins[0]).map_err(fail)?,
            Op::Concat { axis } => concat(ins, *axis).map_err(fail)?,
            Op::Flatten => {
                let d = ins[0].shape().dims();
                let rest: usize = d[1..].iter().product();
                ins[0].clone().reshaped([d[0], rest])
            }
            Op::Reshape { shape } => ins[0].clone().reshaped(shape.clone()),
            Op::Transpose { perm } => transpose(ins[0], perm).map_err(fail)?,
            Op::Identity => ins[0].clone(),
            // Inference-mode dropout is the identity function.
            Op::Dropout { .. } => ins[0].clone(),
            Op::ReduceMean { axes, keepdims } => {
                reduce_mean(ins[0], axes, *keepdims).map_err(fail)?
            }
            Op::Gather { dim, .. } => {
                let table = self.param(id, node, 0)?;
                gather(ins[0], table, *dim).map_err(fail)?
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Kernels (naive reference implementations)
// ---------------------------------------------------------------------------

type KResult = std::result::Result<Tensor, String>;

fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

/// Elementwise binary op with full numpy-style broadcasting.
pub fn broadcast_binop(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> KResult {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .ok_or_else(|| format!("cannot broadcast {} with {}", a.shape(), b.shape()))?;
    let rank = out_shape.rank();
    let out_dims = out_shape.dims().to_vec();
    let pad = |dims: &[usize]| -> Vec<usize> {
        let mut v = vec![1; rank - dims.len()];
        v.extend_from_slice(dims);
        v
    };
    let (da, db) = (pad(a.shape().dims()), pad(b.shape().dims()));
    let (sa, sb) = (strides_of(&da), strides_of(&db));
    let numel = out_shape.numel();
    let mut out = vec![0.0f32; numel];
    let out_strides = strides_of(&out_dims);
    for (i, slot) in out.iter_mut().enumerate() {
        let mut ia = 0usize;
        let mut ib = 0usize;
        for d in 0..rank {
            let idx = (i / out_strides[d]) % out_dims[d];
            ia += if da[d] == 1 { 0 } else { idx * sa[d] };
            ib += if db[d] == 1 { 0 } else { idx * sb[d] };
        }
        *slot = f(a.data()[ia], b.data()[ib]);
    }
    Ok(Tensor::new(out_shape, out))
}

/// Grouped 2-D convolution (NCHW), direct algorithm.
pub fn conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
    groups: usize,
) -> KResult {
    let (n, cin, h, win) = x.shape().nchw().ok_or("conv input must be NCHW")?;
    let wd = w.shape().dims();
    if wd.len() != 4 {
        return Err("conv weight must be rank 4".into());
    }
    let (cout, cpg, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err("only square kernels supported".into());
    }
    if cin % groups != 0 || cout % groups != 0 || cpg != cin / groups {
        return Err(format!(
            "bad conv grouping: cin={cin} cout={cout} groups={groups}"
        ));
    }
    let oh = crate::shape::conv_out_dim(h, kh, stride, padding).ok_or("kernel too large")?;
    let ow = crate::shape::conv_out_dim(win, kw, stride, padding).ok_or("kernel too large")?;
    let mut out = vec![0.0f32; n * cout * oh * ow];
    let cout_pg = cout / groups;
    let xs = x.data();
    let ws = w.data();
    for b in 0..n {
        for oc in 0..cout {
            let g = oc / cout_pg;
            let bias_v = bias.map(|t| t.data()[oc]).unwrap_or(0.0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_v;
                    for ic in 0..cpg {
                        let gic = g * cpg + ic;
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            if iy < padding || iy - padding >= h {
                                continue;
                            }
                            let iy = iy - padding;
                            for kx in 0..kw {
                                let ix = ox * stride + kx;
                                if ix < padding || ix - padding >= win {
                                    continue;
                                }
                                let ix = ix - padding;
                                let xv = xs[((b * cin + gic) * h + iy) * win + ix];
                                let wv = ws[((oc * cpg + ic) * kh + ky) * kw + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[((b * cout + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(Tensor::new([n, cout, oh, ow], out))
}

/// Fully-connected layer `y = x W^T + b` over the last dimension.
pub fn gemm(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> KResult {
    let xd = x.shape().dims();
    let wd = w.shape().dims();
    if wd.len() != 2 {
        return Err("gemm weight must be rank 2".into());
    }
    let (out_f, in_f) = (wd[0], wd[1]);
    let last = *xd.last().ok_or("gemm input is scalar")?;
    if last != in_f {
        return Err(format!("gemm features mismatch: {last} vs {in_f}"));
    }
    let rows: usize = xd[..xd.len() - 1].iter().product();
    let mut out = vec![0.0f32; rows * out_f];
    for r in 0..rows {
        for o in 0..out_f {
            let mut acc = bias.map(|t| t.data()[o]).unwrap_or(0.0);
            for i in 0..in_f {
                acc += x.data()[r * in_f + i] * w.data()[o * in_f + i];
            }
            out[r * out_f + o] = acc;
        }
    }
    let mut shape = xd.to_vec();
    *shape.last_mut().expect("nonempty") = out_f;
    Ok(Tensor::new(shape, out))
}

/// Batched matrix multiplication with broadcasting on leading dims.
pub fn matmul(a: &Tensor, b: &Tensor) -> KResult {
    let ad = a.shape().dims();
    let bd = b.shape().dims();
    if ad.len() < 2 || bd.len() < 2 {
        return Err("matmul operands must have rank >= 2".into());
    }
    let (m, k1) = (ad[ad.len() - 2], ad[ad.len() - 1]);
    let (k2, n) = (bd[bd.len() - 2], bd[bd.len() - 1]);
    if k1 != k2 {
        return Err(format!("matmul inner dims {k1} vs {k2}"));
    }
    let batch_a = Shape::new(ad[..ad.len() - 2].to_vec());
    let batch_b = Shape::new(bd[..bd.len() - 2].to_vec());
    let batch = batch_a
        .broadcast(&batch_b)
        .ok_or("matmul batch dims not broadcastable")?;
    let batch_dims = batch.dims().to_vec();
    let batch_n: usize = batch_dims.iter().product::<usize>().max(1);
    let rank = batch_dims.len();
    let pad = |dims: &[usize]| -> Vec<usize> {
        let mut v = vec![1; rank - dims.len()];
        v.extend_from_slice(dims);
        v
    };
    let (pa, pb) = (pad(batch_a.dims()), pad(batch_b.dims()));
    let (sa, sb) = (strides_of(&pa), strides_of(&pb));
    let sbatch = strides_of(&batch_dims);
    let mut out = vec![0.0f32; batch_n * m * n];
    for bi in 0..batch_n {
        let mut off_a = 0usize;
        let mut off_b = 0usize;
        for d in 0..rank {
            let idx = (bi / sbatch[d]) % batch_dims[d];
            off_a += if pa[d] == 1 { 0 } else { idx * sa[d] };
            off_b += if pb[d] == 1 { 0 } else { idx * sb[d] };
        }
        let base_a = off_a * m * k1;
        let base_b = off_b * k1 * n;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..k1 {
                    acc += a.data()[base_a + i * k1 + k] * b.data()[base_b + k * n + j];
                }
                out[bi * m * n + i * n + j] = acc;
            }
        }
    }
    let mut shape = batch_dims;
    shape.push(m);
    shape.push(n);
    Ok(Tensor::new(shape, out))
}

/// Inference-mode batch normalization, per channel over NCHW.
pub fn batch_norm(x: &Tensor, scale: &[f32], bias: &[f32], mean: &[f32], var: &[f32]) -> KResult {
    let (n, c, h, w) = x.shape().nchw().ok_or("batchnorm input must be NCHW")?;
    if [scale.len(), bias.len(), mean.len(), var.len()] != [c; 4] {
        return Err("batchnorm parameter length mismatch".into());
    }
    const EPS: f32 = 1e-5;
    let mut out = x.data().to_vec();
    for b in 0..n {
        for ch in 0..c {
            let inv = scale[ch] / (var[ch] + EPS).sqrt();
            let base = (b * c + ch) * h * w;
            for i in 0..h * w {
                out[base + i] = (out[base + i] - mean[ch]) * inv + bias[ch];
            }
        }
    }
    Ok(Tensor::new(x.shape().clone(), out))
}

/// Layer normalization over the last dimension.
pub fn layer_norm(x: &Tensor, scale: &[f32], bias: &[f32]) -> KResult {
    let dims = x.shape().dims();
    let d = *dims.last().ok_or("layernorm on scalar")?;
    if scale.len() != d || bias.len() != d {
        return Err("layernorm parameter length mismatch".into());
    }
    const EPS: f32 = 1e-5;
    let rows = x.shape().numel() / d;
    let mut out = x.data().to_vec();
    for r in 0..rows {
        let row = &mut out[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * scale[i] + bias[i];
        }
    }
    Ok(Tensor::new(x.shape().clone(), out))
}

/// Softmax along `axis` (negative axes count from the end).
pub fn softmax(x: &Tensor, axis: isize) -> KResult {
    let dims = x.shape().dims().to_vec();
    let rank = dims.len() as isize;
    let ax = if axis < 0 { axis + rank } else { axis };
    if ax < 0 || ax >= rank {
        return Err(format!("softmax axis {axis} out of range"));
    }
    let ax = ax as usize;
    let strides = strides_of(&dims);
    let axis_len = dims[ax];
    let axis_stride = strides[ax];
    let numel = x.shape().numel();
    let mut out = x.data().to_vec();
    let outer = numel / axis_len;
    for o in 0..outer {
        // Decompose o into indices excluding `ax`, then find base offset.
        let mut rem = o;
        let mut base = 0usize;
        for d in 0..dims.len() {
            if d == ax {
                continue;
            }
            let extent = dims[d];
            // number of positions in remaining non-axis dims after d
            let later: usize = dims
                .iter()
                .enumerate()
                .filter(|&(dd, _)| dd != ax && dd > d)
                .map(|(_, &e)| e)
                .product();
            let idx = rem / later.max(1) % extent;
            rem %= later.max(1);
            base += idx * strides[d];
        }
        let mut maxv = f32::NEG_INFINITY;
        for i in 0..axis_len {
            maxv = maxv.max(out[base + i * axis_stride]);
        }
        let mut sum = 0.0;
        for i in 0..axis_len {
            let e = (out[base + i * axis_stride] - maxv).exp();
            out[base + i * axis_stride] = e;
            sum += e;
        }
        for i in 0..axis_len {
            out[base + i * axis_stride] /= sum;
        }
    }
    Ok(Tensor::new(x.shape().clone(), out))
}

#[derive(Clone, Copy)]
enum PoolMode {
    Max,
    Avg,
}

fn pool(x: &Tensor, kernel: usize, stride: usize, padding: usize, mode: PoolMode) -> KResult {
    let (n, c, h, w) = x.shape().nchw().ok_or("pool input must be NCHW")?;
    let oh = crate::shape::conv_out_dim(h, kernel, stride, padding).ok_or("kernel too large")?;
    let ow = crate::shape::conv_out_dim(w, kernel, stride, padding).ok_or("kernel too large")?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = match mode {
                        PoolMode::Max => f32::NEG_INFINITY,
                        PoolMode::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for ky in 0..kernel {
                        let iy = oy * stride + ky;
                        if iy < padding || iy - padding >= h {
                            continue;
                        }
                        for kx in 0..kernel {
                            let ix = ox * stride + kx;
                            if ix < padding || ix - padding >= w {
                                continue;
                            }
                            let v =
                                x.data()[((b * c + ch) * h + (iy - padding)) * w + (ix - padding)];
                            match mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = match mode {
                        PoolMode::Max => acc,
                        // count_include_pad = false (torch default)
                        PoolMode::Avg => acc / count.max(1) as f32,
                    };
                }
            }
        }
    }
    Ok(Tensor::new([n, c, oh, ow], out))
}

fn global_average_pool(x: &Tensor) -> KResult {
    let (n, c, h, w) = x.shape().nchw().ok_or("GAP input must be NCHW")?;
    let mut out = vec![0.0f32; n * c];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            out[b * c + ch] = x.data()[base..base + h * w].iter().sum::<f32>() / (h * w) as f32;
        }
    }
    Ok(Tensor::new([n, c, 1, 1], out))
}

fn concat(ins: &[&Tensor], axis: usize) -> KResult {
    let first = ins.first().ok_or("concat of nothing")?;
    let dims = first.shape().dims();
    if axis >= dims.len() {
        return Err("concat axis out of range".into());
    }
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let total_axis: usize = ins.iter().map(|t| t.shape().dims()[axis]).sum();
    let mut out = Vec::with_capacity(outer * total_axis * inner);
    for o in 0..outer {
        for t in ins {
            let ta = t.shape().dims()[axis];
            let base = o * ta * inner;
            out.extend_from_slice(&t.data()[base..base + ta * inner]);
        }
    }
    let mut shape = dims.to_vec();
    shape[axis] = total_axis;
    Ok(Tensor::new(shape, out))
}

/// Transposes the last two dimensions (helper for [`Op::MatMulT`]).
fn transpose_last_two(x: &Tensor) -> KResult {
    let rank = x.shape().rank();
    if rank < 2 {
        return Err("matmul_t operand must have rank >= 2".into());
    }
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.swap(rank - 2, rank - 1);
    transpose(x, &perm)
}

fn transpose(x: &Tensor, perm: &[usize]) -> KResult {
    let dims = x.shape().dims();
    if perm.len() != dims.len() {
        return Err("transpose perm rank mismatch".into());
    }
    let out_dims: Vec<usize> = perm.iter().map(|&p| dims[p]).collect();
    let in_strides = strides_of(dims);
    let out_strides = strides_of(&out_dims);
    let mut out = vec![0.0f32; x.shape().numel()];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut src = 0usize;
        for d in 0..out_dims.len() {
            let idx = (i / out_strides[d]) % out_dims[d];
            src += idx * in_strides[perm[d]];
        }
        *slot = x.data()[src];
    }
    Ok(Tensor::new(out_dims, out))
}

fn reduce_mean(x: &Tensor, axes: &[usize], keepdims: bool) -> KResult {
    let dims = x.shape().dims().to_vec();
    for &a in axes {
        if a >= dims.len() {
            return Err("reduce axis out of range".into());
        }
    }
    let out_dims: Vec<usize> = dims
        .iter()
        .enumerate()
        .filter_map(|(i, &d)| {
            if axes.contains(&i) {
                if keepdims {
                    Some(1)
                } else {
                    None
                }
            } else {
                Some(d)
            }
        })
        .collect();
    let reduced: usize = axes.iter().map(|&a| dims[a]).product();
    let strides = strides_of(&dims);
    // full-dim view of output (kept dims, reduced dims = 1)
    let full_out: Vec<usize> = dims
        .iter()
        .enumerate()
        .map(|(i, &d)| if axes.contains(&i) { 1 } else { d })
        .collect();
    let full_strides = strides_of(&full_out);
    let out_numel: usize = full_out.iter().product();
    let mut out = vec![0.0f32; out_numel];
    for (i, &v) in x.data().iter().enumerate() {
        let mut oi = 0usize;
        for d in 0..dims.len() {
            let idx = (i / strides[d]) % dims[d];
            if !axes.contains(&d) {
                oi += idx * full_strides[d];
            }
        }
        out[oi] += v;
    }
    for v in &mut out {
        *v /= reduced as f32;
    }
    Ok(Tensor::new(out_dims, out))
}

fn gather(ids: &Tensor, table: &Tensor, dim: usize) -> KResult {
    let td = table.shape().dims();
    if td.len() != 2 || td[1] != dim {
        return Err("gather table must be [vocab, dim]".into());
    }
    let vocab = td[0];
    let mut out = Vec::with_capacity(ids.shape().numel() * dim);
    for &idf in ids.data() {
        let idx = idf.round().max(0.0) as usize;
        let idx = idx.min(vocab - 1);
        out.extend_from_slice(&table.data()[idx * dim..(idx + 1) * dim]);
    }
    let mut shape = ids.shape().dims().to_vec();
    shape.push(dim);
    Ok(Tensor::new(shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, LayerNormAttrs, PoolAttrs};

    fn t(shape: impl Into<Shape>, data: Vec<f32>) -> Tensor {
        Tensor::new(shape, data)
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 conv with weight=1 is identity for single channel.
        let x = t([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = t([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, None, 1, 0, 1).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_known_values() {
        // 2x2 input, 2x2 kernel of ones, no padding: single output = sum.
        let x = t([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = t([1, 1, 2, 2], vec![1.0; 4]);
        let y = conv2d(&x, &w, None, 1, 0, 1).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let x = t([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let w = t(
            [1, 1, 3, 3],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        );
        // center-tap kernel with pad 1 reproduces the input
        let y = conv2d(&x, &w, None, 1, 1, 1).unwrap();
        assert_eq!(y.data(), x.data());
        // stride 2 subsamples
        let y2 = conv2d(&x, &w, None, 2, 1, 1).unwrap();
        assert_eq!(y2.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y2.data(), &[1.0, 3.0, 7.0, 9.0]);
    }

    #[test]
    fn depthwise_conv_groups() {
        // 2 channels, depthwise 1x1 with weights [2, 3]: scales per channel.
        let x = t([1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = t([2, 1, 1, 1], vec![2.0, 3.0]);
        let y = conv2d(&x, &w, None, 1, 0, 2).unwrap();
        assert_eq!(y.data(), &[2.0, 4.0, 9.0, 12.0]);
    }

    #[test]
    fn gemm_known() {
        let x = t([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = t([2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]); // rows select features
        let b = t([2], vec![10.0, 20.0]);
        let y = gemm(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.data(), &[11.0, 22.0, 14.0, 25.0]);
    }

    #[test]
    fn matmul_2d_and_batched() {
        let a = t([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t([2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let y = matmul(&a, &b).unwrap();
        assert_eq!(y.data(), &[19.0, 22.0, 43.0, 50.0]);

        // batched lhs with shared rhs
        let ab = t([2, 1, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let y2 = matmul(&ab, &b).unwrap();
        assert_eq!(y2.shape().dims(), &[2, 1, 2]);
        assert_eq!(y2.data(), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn broadcasting_add_bias_row() {
        let x = t([2, 3], vec![0.0; 6]);
        let b = t([3], vec![1.0, 2.0, 3.0]);
        let y = broadcast_binop(&x, &b, |a, b| a + b).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t([2, 4], vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 2.0]);
        let y = softmax(&x, -1).unwrap();
        for r in 0..2 {
            let s: f32 = y.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // monotone within a row
        assert!(y.data()[0] < y.data()[1]);
    }

    #[test]
    fn softmax_on_middle_axis() {
        let x = t([2, 3, 2], (0..12).map(|v| v as f32).collect());
        let y = softmax(&x, 1).unwrap();
        // sum over axis 1 is 1 for every (b, last) pair
        for b in 0..2 {
            for l in 0..2 {
                let s: f32 = (0..3).map(|m| y.data()[b * 6 + m * 2 + l]).sum();
                assert!((s - 1.0).abs() < 1e-5, "sum was {s}");
            }
        }
    }

    #[test]
    fn pooling_values() {
        let x = t([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mx = pool(&x, 2, 2, 0, PoolMode::Max).unwrap();
        assert_eq!(mx.data(), &[4.0]);
        let avg = pool(&x, 2, 2, 0, PoolMode::Avg).unwrap();
        assert_eq!(avg.data(), &[2.5]);
        let gap = global_average_pool(&x).unwrap();
        assert_eq!(gap.data(), &[2.5]);
    }

    #[test]
    fn batch_norm_normalizes() {
        let x = t([1, 1, 1, 2], vec![2.0, 4.0]);
        let y = batch_norm(&x, &[1.0], &[0.0], &[3.0], &[1.0]).unwrap();
        assert!((y.data()[0] + 1.0).abs() < 1e-3);
        assert!((y.data()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = t([1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = layer_norm(&x, &[1.0; 4], &[0.0; 4]).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn transpose_2d() {
        let x = t([2, 3], (0..6).map(|v| v as f32).collect());
        let y = transpose(&x, &[1, 0]).unwrap();
        assert_eq!(y.shape().dims(), &[3, 2]);
        assert_eq!(y.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = t([1, 2], vec![1.0, 2.0]);
        let b = t([1, 3], vec![3.0, 4.0, 5.0]);
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.shape().dims(), &[1, 5]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn reduce_mean_spatial() {
        let x = t(
            [1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        );
        let y = reduce_mean(&x, &[2, 3], true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn gather_rows() {
        let ids = t([1, 3], vec![0.0, 2.0, 1.0]);
        let table = t([3, 2], vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let y = gather(&ids, &table, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 2]);
        assert_eq!(y.data(), &[0.0, 1.0, 20.0, 21.0, 10.0, 11.0]);
    }

    #[test]
    fn end_to_end_small_cnn() {
        let mut g = Graph::new("cnn");
        let x = g.input([1, 3, 8, 8]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: 4 }), [c1]);
        let r = g.add(Op::Activation(Activation::Relu), [bn]);
        let p = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [r]);
        let f = g.add(Op::Flatten, [p]);
        let fc = g.add(Op::Gemm(GemmAttrs::new(4 * 4 * 4, 10)), [f]);
        g.set_outputs([fc]);
        g.validate().unwrap();

        let params = TensorMap::init_random(&g, 42);
        let exec = Executor::new(&g, &params);
        let mut rng = StdRng::seed_from_u64(7);
        let input = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
        let out = exec.run(&[input]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape().dims(), &[1, 10]);
        assert!(out[0].data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn end_to_end_transformer_fragment() {
        let mut g = Graph::new("attn");
        let ids = g.input([1, 6]);
        let emb = g.add(Op::Gather { vocab: 50, dim: 8 }, [ids]);
        let ln = g.add(Op::LayerNorm(LayerNormAttrs { dim: 8 }), [emb]);
        let q = g.add(Op::Gemm(GemmAttrs::new(8, 8)), [ln]);
        let k = g.add(Op::Gemm(GemmAttrs::new(8, 8)), [ln]);
        let kt = g.add(
            Op::Transpose {
                perm: vec![0, 2, 1],
            },
            [k],
        );
        let att = g.add(Op::MatMul, [q, kt]);
        let sm = g.add(Op::Softmax { axis: -1 }, [att]);
        g.set_outputs([sm]);
        g.validate().unwrap();
        let params = TensorMap::init_random(&g, 1);
        let exec = Executor::new(&g, &params);
        let ids_t = Tensor::new([1, 6], vec![1.0, 4.0, 9.0, 0.0, 3.0, 2.0]);
        let out = exec.run(&[ids_t]).unwrap();
        assert_eq!(out[0].shape().dims(), &[1, 6, 6]);
        for r in 0..6 {
            let s: f32 = out[0].data()[r * 6..(r + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn executor_reports_missing_params() {
        let mut g = Graph::new("missing");
        let x = g.input([1, 3, 4, 4]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        g.set_outputs([c]);
        let empty = TensorMap::new();
        let exec = Executor::new(&g, &empty);
        let err = exec.run(&[Tensor::zeros([1, 3, 4, 4])]).unwrap_err();
        assert!(matches!(err, GraphError::Exec { .. }));
    }

    #[test]
    fn dropout_and_identity_are_noops() {
        let mut g = Graph::new("noop");
        let x = g.input([2, 2]);
        let d = g.add(Op::Dropout { p: 50 }, [x]);
        let i = g.add(Op::Identity, [d]);
        g.set_outputs([i]);
        let params = TensorMap::new();
        let exec = Executor::new(&g, &params);
        let input = Tensor::new([2, 2], vec![1.0, -2.0, 3.0, -4.0]);
        let out = exec.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(out[0], input);
    }
}
