//! Operator definitions.
//!
//! Operators follow ONNX naming and semantics closely enough that a graph in
//! this IR corresponds one-to-one to an ONNX model of the kind the Proteus
//! paper feeds to ONNXRuntime/Hidet. Attributes carry the hyper-parameters
//! (channel counts, kernel shapes, strides) that the paper's SMT-based
//! operator population step must assign consistently.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Elementwise activation functions.
///
/// These appear both as standalone [`Op::Activation`] nodes and as fused
/// epilogues on [`ConvAttrs`]/[`GemmAttrs`] after optimizer rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)` — used by MobileNet-family models.
    Relu6,
    /// `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Piecewise-linear sigmoid approximation used by e.g. squeeze-excite
    /// blocks in efficient CNNs.
    HardSigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (tanh approximation), used by BERT-family
    /// models.
    Gelu,
    /// `x * sigmoid(x)`.
    Silu,
}

impl Activation {
    /// All activation functions, in a stable order.
    pub const ALL: [Activation; 7] = [
        Activation::Relu,
        Activation::Relu6,
        Activation::Sigmoid,
        Activation::HardSigmoid,
        Activation::Tanh,
        Activation::Gelu,
        Activation::Silu,
    ];

    /// Applies the activation to a single value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::HardSigmoid => (0.2 * x + 0.5).clamp(0.0, 1.0),
            Activation::Tanh => x.tanh(),
            Activation::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Silu => x / (1.0 + (-x).exp()),
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convolution algorithm selected by the optimizer.
///
/// `Winograd` models an F(2x2, 3x3) Winograd rewrite: it reduces
/// multiply-accumulate work by ~2.25x for 3x3/stride-1 convolutions but pays
/// a per-tile transform overhead that dominates at small channel counts.
/// This mirrors the "typically beneficial but occasionally harmful"
/// optimizations discussed in the paper's NAS case study (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ConvAlgo {
    /// Direct (im2col-style) convolution.
    #[default]
    Direct,
    /// F(2x2, 3x3) Winograd-transformed convolution.
    Winograd,
}

/// Attributes of a 2-D convolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvAttrs {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Grouped-convolution group count (`in_channels` for depthwise).
    pub groups: usize,
    /// Whether a bias vector is added to the output.
    pub has_bias: bool,
    /// Algorithm selected by the optimizer.
    pub algo: ConvAlgo,
    /// Fused activation epilogue (set by optimizer rewrites).
    pub fused_act: Option<Activation>,
    /// When true the node takes a second input that is added to the
    /// convolution output before the activation (fused residual add).
    pub fused_add: bool,
}

impl ConvAttrs {
    /// A plain convolution with stride 1, no padding, no groups, and a bias.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        ConvAttrs {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
            groups: 1,
            has_bias: true,
            algo: ConvAlgo::Direct,
            fused_act: None,
            fused_add: false,
        }
    }

    /// Builder: sets the stride.
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Builder: sets the zero padding.
    pub fn padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Builder: sets the group count.
    pub fn groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Builder: enables or disables the bias term.
    pub fn bias(mut self, has_bias: bool) -> Self {
        self.has_bias = has_bias;
        self
    }

    /// A depthwise convolution (`groups == in_channels == out_channels`).
    pub fn depthwise(channels: usize, kernel: usize) -> Self {
        ConvAttrs::new(channels, channels, kernel).groups(channels)
    }

    /// Number of inputs this convolution consumes (1, or 2 with a fused
    /// residual add).
    pub fn arity(&self) -> usize {
        if self.fused_add {
            2
        } else {
            1
        }
    }
}

/// Attributes of a fully-connected (`Gemm`) layer: `y = act(x W^T + b)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmAttrs {
    /// Input feature dimension.
    pub in_features: usize,
    /// Output feature dimension.
    pub out_features: usize,
    /// Whether a bias vector is added to the output.
    pub has_bias: bool,
    /// Fused activation epilogue (set by optimizer rewrites).
    pub fused_act: Option<Activation>,
}

impl GemmAttrs {
    /// A fully-connected layer with a bias and no fused activation.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        GemmAttrs {
            in_features,
            out_features,
            has_bias: true,
            fused_act: None,
        }
    }
}

/// Attributes of max/average pooling.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolAttrs {
    /// Square pooling window size.
    pub kernel: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl PoolAttrs {
    /// Pooling attributes from window/stride/padding.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        PoolAttrs {
            kernel,
            stride,
            padding,
        }
    }
}

/// Attributes of (inference-mode) batch normalization.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchNormAttrs {
    /// Channel count the per-channel statistics are stored for.
    pub channels: usize,
}

/// Attributes of layer normalization over the last dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerNormAttrs {
    /// Size of the normalized (last) dimension.
    pub dim: usize,
}

/// A deep-learning operator.
///
/// Nodes of a [`crate::Graph`] each carry one `Op`. Parameter tensors
/// (weights, biases, BN statistics, embedding tables) are *not* stored inline
/// — they live in a [`crate::TensorMap`] keyed by node id, mirroring how ONNX
/// separates initializers from graph structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Graph input placeholder with a fixed shape.
    Input {
        /// The input tensor's shape.
        shape: Shape,
    },
    /// Constant tensor; its value lives in the weight store.
    Constant {
        /// The constant tensor's shape.
        shape: Shape,
    },
    /// 2-D convolution.
    Conv(ConvAttrs),
    /// Fully-connected layer `y = act(x W^T + b)`.
    Gemm(GemmAttrs),
    /// Batched matrix multiplication of two activation tensors (attention).
    MatMul,
    /// Batched `a · bᵀ` (transposed on the last two dims) — produced by the
    /// optimizer's FusedMatMul rewrite of `MatMul(a, Transpose(b))`.
    MatMulT,
    /// Inference-mode batch normalization.
    BatchNorm(BatchNormAttrs),
    /// Layer normalization over the last dimension.
    LayerNorm(LayerNormAttrs),
    /// Fused `LayerNorm(a + b)` (ONNXRuntime's SkipLayerNormalization).
    SkipLayerNorm(LayerNormAttrs),
    /// Standalone elementwise activation.
    Activation(Activation),
    /// Softmax along `axis` (negative values count from the back).
    Softmax {
        /// The normalized axis.
        axis: isize,
    },
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Fused elementwise add followed by an activation (optimizer output).
    AddAct(Activation),
    /// 2-D max pooling.
    MaxPool(PoolAttrs),
    /// 2-D average pooling.
    AveragePool(PoolAttrs),
    /// Spatial mean over each channel (`NCHW -> NC11`).
    GlobalAveragePool,
    /// Concatenation along `axis`.
    Concat {
        /// The concatenated axis.
        axis: usize,
    },
    /// Flattens all dimensions after the batch dimension.
    Flatten,
    /// Reshape to a fixed target shape.
    Reshape {
        /// The target shape.
        shape: Shape,
    },
    /// Dimension permutation.
    Transpose {
        /// `perm[i]` is the source axis of output axis `i`.
        perm: Vec<usize>,
    },
    /// Pass-through (rewrites eliminate it).
    Identity,
    /// Dropout — an inference no-op carrying its training keep rate, kept
    /// in the IR so the DropoutElimination rewrite has something to do.
    Dropout {
        /// Drop probability in percent (integral so `Op` stays `Eq`).
        p: u32,
    },
    /// Mean reduction over `axes`.
    ReduceMean {
        /// The reduced axes.
        axes: Vec<usize>,
        /// Whether reduced axes are kept as size-1 dimensions.
        keepdims: bool,
    },
    /// Embedding lookup: maps integer token ids to rows of a `[vocab, dim]`
    /// table held in the weight store.
    Gather {
        /// Vocabulary (table row) count.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
    },
}

impl Op {
    /// The number of graph inputs this operator consumes, if fixed.
    /// `None` means variadic (>= 2), which only `Concat` uses.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } | Op::Constant { .. } => Some(0),
            Op::Conv(c) => Some(c.arity()),
            Op::Gemm(_) => Some(1),
            Op::MatMul | Op::MatMulT => Some(2),
            Op::SkipLayerNorm(_) => Some(2),
            Op::BatchNorm(_) | Op::LayerNorm(_) => Some(1),
            Op::Activation(_) | Op::Softmax { .. } => Some(1),
            Op::Add | Op::Sub | Op::Mul | Op::Div => Some(2),
            Op::AddAct(_) => Some(2),
            Op::MaxPool(_) | Op::AveragePool(_) | Op::GlobalAveragePool => Some(1),
            Op::Concat { .. } => None,
            Op::Flatten
            | Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::Identity
            | Op::Dropout { .. }
            | Op::ReduceMean { .. }
            | Op::Gather { .. } => Some(1),
        }
    }

    /// Returns the compact opcode used by the adversary, the bigram
    /// likelihood model, and the CSP operator domain.
    pub fn opcode(&self) -> OpCode {
        match self {
            Op::Input { .. } => OpCode::Input,
            Op::Constant { .. } => OpCode::Constant,
            Op::Conv(_) => OpCode::Conv,
            Op::Gemm(_) => OpCode::Gemm,
            Op::MatMul => OpCode::MatMul,
            Op::MatMulT => OpCode::MatMulT,
            Op::BatchNorm(_) => OpCode::BatchNorm,
            Op::LayerNorm(_) => OpCode::LayerNorm,
            Op::SkipLayerNorm(_) => OpCode::SkipLayerNorm,
            Op::Activation(a) => match a {
                Activation::Relu => OpCode::Relu,
                Activation::Relu6 => OpCode::Relu6,
                Activation::Sigmoid => OpCode::Sigmoid,
                Activation::HardSigmoid => OpCode::HardSigmoid,
                Activation::Tanh => OpCode::Tanh,
                Activation::Gelu => OpCode::Gelu,
                Activation::Silu => OpCode::Silu,
            },
            Op::Softmax { .. } => OpCode::Softmax,
            Op::Add => OpCode::Add,
            Op::Sub => OpCode::Sub,
            Op::Mul => OpCode::Mul,
            Op::Div => OpCode::Div,
            Op::AddAct(_) => OpCode::AddAct,
            Op::MaxPool(_) => OpCode::MaxPool,
            Op::AveragePool(_) => OpCode::AveragePool,
            Op::GlobalAveragePool => OpCode::GlobalAveragePool,
            Op::Concat { .. } => OpCode::Concat,
            Op::Flatten => OpCode::Flatten,
            Op::Reshape { .. } => OpCode::Reshape,
            Op::Transpose { .. } => OpCode::Transpose,
            Op::Identity => OpCode::Identity,
            Op::Dropout { .. } => OpCode::Dropout,
            Op::ReduceMean { .. } => OpCode::ReduceMean,
            Op::Gather { .. } => OpCode::Gather,
        }
    }

    /// True for operators whose output equals their (single) input
    /// elementwise shape (activations, normalization, dropout, identity).
    pub fn is_elementwise_unary(&self) -> bool {
        matches!(
            self,
            Op::Activation(_)
                | Op::BatchNorm(_)
                | Op::LayerNorm(_)
                | Op::Softmax { .. }
                | Op::Identity
                | Op::Dropout { .. }
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Conv(c) => {
                write!(
                    f,
                    "Conv[{}x{}, {}->{}, s{}",
                    c.kernel, c.kernel, c.in_channels, c.out_channels, c.stride
                )?;
                if c.groups > 1 {
                    write!(f, ", g{}", c.groups)?;
                }
                if let Some(a) = c.fused_act {
                    write!(f, "+{a}")?;
                }
                if c.fused_add {
                    write!(f, "+Add")?;
                }
                write!(f, "]")
            }
            Op::Gemm(g) => {
                write!(f, "Gemm[{}->{}", g.in_features, g.out_features)?;
                if let Some(a) = g.fused_act {
                    write!(f, "+{a}")?;
                }
                write!(f, "]")
            }
            Op::Activation(a) => write!(f, "{a}"),
            Op::AddAct(a) => write!(f, "Add+{a}"),
            other => write!(f, "{:?}", other.opcode()),
        }
    }
}

/// Flat opcode vocabulary.
///
/// This is the "operator information" an adversary observes (paper §4.1.2):
/// node labels of the computational graph. It is also the assignment domain
/// of the SMT-based operator population step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)] // each variant names the `Op` (or `Activation`) it abbreviates
pub enum OpCode {
    Input,
    Constant,
    Conv,
    Gemm,
    MatMul,
    MatMulT,
    BatchNorm,
    LayerNorm,
    SkipLayerNorm,
    Relu,
    Relu6,
    Sigmoid,
    HardSigmoid,
    Tanh,
    Gelu,
    Silu,
    Softmax,
    Add,
    Sub,
    Mul,
    Div,
    AddAct,
    MaxPool,
    AveragePool,
    GlobalAveragePool,
    Concat,
    Flatten,
    Reshape,
    Transpose,
    Identity,
    Dropout,
    ReduceMean,
    Gather,
}

impl OpCode {
    /// All opcodes in a stable order; index with [`OpCode::index`].
    pub const ALL: [OpCode; 33] = [
        OpCode::Input,
        OpCode::Constant,
        OpCode::Conv,
        OpCode::Gemm,
        OpCode::MatMul,
        OpCode::MatMulT,
        OpCode::BatchNorm,
        OpCode::LayerNorm,
        OpCode::SkipLayerNorm,
        OpCode::Relu,
        OpCode::Relu6,
        OpCode::Sigmoid,
        OpCode::HardSigmoid,
        OpCode::Tanh,
        OpCode::Gelu,
        OpCode::Silu,
        OpCode::Softmax,
        OpCode::Add,
        OpCode::Sub,
        OpCode::Mul,
        OpCode::Div,
        OpCode::AddAct,
        OpCode::MaxPool,
        OpCode::AveragePool,
        OpCode::GlobalAveragePool,
        OpCode::Concat,
        OpCode::Flatten,
        OpCode::Reshape,
        OpCode::Transpose,
        OpCode::Identity,
        OpCode::Dropout,
        OpCode::ReduceMean,
        OpCode::Gather,
    ];

    /// Number of distinct opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// The opcodes an [`Op::Activation`] node can carry (one per
    /// [`Activation`] kind) — the anchor set of activation-fusion rules.
    pub const ACTIVATIONS: [OpCode; 7] = [
        OpCode::Relu,
        OpCode::Relu6,
        OpCode::Sigmoid,
        OpCode::HardSigmoid,
        OpCode::Tanh,
        OpCode::Gelu,
        OpCode::Silu,
    ];

    /// Stable dense index of this opcode in `[0, COUNT)`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`OpCode::index`].
    ///
    /// # Panics
    /// Panics if `idx >= OpCode::COUNT`.
    pub fn from_index(idx: usize) -> OpCode {
        Self::ALL[idx]
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_index_roundtrip() {
        for (i, &code) in OpCode::ALL.iter().enumerate() {
            assert_eq!(code.index(), i);
            assert_eq!(OpCode::from_index(i), code);
        }
    }

    #[test]
    fn conv_builder_sets_attrs() {
        let c = ConvAttrs::new(3, 64, 7).stride(2).padding(3).bias(false);
        assert_eq!(c.stride, 2);
        assert_eq!(c.padding, 3);
        assert!(!c.has_bias);
        assert_eq!(c.arity(), 1);
        let mut fused = c.clone();
        fused.fused_add = true;
        assert_eq!(fused.arity(), 2);
    }

    #[test]
    fn depthwise_sets_groups() {
        let c = ConvAttrs::depthwise(32, 3);
        assert_eq!(c.groups, 32);
        assert_eq!(c.in_channels, 32);
        assert_eq!(c.out_channels, 32);
    }

    #[test]
    fn arity_of_common_ops() {
        assert_eq!(Op::Add.arity(), Some(2));
        assert_eq!(Op::MatMul.arity(), Some(2));
        assert_eq!(Op::Identity.arity(), Some(1));
        assert_eq!(Op::Concat { axis: 1 }.arity(), None);
        assert_eq!(
            Op::Input {
                shape: Shape::from([1])
            }
            .arity(),
            Some(0)
        );
    }

    #[test]
    fn activations_are_bounded_where_expected() {
        for x in [-10.0f32, -1.0, 0.0, 1.0, 10.0] {
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
            let h = Activation::HardSigmoid.apply(x);
            assert!((0.0..=1.0).contains(&h));
            let r6 = Activation::Relu6.apply(x);
            assert!((0.0..=6.0).contains(&r6));
        }
    }

    #[test]
    fn display_is_compact() {
        let op = Op::Conv(ConvAttrs::new(64, 128, 3).stride(2));
        assert_eq!(format!("{op}"), "Conv[3x3, 64->128, s2]");
        assert_eq!(format!("{}", Op::Activation(Activation::Relu)), "Relu");
    }
}
