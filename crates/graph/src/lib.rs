//! Computational-graph intermediate representation for the Proteus
//! reproduction.
//!
//! A deep-learning model is represented as a directed acyclic graph
//! ([`Graph`]) whose nodes carry ONNX-style operators ([`Op`]) and whose
//! edges carry tensors. The crate provides everything the rest of the
//! workspace needs from an IR:
//!
//! - graph construction and surgery ([`Graph`]),
//! - cached, generation-stamped analyses for the rewrite engine
//!   ([`analysis::GraphAnalysis`], [`analysis::NodeMap`]),
//! - static shape inference ([`shape::infer_shapes`]),
//! - the graph statistics used by Proteus' sentinel sampler and by the
//!   heuristic adversary ([`stats::GraphStats`]),
//! - a reference interpreter used to verify that optimizer rewrites preserve
//!   functional semantics ([`exec::Executor`]),
//! - Graphviz DOT export ([`dot::to_dot`]) and serde serialization (the
//!   obfuscated bucket exchanged between model owner and optimizer is
//!   serialized from these types).
//!
//! # Example
//!
//! ```
//! use proteus_graph::{Graph, Op, ConvAttrs, Activation};
//!
//! let mut g = Graph::new("tiny");
//! let x = g.input([1, 3, 32, 32]);
//! let conv = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).stride(1).padding(1)), [x]);
//! let relu = g.add(Op::Activation(Activation::Relu), [conv]);
//! g.set_outputs([relu]);
//!
//! let shapes = proteus_graph::shape::infer_shapes(&g).unwrap();
//! assert_eq!(shapes[&relu].dims(), &[1, 8, 32, 32]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod exec;
pub mod graph;
pub mod op;
pub mod shape;
pub mod stats;
pub mod wire;

pub use analysis::{GraphAnalysis, NodeMap};
pub use exec::{Executor, Tensor, TensorMap};
pub use graph::{Graph, Node, NodeId};
pub use op::{
    Activation, BatchNormAttrs, ConvAlgo, ConvAttrs, GemmAttrs, LayerNormAttrs, Op, OpCode,
    PoolAttrs,
};
pub use shape::{infer_shapes, Shape};
pub use stats::GraphStats;
pub use wire::{
    decode_error_frame, decode_frame, encode_error_frame, encode_frame, encode_frame_v2,
    peek_frame_request_id, ErrorCode, ErrorFrame, Frame, WireError, ERROR_FRAME_MAGIC, FRAME_MAGIC,
    MAX_ERROR_DETAIL, WIRE_VERSION, WIRE_VERSION_V1, WIRE_VERSION_V2,
};

use std::fmt;

/// Errors produced by graph construction, validation, shape inference, and
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node references an input id that does not exist (or was removed).
    DanglingInput {
        /// Name of the referencing node.
        node: String,
        /// The missing input id.
        input: NodeId,
    },
    /// A node has the wrong number of inputs for its operator.
    BadArity {
        /// Name of the offending node.
        node: String,
        /// Human-readable description of the expected arity.
        expected: String,
        /// Number of inputs actually present.
        got: usize,
    },
    /// The graph contains a cycle.
    Cyclic,
    /// Shape inference failed at a node.
    ShapeMismatch {
        /// Name of the node where inference failed.
        node: String,
        /// What went wrong.
        detail: String,
    },
    /// Execution failed (e.g. a missing parameter tensor).
    Exec {
        /// Name of the node where execution failed.
        node: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingInput { node, input } => {
                write!(f, "node `{node}` references missing input {input:?}")
            }
            GraphError::BadArity {
                node,
                expected,
                got,
            } => {
                write!(f, "node `{node}` expects {expected} inputs, got {got}")
            }
            GraphError::Cyclic => write!(f, "graph contains a cycle"),
            GraphError::ShapeMismatch { node, detail } => {
                write!(f, "shape inference failed at `{node}`: {detail}")
            }
            GraphError::Exec { node, detail } => {
                write!(f, "execution failed at `{node}`: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
