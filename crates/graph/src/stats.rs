//! Graph statistics used by the sentinel sampler (Algorithm 1) and by
//! heuristic adversaries (paper §5.3.1, Figures 5/11).
//!
//! All metrics treat the computational graph as an *undirected* simple graph,
//! matching the paper's use of GraphRNN (which models undirected topology)
//! and its reported metrics: average degree, clustering coefficient,
//! diameter, and node count.

use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The four topology statistics Proteus matches between real and sentinel
/// subgraphs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GraphStats {
    /// Mean undirected degree, `2|E| / |V|`.
    pub avg_degree: f64,
    /// Mean local clustering coefficient.
    pub clustering: f64,
    /// Diameter of the largest connected component (in hops).
    pub diameter: f64,
    /// Number of live nodes.
    pub num_nodes: f64,
}

impl GraphStats {
    /// Computes the statistics of a graph's undirected view.
    pub fn of(graph: &Graph) -> GraphStats {
        let adj = graph.undirected_adjacency();
        Self::of_adjacency(&adj)
    }

    /// Computes the statistics from a prebuilt undirected adjacency map.
    pub fn of_adjacency(adj: &HashMap<NodeId, Vec<NodeId>>) -> GraphStats {
        let n = adj.len();
        if n == 0 {
            return GraphStats::default();
        }
        let edges2: usize = adj.values().map(|v| v.len()).sum();
        let avg_degree = edges2 as f64 / n as f64;
        GraphStats {
            avg_degree,
            clustering: average_clustering(adj),
            diameter: diameter(adj) as f64,
            num_nodes: n as f64,
        }
    }

    /// The statistics as a fixed-order feature vector
    /// `[avg_degree, clustering, diameter, num_nodes]`.
    pub fn to_vec(self) -> [f64; 4] {
        [
            self.avg_degree,
            self.clustering,
            self.diameter,
            self.num_nodes,
        ]
    }

    /// Feature names matching [`GraphStats::to_vec`] order.
    pub const FEATURE_NAMES: [&'static str; 4] =
        ["avg_degree", "clustering", "diameter", "num_nodes"];
}

/// Mean local clustering coefficient of an undirected graph.
pub fn average_clustering(adj: &HashMap<NodeId, Vec<NodeId>>) -> f64 {
    if adj.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (_, neigh) in adj.iter() {
        let k = neigh.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if adj[&neigh[i]].binary_search(&neigh[j]).is_ok() {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    total / adj.len() as f64
}

/// BFS distances from `src`; unreachable nodes are absent.
pub fn bfs_distances(adj: &HashMap<NodeId, Vec<NodeId>>, src: NodeId) -> HashMap<NodeId, usize> {
    let mut dist = HashMap::new();
    dist.insert(src, 0usize);
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[&u];
        if let Some(neigh) = adj.get(&u) {
            for &v in neigh {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    q.push_back(v);
                }
            }
        }
    }
    dist
}

/// Diameter (max eccentricity) of the largest connected component.
pub fn diameter(adj: &HashMap<NodeId, Vec<NodeId>>) -> usize {
    let component = largest_component(adj);
    let mut best = 0usize;
    for &u in &component {
        let dist = bfs_distances(adj, u);
        for (&v, &d) in &dist {
            if component.contains(&v) {
                best = best.max(d);
            }
        }
    }
    best
}

/// Returns the endpoints `(u, v)` of a diameter path of the largest
/// component, used by Algorithm 3 (orientation induction). Deterministic:
/// ties broken by node id.
pub fn diameter_endpoints(adj: &HashMap<NodeId, Vec<NodeId>>) -> Option<(NodeId, NodeId)> {
    let component = largest_component(adj);
    let mut best: Option<(usize, NodeId, NodeId)> = None;
    let mut nodes: Vec<NodeId> = component.to_vec();
    nodes.sort();
    for &u in &nodes {
        let dist = bfs_distances(adj, u);
        for &v in &nodes {
            if let Some(&d) = dist.get(&v) {
                let cand = (d, u, v);
                let better = match best {
                    None => true,
                    Some((bd, bu, bv)) => d > bd || (d == bd && (u, v) < (bu, bv)),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
    }
    best.map(|(_, u, v)| (u, v))
}

/// Nodes of the largest connected component (by size, ties by smallest id).
pub fn largest_component(adj: &HashMap<NodeId, Vec<NodeId>>) -> Vec<NodeId> {
    let mut seen: HashMap<NodeId, bool> = adj.keys().map(|&k| (k, false)).collect();
    let mut best: Vec<NodeId> = Vec::new();
    let mut keys: Vec<NodeId> = adj.keys().copied().collect();
    keys.sort();
    for &start in &keys {
        if seen[&start] {
            continue;
        }
        let dist = bfs_distances(adj, start);
        let mut comp: Vec<NodeId> = dist.keys().copied().collect();
        comp.sort();
        for &n in &comp {
            seen.insert(n, true);
        }
        if comp.len() > best.len() {
            best = comp;
        }
    }
    best
}

/// Kolmogorov–Smirnov distance between two empirical samples.
///
/// Used by the evaluation (Figure 5) to quantify how close sentinel and real
/// graph-statistic distributions are.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut xs: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    let cdf = |sample: &[f64], x: f64| -> f64 {
        sample.iter().filter(|&&v| v <= x).count() as f64 / sample.len() as f64
    };
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    sb.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    xs.iter()
        .map(|&x| (cdf(&sa, x) - cdf(&sb, x)).abs())
        .fold(0.0, f64::max)
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, Op};

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new("path");
        let mut prev = g.input([1, 8]);
        for _ in 1..n {
            prev = g.add(Op::Activation(Activation::Relu), [prev]);
        }
        g.set_outputs([prev]);
        g
    }

    fn triangle() -> Graph {
        // x -> a -> add; x -> add  (undirected triangle x-a-add)
        let mut g = Graph::new("tri");
        let x = g.input([4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Add, [x, a]);
        g.set_outputs([s]);
        g
    }

    #[test]
    fn path_stats() {
        let g = path_graph(5);
        let st = GraphStats::of(&g);
        assert_eq!(st.num_nodes, 5.0);
        assert_eq!(st.diameter, 4.0);
        assert!((st.avg_degree - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(st.clustering, 0.0);
    }

    #[test]
    fn triangle_clustering_is_one() {
        let g = triangle();
        let st = GraphStats::of(&g);
        assert!((st.clustering - 1.0).abs() < 1e-12);
        assert_eq!(st.diameter, 1.0);
        assert_eq!(st.avg_degree, 2.0);
    }

    #[test]
    fn diameter_endpoints_on_path() {
        let g = path_graph(6);
        let adj = g.undirected_adjacency();
        let (u, v) = diameter_endpoints(&adj).unwrap();
        let dist = bfs_distances(&adj, u);
        assert_eq!(dist[&v], 5);
    }

    #[test]
    fn ks_distance_extremes() {
        let a = [1.0, 2.0, 3.0];
        assert!(ks_distance(&a, &a) < 1e-12);
        let b = [100.0, 101.0];
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
        let c = [1.5, 2.5];
        let d = ks_distance(&a, &c);
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn largest_component_of_disconnected() {
        let mut g = path_graph(4);
        // isolated pair
        let i1 = g.input([2]);
        let _i2 = g.add(Op::Activation(Activation::Tanh), [i1]);
        let adj = g.undirected_adjacency();
        assert_eq!(largest_component(&adj).len(), 4);
        assert_eq!(GraphStats::of(&g).num_nodes, 6.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
