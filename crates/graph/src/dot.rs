//! Graphviz DOT export, mirroring the subgraph renderings in the paper's
//! appendix (Figures 12/13) and used by the survey harness.

use crate::graph::Graph;
use crate::op::Op;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// Operator attributes that the paper displays (kernel shape, strides,
/// padding) are included in the node labels so a rendered sentinel looks
/// exactly like the paper's survey material.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for (id, node) in graph.iter() {
        let label = match &node.op {
            Op::Conv(c) => format!(
                "Conv\\nkernel shape: {}\\nstrides: {}\\npadding: {}",
                c.kernel, c.stride, c.padding
            ),
            Op::MaxPool(p) | Op::AveragePool(p) => format!(
                "{}\\nkernel shape: {}\\nstrides: {}\\npadding: {}",
                if matches!(node.op, Op::MaxPool(_)) {
                    "MaxPool"
                } else {
                    "AveragePool"
                },
                p.kernel,
                p.stride,
                p.padding
            ),
            other => format!("{other}"),
        };
        let _ = writeln!(out, "  {} [label=\"{}\"];", id, sanitize(&label));
    }
    for (id, node) in graph.iter() {
        for &inp in &node.inputs {
            let _ = writeln!(out, "  {inp} -> {id};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, ConvAttrs};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new("dot-test");
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        g.set_outputs([r]);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("kernel shape: 3"));
        assert!(dot.contains("Relu"));
        assert!(dot.contains(&format!("{x} -> {c};")));
        assert!(dot.contains(&format!("{c} -> {r};")));
    }
}
