//! The computational graph: a DAG of operator nodes.
//!
//! Nodes are stored in an arena indexed by [`NodeId`]; removal leaves a
//! tombstone so existing ids stay valid across optimizer rewrites. All
//! traversal helpers (`topo_order`, `successors`, …) skip tombstones.

use crate::op::Op;
use crate::shape::Shape;
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within one [`Graph`].
///
/// Ids are only meaningful relative to the graph that produced them and stay
/// stable across node removals (the arena uses tombstones, not compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this id in the node arena (test/debug aid).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw arena index. Intended for deserialization and
    /// tests; using an out-of-range id with a graph returns errors rather
    /// than panicking.
    pub fn from_index(idx: usize) -> NodeId {
        NodeId(idx as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operator application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The operator computed at this node.
    pub op: Op,
    /// Ordered input edges (order matters for `Sub`, `Div`, `Conv`, …).
    pub inputs: Vec<NodeId>,
    /// Human-readable name (unique names are not enforced).
    pub name: String,
}

/// A directed acyclic computational graph.
///
/// Every mutation bumps a monotonic *generation* counter; cached analyses
/// ([`crate::analysis::GraphAnalysis`]) are stamped with the generation they
/// were computed at so stale reads can be detected. Mutations also record
/// which opcodes were involved (the mutated node and its edge neighborhood)
/// in a dirty bitmask that the worklist rewrite engine drains to decide
/// which rules need to re-run.
///
/// # Example
///
/// ```
/// use proteus_graph::{Graph, Op};
/// let mut g = Graph::new("add2");
/// let a = g.input([4]);
/// let b = g.input([4]);
/// let sum = g.add(Op::Add, [a, b]);
/// g.set_outputs([sum]);
/// assert_eq!(g.len(), 3);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Option<Node>>,
    outputs: Vec<NodeId>,
    /// Live node count (arena entries minus tombstones), maintained O(1).
    live: usize,
    /// Monotonic mutation counter; see [`Graph::generation`].
    generation: u64,
    /// Bitmask over [`crate::op::OpCode::index`] of opcodes touched by
    /// mutations since the last [`Graph::take_dirty_ops`].
    dirty_ops: u64,
}

/// Structural equality: name, arena contents, and outputs. Bookkeeping
/// fields (generation counter, dirty mask) are deliberately excluded so two
/// graphs with identical structure but different mutation histories compare
/// equal — the engine-parity tests rely on this.
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.name == other.name && self.nodes == other.nodes && self.outputs == other.outputs
    }
}

impl Graph {
    /// Creates an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Graph {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
            live: 0,
            generation: 0,
            dirty_ops: 0,
        }
    }

    /// The model/graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of live (non-removed) nodes. O(1): the count is maintained
    /// across mutations instead of scanning the arena.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Monotonic mutation counter. Bumped by every structural mutation
    /// (including [`Graph::node_mut`], which conservatively counts as one).
    /// Cached analyses compare this against the generation they were
    /// computed at to detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drains the dirty-opcode bitmask accumulated since the last call: one
    /// bit per [`crate::op::OpCode::index`] of every node involved in a
    /// mutation (the node itself plus the endpoints of every edge that
    /// changed). The worklist rewrite engine uses this to decide which rules
    /// could possibly have gained a new match.
    pub fn take_dirty_ops(&mut self) -> u64 {
        std::mem::take(&mut self.dirty_ops)
    }

    /// Marks one mutation event: bumps the generation and records `id`'s
    /// opcode (if live) in the dirty mask.
    fn touch(&mut self, id: NodeId) {
        self.generation += 1;
        self.mark(id);
    }

    /// Records `id`'s opcode in the dirty mask without bumping the
    /// generation (used for the neighborhood of a mutation).
    fn mark(&mut self, id: NodeId) {
        // The dirty mask is one u64 bit per opcode; growing past 64 opcodes
        // would silently alias bits in release builds.
        const _: () = assert!(crate::op::OpCode::COUNT <= 64);
        if let Some(node) = self.nodes.get(id.index()).and_then(|n| n.as_ref()) {
            self.dirty_ops |= 1u64 << node.op.opcode().index();
        }
    }

    /// Marks the current inputs of `id` (their use counts / consumer sets
    /// are affected by mutations of `id`).
    fn mark_inputs(&mut self, id: NodeId) {
        let inputs = match self.nodes.get(id.index()).and_then(|n| n.as_ref()) {
            Some(node) => node.inputs.clone(),
            None => return,
        };
        for inp in inputs {
            self.mark(inp);
        }
    }

    /// True when the graph has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity of the underlying arena (includes tombstones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a node computing `op` over `inputs` and returns its id.
    pub fn add<I>(&mut self, op: Op, inputs: I) -> NodeId
    where
        I: IntoIterator<Item = NodeId>,
    {
        let id = NodeId(self.nodes.len() as u32);
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        let name = format!("{}_{}", op_base_name(&op), id.0);
        self.nodes.push(Some(Node { op, inputs, name }));
        self.live += 1;
        self.touch(id);
        self.mark_inputs(id);
        id
    }

    /// Adds a named node.
    pub fn add_named<I>(&mut self, op: Op, inputs: I, name: impl Into<String>) -> NodeId
    where
        I: IntoIterator<Item = NodeId>,
    {
        let id = self.add(op, inputs);
        self.nodes[id.index()].as_mut().expect("just added").name = name.into();
        id
    }

    /// Convenience: adds an [`Op::Input`] placeholder with the given shape.
    pub fn input(&mut self, shape: impl Into<Shape>) -> NodeId {
        self.add(
            Op::Input {
                shape: shape.into(),
            },
            [],
        )
    }

    /// Convenience: adds an [`Op::Constant`] with the given shape. The value
    /// lives in a separate [`crate::TensorMap`].
    pub fn constant(&mut self, shape: impl Into<Shape>) -> NodeId {
        self.add(
            Op::Constant {
                shape: shape.into(),
            },
            [],
        )
    }

    /// Declares the graph outputs (replacing any previous declaration).
    pub fn set_outputs<I>(&mut self, outputs: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let old = std::mem::replace(&mut self.outputs, outputs.into_iter().collect());
        self.generation += 1;
        for out in old {
            self.mark(out);
        }
        let new: Vec<NodeId> = self.outputs.clone();
        for out in new {
            self.mark(out);
        }
    }

    /// The declared graph outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).and_then(|n| n.as_ref())
    }

    /// Mutable lookup. Conservatively counts as a mutation of `id` and its
    /// current edge neighborhood (the caller may change the op or inputs).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        if self.contains(id) {
            self.touch(id);
            self.mark_inputs(id);
        }
        self.nodes.get_mut(id.index()).and_then(|n| n.as_mut())
    }

    /// Returns the operator at `id`.
    ///
    /// # Panics
    /// Panics if the node does not exist; use [`Graph::node`] for fallible
    /// access.
    pub fn op(&self, id: NodeId) -> &Op {
        &self.node(id).expect("node exists").op
    }

    /// True if `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.node(id).is_some()
    }

    /// Removes a node, leaving a tombstone. Edges pointing at the node are
    /// *not* rewritten; callers (the optimizer) must reroute uses first.
    pub fn remove(&mut self, id: NodeId) {
        if !self.contains(id) {
            return;
        }
        self.touch(id);
        self.mark_inputs(id);
        if let Some(slot) = self.nodes.get_mut(id.index()) {
            *slot = None;
            self.live -= 1;
        }
    }

    /// Replaces every use of `old` (as an input of any node, and as a graph
    /// output) with `new`.
    pub fn replace_uses(&mut self, old: NodeId, new: NodeId) {
        self.touch(old);
        self.mark(new);
        let mut rewritten: Vec<NodeId> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let Some(node) = node else { continue };
            let mut changed = false;
            for inp in &mut node.inputs {
                if *inp == old {
                    *inp = new;
                    changed = true;
                }
            }
            if changed {
                rewritten.push(NodeId(i as u32));
            }
        }
        for id in rewritten {
            self.mark(id);
        }
        for out in &mut self.outputs {
            if *out == old {
                *out = new;
            }
        }
    }

    /// Iterates over `(id, node)` pairs of live nodes in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|node| (NodeId(i as u32), node)))
    }

    /// Ids of all live nodes in arena order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// Number of directed edges between live nodes.
    pub fn edge_count(&self) -> usize {
        self.iter().map(|(_, n)| n.inputs.len()).sum()
    }

    /// Computes, for every live node, the list of nodes that consume it.
    pub fn successors(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut succ: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (id, _) in self.iter() {
            succ.entry(id).or_default();
        }
        for (id, node) in self.iter() {
            for &inp in &node.inputs {
                succ.entry(inp).or_default().push(id);
            }
        }
        succ
    }

    /// Number of consumers per node (fan-out).
    pub fn use_counts(&self) -> HashMap<NodeId, usize> {
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for (id, _) in self.iter() {
            counts.entry(id).or_insert(0);
        }
        for (_, node) in self.iter() {
            for &inp in &node.inputs {
                *counts.entry(inp).or_insert(0) += 1;
            }
        }
        for &out in &self.outputs {
            *counts.entry(out).or_insert(0) += 1;
        }
        counts
    }

    /// Returns live node ids in a topological order (inputs before users).
    ///
    /// # Errors
    /// Returns [`GraphError::Cyclic`] if the graph has a cycle and
    /// [`GraphError::DanglingInput`] if an edge points at a removed node.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        for (id, node) in self.iter() {
            for &inp in &node.inputs {
                if !self.contains(inp) {
                    return Err(GraphError::DanglingInput {
                        node: node.name.clone(),
                        input: inp,
                    });
                }
            }
            indegree.insert(id, node.inputs.len());
        }
        let succ = self.successors();
        let mut ready: Vec<NodeId> = indegree
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(indegree.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            if let Some(users) = succ.get(&id) {
                for &u in users {
                    let d = indegree.get_mut(&u).expect("live node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(u);
                    }
                }
            }
        }
        if order.len() != indegree.len() {
            return Err(GraphError::Cyclic);
        }
        Ok(order)
    }

    /// Validates structural invariants: edges resolve, arities match, the
    /// graph is acyclic, and declared outputs exist.
    pub fn validate(&self) -> Result<()> {
        for (_, node) in self.iter() {
            match node.op.arity() {
                Some(k) if node.inputs.len() != k => {
                    return Err(GraphError::BadArity {
                        node: node.name.clone(),
                        expected: k.to_string(),
                        got: node.inputs.len(),
                    });
                }
                None if node.inputs.len() < 2 => {
                    return Err(GraphError::BadArity {
                        node: node.name.clone(),
                        expected: ">=2".to_string(),
                        got: node.inputs.len(),
                    });
                }
                _ => {}
            }
        }
        for &out in &self.outputs {
            if !self.contains(out) {
                return Err(GraphError::DanglingInput {
                    node: format!("<outputs of {}>", self.name),
                    input: out,
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Undirected adjacency over live nodes (deduplicated, no self-loops),
    /// as used by the graph statistics and the GraphRNN sequencer.
    pub fn undirected_adjacency(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (id, _) in self.iter() {
            adj.entry(id).or_default();
        }
        for (id, node) in self.iter() {
            for &inp in &node.inputs {
                if inp != id && self.contains(inp) {
                    adj.entry(id).or_default().push(inp);
                    adj.entry(inp).or_default().push(id);
                }
            }
        }
        for list in adj.values_mut() {
            list.sort();
            list.dedup();
        }
        adj
    }

    /// Builds a compacted copy of this graph: tombstones are dropped and node
    /// ids renumbered densely. Returns the copy and the old→new id mapping.
    pub fn compact(&self) -> (Graph, HashMap<NodeId, NodeId>) {
        let mut mapping = HashMap::new();
        let mut out = Graph::new(self.name.clone());
        for (id, node) in self.iter() {
            let new_id = NodeId(out.nodes.len() as u32);
            mapping.insert(id, new_id);
            out.nodes.push(Some(node.clone()));
            out.live += 1;
        }
        for node in out.nodes.iter_mut().flatten() {
            for inp in &mut node.inputs {
                if let Some(&m) = mapping.get(inp) {
                    *inp = m;
                }
            }
        }
        out.outputs = self
            .outputs
            .iter()
            .filter_map(|o| mapping.get(o).copied())
            .collect();
        (out, mapping)
    }

    /// Removes nodes not reachable (backwards) from the declared outputs.
    /// Returns the number of nodes removed. `Input` nodes are always kept so
    /// the external calling convention is preserved.
    pub fn prune_dead(&mut self) -> usize {
        let mut live: Vec<bool> = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if live[id.index()] || !self.contains(id) {
                continue;
            }
            live[id.index()] = true;
            stack.extend(self.node(id).expect("live").inputs.iter().copied());
        }
        let mut victims: Vec<NodeId> = Vec::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            let keep = match slot {
                Some(n) => live[i] || matches!(n.op, Op::Input { .. }),
                None => continue,
            };
            if !keep {
                victims.push(NodeId(i as u32));
            }
        }
        for &v in &victims {
            self.remove(v);
        }
        victims.len()
    }
}

fn op_base_name(op: &Op) -> &'static str {
    match op {
        Op::Input { .. } => "input",
        Op::Constant { .. } => "const",
        Op::Conv(_) => "conv",
        Op::Gemm(_) => "gemm",
        Op::MatMul => "matmul",
        Op::MatMulT => "matmul_t",
        Op::BatchNorm(_) => "bn",
        Op::LayerNorm(_) => "ln",
        Op::SkipLayerNorm(_) => "skip_ln",
        Op::Activation(_) => "act",
        Op::Softmax { .. } => "softmax",
        Op::Add => "add",
        Op::Sub => "sub",
        Op::Mul => "mul",
        Op::Div => "div",
        Op::AddAct(_) => "add_act",
        Op::MaxPool(_) => "maxpool",
        Op::AveragePool(_) => "avgpool",
        Op::GlobalAveragePool => "gap",
        Op::Concat { .. } => "concat",
        Op::Flatten => "flatten",
        Op::Reshape { .. } => "reshape",
        Op::Transpose { .. } => "transpose",
        Op::Identity => "id",
        Op::Dropout { .. } => "dropout",
        Op::ReduceMean { .. } => "reduce_mean",
        Op::Gather { .. } => "gather",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, ConvAttrs};

    fn diamond() -> (Graph, [NodeId; 4]) {
        // x -> relu -> add <- sigmoid <- x
        let mut g = Graph::new("diamond");
        let x = g.input([1, 8]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Activation(Activation::Sigmoid), [x]);
        let a = g.add(Op::Add, [r, s]);
        g.set_outputs([a]);
        (g, [x, r, s, a])
    }

    #[test]
    fn construction_and_lookup() {
        let (g, [x, r, _, a]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node(r).unwrap().inputs, vec![x]);
        assert_eq!(g.outputs(), &[a]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in g.iter() {
            for &inp in &node.inputs {
                assert!(pos[&inp] < pos[&id], "{inp} must precede {id}");
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let (mut g, [x, r, _, a]) = diamond();
        // create cycle: route relu's input from the add output
        g.node_mut(r).unwrap().inputs = vec![a];
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
        g.node_mut(r).unwrap().inputs = vec![x];
        assert!(g.topo_order().is_ok());
    }

    #[test]
    fn removal_leaves_tombstone_and_dangling_detected() {
        let (mut g, [_, r, _, _]) = diamond();
        g.remove(r);
        assert_eq!(g.len(), 3);
        assert!(matches!(
            g.topo_order(),
            Err(GraphError::DanglingInput { .. })
        ));
    }

    #[test]
    fn replace_uses_rewrites_edges_and_outputs() {
        let (mut g, [x, r, s, a]) = diamond();
        g.replace_uses(r, x);
        g.remove(r);
        assert!(g.validate().is_ok());
        assert_eq!(g.node(a).unwrap().inputs, vec![x, s]);
        g.replace_uses(a, s);
        assert_eq!(g.outputs(), &[s]);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut g = Graph::new("bad");
        let x = g.input([4]);
        let add = g.add(Op::Add, [x]); // Add wants 2 inputs
        g.set_outputs([add]);
        assert!(matches!(g.validate(), Err(GraphError::BadArity { .. })));
    }

    #[test]
    fn compact_renumbers_densely() {
        let (mut g, [x, r, s, a]) = diamond();
        g.replace_uses(r, x);
        g.remove(r);
        let (c, mapping) = g.compact();
        assert_eq!(c.len(), 3);
        assert_eq!(c.arena_len(), 3);
        assert!(c.validate().is_ok());
        assert!(!mapping.contains_key(&r));
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(mapping[&a], c.outputs()[0]);
        let _ = mapping[&s];
    }

    #[test]
    fn prune_dead_removes_unreachable_but_keeps_inputs() {
        let (mut g, [x, _, _, a]) = diamond();
        let orphan = g.add(Op::Activation(Activation::Tanh), [x]);
        assert_eq!(g.len(), 5);
        let removed = g.prune_dead();
        assert_eq!(removed, 1);
        assert!(!g.contains(orphan));
        assert!(g.contains(a));
        assert!(g.contains(x));
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let (g, _) = diamond();
        let adj = g.undirected_adjacency();
        for (&u, neighbors) in &adj {
            for v in neighbors {
                assert!(adj[v].contains(&u));
                assert_ne!(*v, u);
            }
        }
    }

    #[test]
    fn successors_inverse_of_inputs() {
        let (g, [x, r, s, a]) = diamond();
        let succ = g.successors();
        let mut xs = succ[&x].clone();
        xs.sort();
        assert_eq!(xs, vec![r, s]);
        assert_eq!(succ[&r], vec![a]);
        assert!(succ[&a].is_empty());
    }

    #[test]
    fn use_counts_include_outputs() {
        let (g, [x, r, s, a]) = diamond();
        let uses = g.use_counts();
        assert_eq!(uses[&x], 2);
        assert_eq!(uses[&r], 1);
        assert_eq!(uses[&s], 1);
        assert_eq!(uses[&a], 1); // graph output counts as a use
    }

    #[test]
    fn live_count_tracks_mutations() {
        let (mut g, [x, r, _, a]) = diamond();
        let scan = |g: &Graph| g.iter().count();
        assert_eq!(g.len(), scan(&g));
        g.remove(r);
        assert_eq!(g.len(), 3);
        assert_eq!(g.len(), scan(&g));
        g.remove(r); // double remove is a no-op
        assert_eq!(g.len(), 3);
        let t = g.add(Op::Activation(Activation::Tanh), [x]);
        assert_eq!(g.len(), 4);
        g.replace_uses(a, t);
        g.prune_dead();
        assert_eq!(g.len(), scan(&g));
        let (c, _) = g.compact();
        assert_eq!(c.len(), scan(&c));
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let (mut g, [x, r, _, _]) = diamond();
        let mut last = g.generation();
        let mut expect_bump = |g: &Graph, what: &str| {
            assert!(g.generation() > last, "{what} must bump the generation");
            last = g.generation();
        };
        g.add(Op::Identity, [x]);
        expect_bump(&g, "add");
        g.node_mut(r).unwrap();
        expect_bump(&g, "node_mut");
        g.replace_uses(r, x);
        expect_bump(&g, "replace_uses");
        g.remove(r);
        expect_bump(&g, "remove");
        g.set_outputs([x]);
        expect_bump(&g, "set_outputs");
        let gen = g.generation();
        let _ = g.node(x); // reads do not bump
        let _ = g.len();
        assert_eq!(g.generation(), gen);
    }

    #[test]
    fn dirty_ops_record_mutation_neighborhood() {
        use crate::op::OpCode;
        let bit = |c: OpCode| 1u64 << c.index();
        let (mut g, [x, r, s, a]) = diamond();
        let _ = g.take_dirty_ops();
        assert_eq!(g.take_dirty_ops(), 0, "drained mask stays clear on reads");
        // removing the add dirties it and its inputs (relu, sigmoid)
        g.remove(a);
        let mask = g.take_dirty_ops();
        assert_ne!(mask & bit(OpCode::Add), 0);
        assert_ne!(mask & bit(OpCode::Relu), 0);
        assert_ne!(mask & bit(OpCode::Sigmoid), 0);
        assert_eq!(mask & bit(OpCode::Input), 0);
        // rerouting relu's consumers dirties relu, the replacement, and the
        // rewritten consumers
        g.replace_uses(r, s);
        let mask = g.take_dirty_ops();
        assert_ne!(mask & bit(OpCode::Relu), 0);
        assert_ne!(mask & bit(OpCode::Sigmoid), 0);
        // node_mut conservatively dirties the node and its inputs
        g.node_mut(s).unwrap();
        let mask = g.take_dirty_ops();
        assert_ne!(mask & bit(OpCode::Sigmoid), 0);
        assert_ne!(mask & bit(OpCode::Input), 0);
        let _ = x;
    }

    #[test]
    fn structural_equality_ignores_history() {
        let (a, _) = diamond();
        let (mut b, [x, r, _, _]) = diamond();
        // extra mutations that restore the same structure
        b.node_mut(r).unwrap().inputs = vec![x];
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b, "same structure must compare equal");
        b.remove(r);
        assert_ne!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let (g, _) = diamond();
        let conv_g = {
            let mut g2 = Graph::new("c");
            let x = g2.input([1, 3, 8, 8]);
            let c = g2.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
            g2.set_outputs([c]);
            g2
        };
        for graph in [&g, &conv_g] {
            let ser = serde_json_like(graph);
            assert!(!ser.is_empty());
        }
    }

    // serde_json is not in the allowed dependency set; exercise Serialize via
    // the compact self-describing debug of the serde data model instead.
    fn serde_json_like(g: &Graph) -> String {
        // bincode/json unavailable: round-trip through serde's derived
        // Serialize by cloning and comparing (structural identity).
        let clone = g.clone();
        assert_eq!(&clone, g);
        format!("{clone:?}")
    }
}
