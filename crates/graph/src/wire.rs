//! Binary wire codec for graphs and parameter stores, plus the versioned
//! frame layer that every artifact crossing the trust boundary is wrapped
//! in.
//!
//! The obfuscated bucket is the artifact that actually crosses the trust
//! boundary between model owner and optimizer (and that an adversary
//! intercepts, per the paper's threat model §3.1), so it needs a concrete
//! byte format. Graphs and parameter stores use a compact little-endian
//! tag-length-value encoding; per-bucket payloads are wrapped in a
//! [`Frame`] carrying a magic number, a wire-protocol version, the bucket
//! index, and a payload checksum, so that a peer can stream buckets one at
//! a time, reject frames from unknown protocol versions explicitly
//! ([`WireError::UnknownVersion`]), and detect in-flight corruption
//! ([`WireError::ChecksumMismatch`]) without ever panicking.

use crate::exec::{Tensor, TensorMap};
use crate::graph::{Graph, Node, NodeId};
use crate::op::{
    Activation, BatchNormAttrs, ConvAlgo, ConvAttrs, GemmAttrs, LayerNormAttrs, Op, PoolAttrs,
};
use crate::shape::Shape;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes opening every [`Frame`].
pub const FRAME_MAGIC: [u8; 4] = *b"PRTB";

/// The original single-request frame version: no request id, one
/// obfuscation request per byte stream. Still encoded by
/// [`encode_frame`] and still accepted by [`decode_frame`] — existing
/// single-request byte formats are stable across the v2 protocol bump.
pub const WIRE_VERSION_V1: u16 = 1;

/// The multiplexed frame version: the header carries a `request_id`, so
/// one byte stream can interleave frames of many concurrent requests
/// (encoded by [`encode_frame_v2`]).
pub const WIRE_VERSION_V2: u16 = 2;

/// The newest wire-protocol version this library speaks. Decoders accept
/// [`WIRE_VERSION_V1`] and [`WIRE_VERSION_V2`] and reject every other
/// version with [`WireError::UnknownVersion`] — version negotiation is
/// explicit, never a silent misparse.
pub const WIRE_VERSION: u16 = WIRE_VERSION_V2;

/// Decoding error. Every malformed input maps to a typed variant — decode
/// paths never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the named field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A field decoded to an impossible value (bad tag, out-of-range id,
    /// implausible count, invalid UTF-8, ...).
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A frame did not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// A frame was produced by a wire-protocol version this library does
    /// not speak.
    UnknownVersion {
        /// Version found in the frame header.
        got: u16,
        /// Newest version this library supports.
        supported: u16,
    },
    /// A frame's payload checksum did not match its header — the bytes
    /// were corrupted in flight.
    ChecksumMismatch {
        /// Checksum the header claimed.
        expected: u64,
        /// Checksum the received bytes hash to.
        got: u64,
    },
}

impl WireError {
    /// Shorthand for [`WireError::Truncated`].
    pub fn truncated(context: impl Into<String>) -> WireError {
        WireError::Truncated {
            context: context.into(),
        }
    }

    /// Shorthand for [`WireError::Malformed`].
    pub fn malformed(detail: impl Into<String>) -> WireError {
        WireError::Malformed {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "wire decode error: truncated input reading {context}")
            }
            WireError::Malformed { detail } => write!(f, "wire decode error: {detail}"),
            WireError::BadMagic { got } => {
                write!(f, "wire decode error: bad frame magic {got:02x?}")
            }
            WireError::UnknownVersion { got, supported } => write!(
                f,
                "wire decode error: unknown wire version {got} (this library speaks versions up to {supported})"
            ),
            WireError::ChecksumMismatch { expected, got } => write!(
                f,
                "wire decode error: payload checksum mismatch (header says {expected:#018x}, payload hashes to {got:#018x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

type WResult<T> = std::result::Result<T, WireError>;

fn need(buf: &impl Buf, n: usize, what: &str) -> WResult<()> {
    if buf.remaining() < n {
        Err(WireError::truncated(what))
    } else {
        Ok(())
    }
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over `data` — the frame payload checksum. Not cryptographic (the
/// threat model's adversary is honest-but-curious, §3.1); it exists to
/// catch transport corruption deterministically.
pub fn fnv1a64(data: &[u8]) -> u64 {
    fnv1a64_continue(FNV_OFFSET_BASIS, data)
}

/// Feeds more bytes into a running FNV-1a state — the framing code hashes
/// header fields and payload incrementally instead of copying them into
/// one buffer, and the durable store chains record digests by seeding
/// each record's hash with the previous record's digest.
pub fn fnv1a64_continue(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Caps an untrusted element count for pre-allocation: never reserve more
/// elements than the remaining bytes could possibly encode (at `min_bytes`
/// encoded bytes per element). The decode loop still reads the full
/// declared count — a lying header hits a typed [`WireError::Truncated`]
/// instead of demanding a multi-GiB allocation first.
fn bounded_capacity(count: usize, buf: &impl Buf, min_bytes: usize) -> usize {
    count.min(buf.remaining() / min_bytes.max(1))
}

/// One decoded wire frame: header fields plus the raw payload (the payload
/// codec is the caller's concern — for Proteus it is a sealed bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the frame was encoded with ([`WIRE_VERSION_V1`]
    /// or [`WIRE_VERSION_V2`] after a successful decode).
    pub version: u16,
    /// Which request of a multiplexed stream this frame belongs to.
    /// Version-1 frames carry no request id on the wire and decode to `0`.
    pub request_id: u64,
    /// Which bucket of the obfuscated model this frame carries.
    pub bucket_index: u32,
    /// The checksummed payload bytes.
    pub payload: Bytes,
}

/// Wraps `payload` in a version-1 frame:
///
/// ```text
/// magic[4] | version u16 | bucket_index u32 | payload_len u32 |
/// checksum u64 | payload
/// ```
///
/// The checksum is FNV-1a over the header fields after the magic
/// (version, bucket index, payload length) followed by the payload, so
/// single-byte corruption anywhere outside the checksum field itself is
/// detected (and corruption *of* the checksum field trivially mismatches).
///
/// This remains the encoding of every single-request artifact, so those
/// byte formats are stable across the v2 protocol addition; multiplexed
/// streams use [`encode_frame_v2`].
///
/// # Panics
/// If `payload` exceeds `u32::MAX` bytes — the length field could not
/// represent it and the frame would be undecodable. Buckets are bounded
/// far below this by partitioning; hitting it is a caller bug, not a
/// wire condition.
pub fn encode_frame(bucket_index: u32, payload: &[u8]) -> Bytes {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload of {} bytes exceeds the u32 length field",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(22 + payload.len());
    buf.put_slice(&FRAME_MAGIC);
    buf.put_u16_le(WIRE_VERSION_V1);
    buf.put_u32_le(bucket_index);
    buf.put_u32_le(payload.len() as u32);
    let h = fnv1a64_continue(FNV_OFFSET_BASIS, &buf[4..14]);
    buf.put_u64_le(fnv1a64_continue(h, payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Wraps `payload` in a version-2 *multiplexed* frame:
///
/// ```text
/// magic[4] | version u16 | request_id u64 | bucket_index u32 |
/// payload_len u32 | checksum u64 | payload
/// ```
///
/// The request id sits in the checksummed header, so one byte stream can
/// carry interleaved frames of many concurrent requests and a receiver
/// can demultiplex them — corruption of the id is caught like any other
/// header corruption.
///
/// # Panics
/// As [`encode_frame`], if `payload` exceeds `u32::MAX` bytes.
pub fn encode_frame_v2(request_id: u64, bucket_index: u32, payload: &[u8]) -> Bytes {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload of {} bytes exceeds the u32 length field",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(30 + payload.len());
    buf.put_slice(&FRAME_MAGIC);
    buf.put_u16_le(WIRE_VERSION_V2);
    buf.put_u64_le(request_id);
    buf.put_u32_le(bucket_index);
    buf.put_u32_le(payload.len() as u32);
    let h = fnv1a64_continue(FNV_OFFSET_BASIS, &buf[4..22]);
    buf.put_u64_le(fnv1a64_continue(h, payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Reads the request id out of a frame header without decoding — or
/// checksum-verifying — the payload: the cheap peek a demultiplexing
/// router needs to pick the owning lane before handing the untouched
/// bytes on for full validation. v1 frames carry no id and peek as `0`.
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::UnknownVersion`] /
/// [`WireError::Truncated`] for headers too malformed to route.
pub fn peek_frame_request_id(data: &[u8]) -> WResult<u64> {
    if data.len() < 6 {
        return Err(WireError::truncated("frame header peek"));
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&data[0..4]);
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    match u16::from_le_bytes([data[4], data[5]]) {
        WIRE_VERSION_V1 => Ok(0),
        WIRE_VERSION_V2 => {
            if data.len() < 14 {
                return Err(WireError::truncated("frame request id"));
            }
            let mut id = [0u8; 8];
            id.copy_from_slice(&data[6..14]);
            Ok(u64::from_le_bytes(id))
        }
        got => Err(WireError::UnknownVersion {
            got,
            supported: WIRE_VERSION,
        }),
    }
}

/// Decodes one frame from the front of `buf`, leaving any trailing bytes
/// (a stream of frames decodes by repeated calls). Accepts both
/// [`WIRE_VERSION_V1`] and [`WIRE_VERSION_V2`] frames — a v2 receiver
/// stays backward compatible with v1 senders.
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::UnknownVersion`] /
/// [`WireError::ChecksumMismatch`] for the respective header violations,
/// [`WireError::Truncated`] when the buffer ends early.
pub fn decode_frame(buf: &mut Bytes) -> WResult<Frame> {
    need(buf, 4, "frame magic")?;
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf.split_to(4));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    need(buf, 2, "frame version")?;
    let version = buf.get_u16_le();
    if version != WIRE_VERSION_V1 && version != WIRE_VERSION_V2 {
        return Err(WireError::UnknownVersion {
            got: version,
            supported: WIRE_VERSION,
        });
    }
    let request_id = if version == WIRE_VERSION_V2 {
        need(buf, 8, "frame request id")?;
        buf.get_u64_le()
    } else {
        0
    };
    need(buf, 4 + 4 + 8, "frame header")?;
    let bucket_index = buf.get_u32_le();
    let payload_len = buf.get_u32_le() as usize;
    let checksum = buf.get_u64_le();
    need(buf, payload_len, "frame payload")?;
    let payload = buf.split_to(payload_len);
    let mut h = fnv1a64_continue(FNV_OFFSET_BASIS, &version.to_le_bytes());
    if version == WIRE_VERSION_V2 {
        h = fnv1a64_continue(h, &request_id.to_le_bytes());
    }
    h = fnv1a64_continue(h, &bucket_index.to_le_bytes());
    h = fnv1a64_continue(h, &(payload_len as u32).to_le_bytes());
    let got = fnv1a64_continue(h, &payload);
    if got != checksum {
        return Err(WireError::ChecksumMismatch {
            expected: checksum,
            got,
        });
    }
    Ok(Frame {
        version,
        request_id,
        bucket_index,
        payload,
    })
}

/// Magic bytes opening every [`ErrorFrame`] on the wire. Distinct from
/// [`FRAME_MAGIC`] so a receiver can tell data from errors after reading
/// four bytes, before committing to a header layout.
pub const ERROR_FRAME_MAGIC: [u8; 4] = *b"PRTE";

/// Largest error-frame detail string a decoder will accept. Details are
/// human-oriented diagnostics, not payloads; anything bigger is a
/// malformed length field, not a legitimate message.
pub const MAX_ERROR_DETAIL: usize = 64 * 1024;

/// Typed reason codes carried by [`ErrorFrame`]s — the service-level error
/// taxonomy, flattened to stable `u16` values so failures cross the trust
/// boundary as values a client can match on instead of as dropped
/// connections. Codes 1–11 mirror the core `ProteusError` variants; codes
/// 12–18 are service conditions that only exist at the network boundary
/// (handshake rejection, admission control, shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Invalid obfuscation configuration on the serving side.
    Config = 1,
    /// Graph partitioning failed for the request.
    Partition = 2,
    /// A frame failed wire decoding (truncation, corruption, bad magic).
    Wire = 3,
    /// Graph validation or execution failed.
    Graph = 4,
    /// A protocol invariant was violated (wrong lane, recv on idle lane).
    Protocol = 5,
    /// The same bucket index was submitted twice for one request.
    DuplicateFrame = 6,
    /// A persistent artifact could not be loaded or verified.
    Artifact = 7,
    /// A serving worker crashed while optimizing the frame.
    WorkerCrashed = 8,
    /// The request missed its latency deadline.
    Deadline = 9,
    /// No healthy replica was available to take the request.
    ReplicaUnavailable = 10,
    /// The request was retried to exhaustion across replicas.
    RetriesExhausted = 11,
    /// Handshake rejected: peer speaks an unsupported protocol version.
    VersionMismatch = 12,
    /// Handshake rejected: the tenant auth token is not recognised.
    BadAuth = 13,
    /// Handshake rejected: the client expects a different trained
    /// artifact than the one the server warm-started from.
    FingerprintMismatch = 14,
    /// Admission rejected: the tenant exceeded its concurrent-request
    /// quota.
    QuotaExceeded = 15,
    /// Admission rejected: the server is at its connection limit.
    ConnectionLimit = 16,
    /// The server is draining for shutdown and accepts no new requests.
    Shutdown = 17,
    /// Any other server-side failure.
    Internal = 18,
}

impl ErrorCode {
    /// Every defined code, in ascending wire-value order.
    pub const ALL: [ErrorCode; 18] = [
        ErrorCode::Config,
        ErrorCode::Partition,
        ErrorCode::Wire,
        ErrorCode::Graph,
        ErrorCode::Protocol,
        ErrorCode::DuplicateFrame,
        ErrorCode::Artifact,
        ErrorCode::WorkerCrashed,
        ErrorCode::Deadline,
        ErrorCode::ReplicaUnavailable,
        ErrorCode::RetriesExhausted,
        ErrorCode::VersionMismatch,
        ErrorCode::BadAuth,
        ErrorCode::FingerprintMismatch,
        ErrorCode::QuotaExceeded,
        ErrorCode::ConnectionLimit,
        ErrorCode::Shutdown,
        ErrorCode::Internal,
    ];

    /// The stable wire value of this code.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value back to a typed code. Unknown values are a
    /// decode error, not a silent `Internal` — a peer speaking a newer
    /// taxonomy must be surfaced, per the same explicit-rejection policy
    /// as [`WireError::UnknownVersion`].
    pub fn from_u16(v: u16) -> WResult<ErrorCode> {
        ErrorCode::ALL
            .iter()
            .copied()
            .find(|c| c.as_u16() == v)
            .ok_or_else(|| WireError::malformed(format!("unknown error code {v}")))
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Config => "config",
            ErrorCode::Partition => "partition",
            ErrorCode::Wire => "wire",
            ErrorCode::Graph => "graph",
            ErrorCode::Protocol => "protocol",
            ErrorCode::DuplicateFrame => "duplicate-frame",
            ErrorCode::Artifact => "artifact",
            ErrorCode::WorkerCrashed => "worker-crashed",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ReplicaUnavailable => "replica-unavailable",
            ErrorCode::RetriesExhausted => "retries-exhausted",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::BadAuth => "bad-auth",
            ErrorCode::FingerprintMismatch => "fingerprint-mismatch",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::ConnectionLimit => "connection-limit",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A server→client error notification: which request failed, a typed
/// reason code, and a human-oriented detail string. Encoded with
/// [`encode_error_frame`]; carried on the same byte stream as data
/// frames, distinguished by [`ERROR_FRAME_MAGIC`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request the failure belongs to; `0` for connection-level
    /// failures that predate any request (handshake rejection).
    pub request_id: u64,
    /// The typed reason.
    pub code: ErrorCode,
    /// Human-oriented diagnostic detail (UTF-8, possibly empty).
    pub detail: String,
}

impl ErrorFrame {
    /// Builds an error frame.
    pub fn new(request_id: u64, code: ErrorCode, detail: impl Into<String>) -> ErrorFrame {
        ErrorFrame {
            request_id,
            code,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "remote error [{}] on request {}: {}",
            self.code, self.request_id, self.detail
        )
    }
}

/// Encodes an [`ErrorFrame`]:
///
/// ```text
/// magic[4]="PRTE" | version u16 | request_id u64 | code u16 |
/// detail_len u32 | checksum u64 | detail bytes
/// ```
///
/// The checksum is FNV-1a over the header fields after the magic
/// (version, request id, code, detail length) followed by the detail
/// bytes, mirroring the data-frame checksum so single-byte corruption
/// anywhere is detected. Details longer than [`MAX_ERROR_DETAIL`] are
/// truncated on encode — an error report must never itself become
/// undecodable.
pub fn encode_error_frame(frame: &ErrorFrame) -> Bytes {
    let detail = frame.detail.as_bytes();
    let detail = &detail[..floor_char_boundary(&frame.detail, detail.len().min(MAX_ERROR_DETAIL))];
    let mut buf = BytesMut::with_capacity(28 + detail.len());
    buf.put_slice(&ERROR_FRAME_MAGIC);
    buf.put_u16_le(WIRE_VERSION_V2);
    buf.put_u64_le(frame.request_id);
    buf.put_u16_le(frame.code.as_u16());
    buf.put_u32_le(detail.len() as u32);
    let h = fnv1a64_continue(FNV_OFFSET_BASIS, &buf[4..20]);
    buf.put_u64_le(fnv1a64_continue(h, detail));
    buf.put_slice(detail);
    buf.freeze()
}

/// Largest UTF-8 boundary at or below `at` (stable substitute for the
/// unstable `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Decodes one [`ErrorFrame`] from the front of `buf`, leaving any
/// trailing bytes.
///
/// # Errors
/// [`WireError::BadMagic`] when the buffer does not open with
/// [`ERROR_FRAME_MAGIC`], [`WireError::UnknownVersion`] for versions other
/// than [`WIRE_VERSION_V2`], [`WireError::Malformed`] for unknown codes,
/// implausible detail lengths, or invalid UTF-8,
/// [`WireError::ChecksumMismatch`] for corrupted bytes, and
/// [`WireError::Truncated`] when the buffer ends early.
pub fn decode_error_frame(buf: &mut Bytes) -> WResult<ErrorFrame> {
    need(buf, 4, "error frame magic")?;
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf.split_to(4));
    if magic != ERROR_FRAME_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    need(buf, 2, "error frame version")?;
    let version = buf.get_u16_le();
    if version != WIRE_VERSION_V2 {
        return Err(WireError::UnknownVersion {
            got: version,
            supported: WIRE_VERSION,
        });
    }
    need(buf, 8 + 2 + 4 + 8, "error frame header")?;
    let request_id = buf.get_u64_le();
    let code_raw = buf.get_u16_le();
    let detail_len = buf.get_u32_le() as usize;
    let checksum = buf.get_u64_le();
    if detail_len > MAX_ERROR_DETAIL {
        return Err(WireError::malformed(format!(
            "implausible error detail length {detail_len}"
        )));
    }
    need(buf, detail_len, "error frame detail")?;
    let detail_bytes = buf.split_to(detail_len);
    let mut h = fnv1a64_continue(FNV_OFFSET_BASIS, &version.to_le_bytes());
    h = fnv1a64_continue(h, &request_id.to_le_bytes());
    h = fnv1a64_continue(h, &code_raw.to_le_bytes());
    h = fnv1a64_continue(h, &(detail_len as u32).to_le_bytes());
    let got = fnv1a64_continue(h, &detail_bytes);
    if got != checksum {
        return Err(WireError::ChecksumMismatch {
            expected: checksum,
            got,
        });
    }
    let code = ErrorCode::from_u16(code_raw)?;
    let detail = String::from_utf8(detail_bytes.to_vec())
        .map_err(|_| WireError::malformed("error detail is not valid utf8"))?;
    Ok(ErrorFrame {
        request_id,
        code,
        detail,
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> WResult<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string body")?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::malformed("invalid utf8"))
}

fn put_shape(buf: &mut BytesMut, s: &Shape) {
    buf.put_u32_le(s.rank() as u32);
    for &d in s.dims() {
        buf.put_u64_le(d as u64);
    }
}

fn get_shape(buf: &mut Bytes) -> WResult<Shape> {
    need(buf, 4, "shape rank")?;
    let rank = buf.get_u32_le() as usize;
    if rank > 64 {
        return Err(WireError::malformed(format!("implausible rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        need(buf, 8, "shape dim")?;
        dims.push(buf.get_u64_le() as usize);
    }
    Ok(Shape::new(dims))
}

fn act_tag(a: Activation) -> u8 {
    Activation::ALL
        .iter()
        .position(|&x| x == a)
        .expect("known activation") as u8
}

fn act_from(tag: u8) -> WResult<Activation> {
    Activation::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| WireError::malformed(format!("bad activation tag {tag}")))
}

fn put_conv(buf: &mut BytesMut, c: &ConvAttrs) {
    buf.put_u32_le(c.in_channels as u32);
    buf.put_u32_le(c.out_channels as u32);
    buf.put_u16_le(c.kernel as u16);
    buf.put_u16_le(c.stride as u16);
    buf.put_u16_le(c.padding as u16);
    buf.put_u32_le(c.groups as u32);
    buf.put_u8(c.has_bias as u8);
    buf.put_u8(matches!(c.algo, ConvAlgo::Winograd) as u8);
    match c.fused_act {
        Some(a) => {
            buf.put_u8(1);
            buf.put_u8(act_tag(a));
        }
        None => buf.put_u8(0),
    }
    buf.put_u8(c.fused_add as u8);
}

fn get_conv(buf: &mut Bytes) -> WResult<ConvAttrs> {
    need(buf, 4 + 4 + 2 + 2 + 2 + 4 + 3, "conv attrs")?;
    let in_channels = buf.get_u32_le() as usize;
    let out_channels = buf.get_u32_le() as usize;
    let kernel = buf.get_u16_le() as usize;
    let stride = buf.get_u16_le() as usize;
    let padding = buf.get_u16_le() as usize;
    let groups = buf.get_u32_le() as usize;
    let has_bias = buf.get_u8() != 0;
    let winograd = buf.get_u8() != 0;
    let has_act = buf.get_u8() != 0;
    let fused_act = if has_act {
        need(buf, 1, "conv act tag")?;
        Some(act_from(buf.get_u8())?)
    } else {
        None
    };
    need(buf, 1, "conv fused_add")?;
    let fused_add = buf.get_u8() != 0;
    Ok(ConvAttrs {
        in_channels,
        out_channels,
        kernel,
        stride,
        padding,
        groups,
        has_bias,
        algo: if winograd {
            ConvAlgo::Winograd
        } else {
            ConvAlgo::Direct
        },
        fused_act,
        fused_add,
    })
}

fn put_op(buf: &mut BytesMut, op: &Op) {
    match op {
        Op::Input { shape } => {
            buf.put_u8(0);
            put_shape(buf, shape);
        }
        Op::Constant { shape } => {
            buf.put_u8(1);
            put_shape(buf, shape);
        }
        Op::Conv(c) => {
            buf.put_u8(2);
            put_conv(buf, c);
        }
        Op::Gemm(g) => {
            buf.put_u8(3);
            buf.put_u64_le(g.in_features as u64);
            buf.put_u64_le(g.out_features as u64);
            buf.put_u8(g.has_bias as u8);
            match g.fused_act {
                Some(a) => {
                    buf.put_u8(1);
                    buf.put_u8(act_tag(a));
                }
                None => buf.put_u8(0),
            }
        }
        Op::MatMul => buf.put_u8(4),
        Op::MatMulT => buf.put_u8(5),
        Op::BatchNorm(b) => {
            buf.put_u8(6);
            buf.put_u64_le(b.channels as u64);
        }
        Op::LayerNorm(l) => {
            buf.put_u8(7);
            buf.put_u64_le(l.dim as u64);
        }
        Op::SkipLayerNorm(l) => {
            buf.put_u8(8);
            buf.put_u64_le(l.dim as u64);
        }
        Op::Activation(a) => {
            buf.put_u8(9);
            buf.put_u8(act_tag(*a));
        }
        Op::Softmax { axis } => {
            buf.put_u8(10);
            buf.put_i64_le(*axis as i64);
        }
        Op::Add => buf.put_u8(11),
        Op::Sub => buf.put_u8(12),
        Op::Mul => buf.put_u8(13),
        Op::Div => buf.put_u8(14),
        Op::AddAct(a) => {
            buf.put_u8(15);
            buf.put_u8(act_tag(*a));
        }
        Op::MaxPool(p) => {
            buf.put_u8(16);
            buf.put_u16_le(p.kernel as u16);
            buf.put_u16_le(p.stride as u16);
            buf.put_u16_le(p.padding as u16);
        }
        Op::AveragePool(p) => {
            buf.put_u8(17);
            buf.put_u16_le(p.kernel as u16);
            buf.put_u16_le(p.stride as u16);
            buf.put_u16_le(p.padding as u16);
        }
        Op::GlobalAveragePool => buf.put_u8(18),
        Op::Concat { axis } => {
            buf.put_u8(19);
            buf.put_u64_le(*axis as u64);
        }
        Op::Flatten => buf.put_u8(20),
        Op::Reshape { shape } => {
            buf.put_u8(21);
            put_shape(buf, shape);
        }
        Op::Transpose { perm } => {
            buf.put_u8(22);
            buf.put_u32_le(perm.len() as u32);
            for &p in perm {
                buf.put_u32_le(p as u32);
            }
        }
        Op::Identity => buf.put_u8(23),
        Op::Dropout { p } => {
            buf.put_u8(24);
            buf.put_u32_le(*p);
        }
        Op::ReduceMean { axes, keepdims } => {
            buf.put_u8(25);
            buf.put_u32_le(axes.len() as u32);
            for &a in axes {
                buf.put_u32_le(a as u32);
            }
            buf.put_u8(*keepdims as u8);
        }
        Op::Gather { vocab, dim } => {
            buf.put_u8(26);
            buf.put_u64_le(*vocab as u64);
            buf.put_u64_le(*dim as u64);
        }
    }
}

fn get_op(buf: &mut Bytes) -> WResult<Op> {
    need(buf, 1, "op tag")?;
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Op::Input {
            shape: get_shape(buf)?,
        },
        1 => Op::Constant {
            shape: get_shape(buf)?,
        },
        2 => Op::Conv(get_conv(buf)?),
        3 => {
            need(buf, 8 + 8 + 2, "gemm attrs")?;
            let in_features = buf.get_u64_le() as usize;
            let out_features = buf.get_u64_le() as usize;
            let has_bias = buf.get_u8() != 0;
            let has_act = buf.get_u8() != 0;
            let fused_act = if has_act {
                need(buf, 1, "gemm act tag")?;
                Some(act_from(buf.get_u8())?)
            } else {
                None
            };
            Op::Gemm(GemmAttrs {
                in_features,
                out_features,
                has_bias,
                fused_act,
            })
        }
        4 => Op::MatMul,
        5 => Op::MatMulT,
        6 => {
            need(buf, 8, "bn channels")?;
            Op::BatchNorm(BatchNormAttrs {
                channels: buf.get_u64_le() as usize,
            })
        }
        7 => {
            need(buf, 8, "ln dim")?;
            Op::LayerNorm(LayerNormAttrs {
                dim: buf.get_u64_le() as usize,
            })
        }
        8 => {
            need(buf, 8, "skip-ln dim")?;
            Op::SkipLayerNorm(LayerNormAttrs {
                dim: buf.get_u64_le() as usize,
            })
        }
        9 => {
            need(buf, 1, "activation tag")?;
            Op::Activation(act_from(buf.get_u8())?)
        }
        10 => {
            need(buf, 8, "softmax axis")?;
            Op::Softmax {
                axis: buf.get_i64_le() as isize,
            }
        }
        11 => Op::Add,
        12 => Op::Sub,
        13 => Op::Mul,
        14 => Op::Div,
        15 => {
            need(buf, 1, "add-act tag")?;
            Op::AddAct(act_from(buf.get_u8())?)
        }
        16 | 17 => {
            need(buf, 6, "pool attrs")?;
            let p = PoolAttrs::new(
                buf.get_u16_le() as usize,
                buf.get_u16_le() as usize,
                buf.get_u16_le() as usize,
            );
            if tag == 16 {
                Op::MaxPool(p)
            } else {
                Op::AveragePool(p)
            }
        }
        18 => Op::GlobalAveragePool,
        19 => {
            need(buf, 8, "concat axis")?;
            Op::Concat {
                axis: buf.get_u64_le() as usize,
            }
        }
        20 => Op::Flatten,
        21 => Op::Reshape {
            shape: get_shape(buf)?,
        },
        22 => {
            need(buf, 4, "perm len")?;
            let len = buf.get_u32_le() as usize;
            if len > 64 {
                return Err(WireError::malformed(format!(
                    "implausible perm length {len}"
                )));
            }
            let mut perm = Vec::with_capacity(len);
            for _ in 0..len {
                need(buf, 4, "perm entry")?;
                perm.push(buf.get_u32_le() as usize);
            }
            Op::Transpose { perm }
        }
        23 => Op::Identity,
        24 => {
            need(buf, 4, "dropout p")?;
            Op::Dropout {
                p: buf.get_u32_le(),
            }
        }
        25 => {
            need(buf, 4, "axes len")?;
            let len = buf.get_u32_le() as usize;
            if len > 64 {
                return Err(WireError::malformed(format!(
                    "implausible axes length {len}"
                )));
            }
            let mut axes = Vec::with_capacity(len);
            for _ in 0..len {
                need(buf, 4, "axis")?;
                axes.push(buf.get_u32_le() as usize);
            }
            need(buf, 1, "keepdims")?;
            Op::ReduceMean {
                axes,
                keepdims: buf.get_u8() != 0,
            }
        }
        26 => {
            need(buf, 16, "gather attrs")?;
            Op::Gather {
                vocab: buf.get_u64_le() as usize,
                dim: buf.get_u64_le() as usize,
            }
        }
        other => return Err(WireError::malformed(format!("unknown op tag {other}"))),
    })
}

/// Encodes a graph (compacted: tombstones dropped, ids renumbered).
pub fn encode_graph(graph: &Graph) -> Bytes {
    let (g, _) = graph.compact();
    let mut buf = BytesMut::new();
    put_str(&mut buf, g.name());
    buf.put_u32_le(g.len() as u32);
    for (_, node) in g.iter() {
        put_str(&mut buf, &node.name);
        put_op(&mut buf, &node.op);
        buf.put_u32_le(node.inputs.len() as u32);
        for inp in &node.inputs {
            buf.put_u32_le(inp.index() as u32);
        }
    }
    buf.put_u32_le(g.outputs().len() as u32);
    for out in g.outputs() {
        buf.put_u32_le(out.index() as u32);
    }
    buf.freeze()
}

/// Decodes a graph from [`encode_graph`] bytes.
pub fn decode_graph(buf: &mut Bytes) -> WResult<Graph> {
    let name = get_str(buf)?;
    let mut g = Graph::new(name);
    need(buf, 4, "node count")?;
    let count = buf.get_u32_le() as usize;
    if count > 10_000_000 {
        return Err(WireError::malformed(format!(
            "implausible node count {count}"
        )));
    }
    // a node encodes to at least 9 bytes (empty name, 1-byte op, input
    // count), so a tiny buffer claiming millions of nodes cannot force a
    // matching pre-allocation
    let cap = bounded_capacity(count, buf, 9);
    let mut ids: Vec<NodeId> = Vec::with_capacity(cap);
    let mut pending: Vec<Node> = Vec::with_capacity(cap);
    for _ in 0..count {
        let node_name = get_str(buf)?;
        let op = get_op(buf)?;
        need(buf, 4, "input count")?;
        let n_in = buf.get_u32_le() as usize;
        if n_in > count {
            return Err(WireError::malformed(format!(
                "node has {n_in} inputs in {count}-node graph"
            )));
        }
        let mut inputs = Vec::with_capacity(bounded_capacity(n_in, buf, 4));
        for _ in 0..n_in {
            need(buf, 4, "input id")?;
            let raw = buf.get_u32_le() as usize;
            if raw >= count {
                return Err(WireError::malformed(format!("input id {raw} out of range")));
            }
            inputs.push(NodeId::from_index(raw));
        }
        pending.push(Node {
            op,
            inputs,
            name: node_name,
        });
    }
    for node in pending {
        let id = g.add_named(node.op, node.inputs, node.name);
        ids.push(id);
    }
    need(buf, 4, "output count")?;
    let n_out = buf.get_u32_le() as usize;
    if n_out > count {
        return Err(WireError::malformed(format!(
            "{n_out} outputs in {count}-node graph"
        )));
    }
    let mut outs = Vec::with_capacity(bounded_capacity(n_out, buf, 4));
    for _ in 0..n_out {
        need(buf, 4, "output id")?;
        let raw = buf.get_u32_le() as usize;
        if raw >= count {
            return Err(WireError::malformed(format!(
                "output id {raw} out of range"
            )));
        }
        outs.push(NodeId::from_index(raw));
    }
    g.set_outputs(outs);
    Ok(g)
}

/// Encodes a parameter store against a graph's (compacted) node numbering.
pub fn encode_params(graph: &Graph, params: &TensorMap) -> Bytes {
    let (_, mapping) = graph.compact();
    let mut buf = BytesMut::new();
    let entries: Vec<(u32, &[Tensor])> = graph
        .iter()
        .filter_map(|(id, _)| params.get(id).map(|t| (mapping[&id].index() as u32, t)))
        .collect();
    buf.put_u32_le(entries.len() as u32);
    for (idx, tensors) in entries {
        buf.put_u32_le(idx);
        buf.put_u32_le(tensors.len() as u32);
        for t in tensors {
            put_shape(&mut buf, t.shape());
            for &v in t.data() {
                buf.put_f32_le(v);
            }
        }
    }
    buf.freeze()
}

/// Decodes a parameter store from [`encode_params`] bytes.
pub fn decode_params(buf: &mut Bytes) -> WResult<TensorMap> {
    need(buf, 4, "param entry count")?;
    let count = buf.get_u32_le() as usize;
    let mut map = TensorMap::new();
    for _ in 0..count {
        need(buf, 8, "param header")?;
        let idx = buf.get_u32_le() as usize;
        let n = buf.get_u32_le() as usize;
        if n > 16 {
            return Err(WireError::malformed(format!(
                "implausible tensor count {n}"
            )));
        }
        let mut tensors = Vec::with_capacity(n);
        for _ in 0..n {
            let shape = get_shape(buf)?;
            let numel = shape.numel();
            need(buf, numel * 4, "tensor data")?;
            let mut data = Vec::with_capacity(numel);
            for _ in 0..numel {
                data.push(buf.get_f32_le());
            }
            tensors.push(Tensor::new(shape, data));
        }
        map.insert(NodeId::from_index(idx), tensors);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rich_graph() -> Graph {
        let mut g = Graph::new("rich");
        let x = g.input([1, 3, 16, 16]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).padding(1)), [x]);
        let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: 8 }), [c]);
        let r = g.add(Op::Activation(Activation::Relu), [bn]);
        let p = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [r]);
        let gap = g.add(Op::GlobalAveragePool, [p]);
        let f = g.add(Op::Flatten, [gap]);
        let fc = g.add(Op::Gemm(GemmAttrs::new(8, 4)), [f]);
        let sm = g.add(Op::Softmax { axis: -1 }, [fc]);
        g.set_outputs([sm]);
        g
    }

    #[test]
    fn graph_roundtrip() {
        let g = rich_graph();
        let bytes = encode_graph(&g);
        let mut buf = bytes.clone();
        let back = decode_graph(&mut buf).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.edge_count(), g.edge_count());
        back.validate().unwrap();
        let mut a: Vec<_> = g.iter().map(|(_, n)| n.op.opcode()).collect();
        let mut b: Vec<_> = back.iter().map(|(_, n)| n.op.opcode()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(buf.is_empty(), "no trailing bytes");
    }

    #[test]
    fn every_op_roundtrips() {
        use crate::op::LayerNormAttrs;
        let ops = vec![
            Op::Input {
                shape: Shape::from([1, 2]),
            },
            Op::Constant {
                shape: Shape::from([3]),
            },
            Op::Conv(ConvAttrs::new(4, 8, 3).stride(2).padding(1).groups(2)),
            Op::Gemm(GemmAttrs::new(5, 6)),
            Op::MatMul,
            Op::MatMulT,
            Op::BatchNorm(BatchNormAttrs { channels: 7 }),
            Op::LayerNorm(LayerNormAttrs { dim: 9 }),
            Op::SkipLayerNorm(LayerNormAttrs { dim: 11 }),
            Op::Activation(Activation::Gelu),
            Op::Softmax { axis: -1 },
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::AddAct(Activation::Relu6),
            Op::MaxPool(PoolAttrs::new(3, 2, 1)),
            Op::AveragePool(PoolAttrs::new(2, 2, 0)),
            Op::GlobalAveragePool,
            Op::Concat { axis: 1 },
            Op::Flatten,
            Op::Reshape {
                shape: Shape::from([2, 3]),
            },
            Op::Transpose {
                perm: vec![1, 0, 2],
            },
            Op::Identity,
            Op::Dropout { p: 30 },
            Op::ReduceMean {
                axes: vec![1, 2],
                keepdims: true,
            },
            Op::Gather {
                vocab: 100,
                dim: 16,
            },
        ];
        for op in ops {
            let mut buf = BytesMut::new();
            put_op(&mut buf, &op);
            let mut bytes = buf.freeze();
            let back = get_op(&mut bytes).unwrap();
            assert_eq!(back, op);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn params_roundtrip() {
        let g = rich_graph();
        let params = TensorMap::init_random(&g, 11);
        let bytes = encode_params(&g, &params);
        let mut buf = bytes;
        let back = decode_params(&mut buf).unwrap();
        assert_eq!(back.len(), params.len());
        // semantics preserved against the re-encoded graph
        let gb = {
            let mut b = encode_graph(&g);
            decode_graph(&mut b).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::random([1, 3, 16, 16], 1.0, &mut rng);
        let a = crate::exec::Executor::new(&g, &params)
            .run(std::slice::from_ref(&x))
            .unwrap();
        let b = crate::exec::Executor::new(&gb, &back).run(&[x]).unwrap();
        assert!(a[0].allclose(&b[0], 1e-6));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = rich_graph();
        let bytes = encode_graph(&g);
        for cut in [0usize, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut buf = bytes.slice(0..cut);
            assert!(decode_graph(&mut buf).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "g");
        buf.put_u32_le(1);
        put_str(&mut buf, "n");
        buf.put_u8(200); // unknown op tag
        let mut bytes = buf.freeze();
        assert!(decode_graph(&mut bytes).is_err());
    }

    #[test]
    fn frame_roundtrip_preserves_header_and_payload() {
        let payload = b"sealed bucket payload";
        let bytes = encode_frame(7, payload);
        let mut buf = bytes;
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(frame.version, WIRE_VERSION_V1);
        assert_eq!(frame.request_id, 0, "v1 frames decode to request id 0");
        assert_eq!(frame.bucket_index, 7);
        assert_eq!(&frame.payload[..], payload);
        assert!(buf.is_empty(), "no trailing bytes");
    }

    #[test]
    fn v2_frame_roundtrip_preserves_request_id() {
        let payload = b"multiplexed sealed bucket payload";
        let bytes = encode_frame_v2(0xDEAD_BEEF_CAFE_F00D, 3, payload);
        let mut buf = bytes;
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(frame.version, WIRE_VERSION_V2);
        assert_eq!(frame.request_id, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(frame.bucket_index, 3);
        assert_eq!(&frame.payload[..], payload);
        assert!(buf.is_empty(), "no trailing bytes");
    }

    #[test]
    fn mixed_version_stream_decodes_sequentially() {
        // a v2 receiver must demultiplex a stream that interleaves v1
        // (legacy single-request) and v2 (multiplexed) frames
        let mut stream = BytesMut::new();
        stream.put_slice(&encode_frame(0, b"legacy"));
        stream.put_slice(&encode_frame_v2(42, 1, b"mux a"));
        stream.put_slice(&encode_frame_v2(7, 0, b"mux b"));
        stream.put_slice(&encode_frame(1, b"legacy tail"));
        let mut buf = stream.freeze();
        let ids: Vec<(u16, u64, u32)> = (0..4)
            .map(|_| {
                let f = decode_frame(&mut buf).unwrap();
                (f.version, f.request_id, f.bucket_index)
            })
            .collect();
        assert_eq!(
            ids,
            vec![
                (WIRE_VERSION_V1, 0, 0),
                (WIRE_VERSION_V2, 42, 1),
                (WIRE_VERSION_V2, 7, 0),
                (WIRE_VERSION_V1, 0, 1),
            ]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn peek_reads_request_id_without_decoding() {
        let v2 = encode_frame_v2(0xFEED_F00D, 9, b"payload");
        assert_eq!(peek_frame_request_id(&v2).unwrap(), 0xFEED_F00D);
        let v1 = encode_frame(9, b"payload");
        assert_eq!(peek_frame_request_id(&v1).unwrap(), 0);
        // malformed headers are typed errors, not panics
        assert!(matches!(
            peek_frame_request_id(b"JUNKxx"),
            Err(WireError::BadMagic { .. })
        ));
        assert!(matches!(
            peek_frame_request_id(&v2[..5]),
            Err(WireError::Truncated { .. })
        ));
        let mut raw = v2.to_vec();
        raw[4] = 9;
        assert!(matches!(
            peek_frame_request_id(&raw),
            Err(WireError::UnknownVersion { got: 9, .. })
        ));
        // the peek does NOT validate payload integrity — that stays the
        // full decoder's job
        let last = raw.len() - 1;
        raw[4] = WIRE_VERSION_V2 as u8;
        raw[last] ^= 0xFF;
        assert_eq!(peek_frame_request_id(&raw).unwrap(), 0xFEED_F00D);
    }

    #[test]
    fn v2_frame_detects_single_byte_corruption_everywhere() {
        let bytes = encode_frame_v2(0x1234_5678_9ABC_DEF0, 5, b"checksummed mux payload");
        for pos in 0..bytes.len() {
            let mut raw = bytes.to_vec();
            raw[pos] ^= 0x40;
            let mut buf = Bytes::copy_from_slice(&raw);
            assert!(
                decode_frame(&mut buf).is_err(),
                "corruption at byte {pos} decoded successfully"
            );
        }
    }

    #[test]
    fn v2_frame_rejects_truncation_at_every_length() {
        let bytes = encode_frame_v2(99, 1, b"truncate the mux frame");
        for cut in 0..bytes.len() {
            let mut buf = bytes.slice(0..cut);
            assert!(
                matches!(decode_frame(&mut buf), Err(WireError::Truncated { .. })),
                "cut at {cut} not rejected as truncated"
            );
        }
    }

    #[test]
    fn frame_stream_decodes_sequentially() {
        let mut stream = BytesMut::new();
        for i in 0..3u32 {
            stream.put_slice(&encode_frame(i, format!("payload {i}").as_bytes()));
        }
        let mut buf = stream.freeze();
        for i in 0..3u32 {
            let frame = decode_frame(&mut buf).unwrap();
            assert_eq!(frame.bucket_index, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn frame_rejects_unknown_version() {
        let bytes = encode_frame(0, b"payload");
        let mut raw = bytes.to_vec();
        raw[4] = 99; // bump the version field
        let mut buf = Bytes::copy_from_slice(&raw);
        assert_eq!(
            decode_frame(&mut buf),
            Err(WireError::UnknownVersion {
                got: 99,
                supported: WIRE_VERSION
            })
        );
    }

    #[test]
    fn frame_rejects_bad_magic() {
        let bytes = encode_frame(0, b"payload");
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn frame_detects_single_byte_corruption_everywhere() {
        let bytes = encode_frame(3, b"some payload that is checksummed");
        for pos in 0..bytes.len() {
            let mut raw = bytes.to_vec();
            raw[pos] ^= 0x40;
            let mut buf = Bytes::copy_from_slice(&raw);
            assert!(
                decode_frame(&mut buf).is_err(),
                "corruption at byte {pos} decoded successfully"
            );
        }
    }

    #[test]
    fn frame_rejects_truncation_at_every_length() {
        let bytes = encode_frame(1, b"truncate me");
        for cut in 0..bytes.len() {
            let mut buf = bytes.slice(0..cut);
            assert!(
                matches!(decode_frame(&mut buf), Err(WireError::Truncated { .. })),
                "cut at {cut} not rejected as truncated"
            );
        }
    }

    /// Hand-builds an error frame with arbitrary raw fields and a correct
    /// checksum, so tests can exercise decoder rejections that
    /// `encode_error_frame` refuses to produce.
    fn raw_error_frame(version: u16, request_id: u64, code: u16, detail: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(28 + detail.len());
        buf.put_slice(&ERROR_FRAME_MAGIC);
        buf.put_u16_le(version);
        buf.put_u64_le(request_id);
        buf.put_u16_le(code);
        buf.put_u32_le(detail.len() as u32);
        let h = fnv1a64_continue(FNV_OFFSET_BASIS, &buf[4..20]);
        buf.put_u64_le(fnv1a64_continue(h, detail));
        buf.put_slice(detail);
        buf.freeze()
    }

    #[test]
    fn error_frame_roundtrips_every_code() {
        for (i, code) in ErrorCode::ALL.iter().copied().enumerate() {
            let ef = ErrorFrame::new(0xAB00 + i as u64, code, format!("detail for {code}"));
            let mut buf = encode_error_frame(&ef);
            let back = decode_error_frame(&mut buf).unwrap();
            assert_eq!(back, ef);
            assert!(buf.is_empty(), "no trailing bytes");
        }
    }

    #[test]
    fn error_frame_roundtrips_empty_detail() {
        let ef = ErrorFrame::new(0, ErrorCode::Shutdown, "");
        let mut buf = encode_error_frame(&ef);
        assert_eq!(decode_error_frame(&mut buf).unwrap(), ef);
    }

    #[test]
    fn error_code_wire_values_are_stable() {
        // these values are the wire contract — changing one silently
        // breaks deployed clients, so pin each explicitly
        let pinned: [(ErrorCode, u16); 18] = [
            (ErrorCode::Config, 1),
            (ErrorCode::Partition, 2),
            (ErrorCode::Wire, 3),
            (ErrorCode::Graph, 4),
            (ErrorCode::Protocol, 5),
            (ErrorCode::DuplicateFrame, 6),
            (ErrorCode::Artifact, 7),
            (ErrorCode::WorkerCrashed, 8),
            (ErrorCode::Deadline, 9),
            (ErrorCode::ReplicaUnavailable, 10),
            (ErrorCode::RetriesExhausted, 11),
            (ErrorCode::VersionMismatch, 12),
            (ErrorCode::BadAuth, 13),
            (ErrorCode::FingerprintMismatch, 14),
            (ErrorCode::QuotaExceeded, 15),
            (ErrorCode::ConnectionLimit, 16),
            (ErrorCode::Shutdown, 17),
            (ErrorCode::Internal, 18),
        ];
        for (code, value) in pinned {
            assert_eq!(code.as_u16(), value);
            assert_eq!(ErrorCode::from_u16(value).unwrap(), code);
        }
        assert!(ErrorCode::from_u16(0).is_err());
        assert!(ErrorCode::from_u16(19).is_err());
        assert!(ErrorCode::from_u16(u16::MAX).is_err());
    }

    #[test]
    fn error_frame_detects_single_byte_corruption_everywhere() {
        let ef = ErrorFrame::new(0x1122_3344_5566_7788, ErrorCode::Deadline, "missed by 3ms");
        let bytes = encode_error_frame(&ef);
        for pos in 0..bytes.len() {
            let mut raw = bytes.to_vec();
            raw[pos] ^= 0x40;
            let mut buf = Bytes::copy_from_slice(&raw);
            assert!(
                decode_error_frame(&mut buf).is_err(),
                "corruption at byte {pos} decoded successfully"
            );
        }
    }

    #[test]
    fn error_frame_rejects_truncation_at_every_length() {
        let ef = ErrorFrame::new(9, ErrorCode::BadAuth, "token unknown");
        let bytes = encode_error_frame(&ef);
        for cut in 0..bytes.len() {
            let mut buf = bytes.slice(0..cut);
            assert!(
                matches!(
                    decode_error_frame(&mut buf),
                    Err(WireError::Truncated { .. })
                ),
                "cut at {cut} not rejected as truncated"
            );
        }
    }

    #[test]
    fn error_frame_rejects_unknown_code_with_valid_checksum() {
        // a validly-checksummed frame carrying a code from a newer
        // taxonomy must surface as Malformed, never as a silent default
        let mut buf = raw_error_frame(WIRE_VERSION_V2, 1, 999, b"future code");
        assert!(matches!(
            decode_error_frame(&mut buf),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn error_frame_rejects_unknown_version_and_bad_magic() {
        let mut buf = raw_error_frame(7, 1, 1, b"x");
        assert_eq!(
            decode_error_frame(&mut buf),
            Err(WireError::UnknownVersion {
                got: 7,
                supported: WIRE_VERSION
            })
        );
        let bytes = encode_error_frame(&ErrorFrame::new(1, ErrorCode::Wire, "x"));
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(matches!(
            decode_error_frame(&mut buf),
            Err(WireError::BadMagic { .. })
        ));
        // a data frame handed to the error decoder is a magic mismatch,
        // not a misparse
        let mut buf = encode_frame_v2(5, 0, b"data");
        assert!(matches!(
            decode_error_frame(&mut buf),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn error_frame_rejects_invalid_utf8_detail() {
        let mut buf = raw_error_frame(WIRE_VERSION_V2, 1, 3, &[0xFF, 0xFE, 0x41]);
        assert!(matches!(
            decode_error_frame(&mut buf),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn error_frame_rejects_implausible_detail_length() {
        let mut buf = raw_error_frame(WIRE_VERSION_V2, 1, 3, b"short");
        // rewrite detail_len to something past MAX_ERROR_DETAIL; the
        // length check must fire before any attempt to read that much
        let mut raw = buf.to_vec();
        raw[16..20].copy_from_slice(&(MAX_ERROR_DETAIL as u32 + 1).to_le_bytes());
        buf = Bytes::copy_from_slice(&raw);
        assert!(matches!(
            decode_error_frame(&mut buf),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn error_frame_truncates_oversized_detail_on_encode() {
        let ef = ErrorFrame::new(1, ErrorCode::Internal, "x".repeat(MAX_ERROR_DETAIL + 500));
        let mut buf = encode_error_frame(&ef);
        let back = decode_error_frame(&mut buf).unwrap();
        assert_eq!(back.detail.len(), MAX_ERROR_DETAIL);
        assert_eq!(back.code, ErrorCode::Internal);
    }

    #[test]
    fn error_frames_interleave_with_data_frames_on_one_stream() {
        let mut stream = BytesMut::new();
        stream.put_slice(&encode_frame_v2(10, 0, b"bucket"));
        stream.put_slice(&encode_error_frame(&ErrorFrame::new(
            11,
            ErrorCode::Deadline,
            "late",
        )));
        stream.put_slice(&encode_frame_v2(10, 1, b"bucket2"));
        let mut buf = stream.freeze();
        // receiver branches on the 4-byte magic before committing to a
        // header layout
        assert_eq!(&buf[0..4], &FRAME_MAGIC);
        let f = decode_frame(&mut buf).unwrap();
        assert_eq!(f.request_id, 10);
        assert_eq!(&buf[0..4], &ERROR_FRAME_MAGIC);
        let e = decode_error_frame(&mut buf).unwrap();
        assert_eq!((e.request_id, e.code), (11, ErrorCode::Deadline));
        let f = decode_frame(&mut buf).unwrap();
        assert_eq!(f.bucket_index, 1);
        assert!(buf.is_empty());
    }
}
