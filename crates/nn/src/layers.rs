//! Reusable layers over the autograd tape: [`Linear`] and [`GruCell`].
//!
//! Layers own no tensors — their parameters live in a [`ParamStore`] under a
//! `"{name}.{field}"` key scheme, so models can be checkpointed and updated
//! by any optimizer that understands the store.

use crate::matrix::Matrix;
use crate::tape::{ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Fully-connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Declares a linear layer and registers its parameters.
    pub fn new(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Linear {
        let name = name.into();
        store.insert(format!("{name}.w"), Matrix::xavier(in_dim, out_dim, rng));
        store.insert(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear {
            name,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, &format!("{}.w", self.name));
        let b = tape.param(store, &format!("{}.b", self.name));
        let h = tape.matmul(x, w);
        tape.add_bias(h, b)
    }
}

/// Gated recurrent unit cell.
///
/// Follows the standard formulation:
/// `z = σ(x Wz + h Uz + bz)`, `r = σ(x Wr + h Ur + br)`,
/// `n = tanh(x Wn + (r ⊙ h) Un + bn)`, `h' = (1 - z) ⊙ n + z ⊙ h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    name: String,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl GruCell {
    /// Declares a GRU cell and registers its parameters.
    pub fn new(
        name: impl Into<String>,
        input_dim: usize,
        hidden_dim: usize,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> GruCell {
        let name = name.into();
        for gate in ["z", "r", "n"] {
            store.insert(
                format!("{name}.w{gate}"),
                Matrix::xavier(input_dim, hidden_dim, rng),
            );
            store.insert(
                format!("{name}.u{gate}"),
                Matrix::xavier(hidden_dim, hidden_dim, rng),
            );
            store.insert(format!("{name}.b{gate}"), Matrix::zeros(1, hidden_dim));
        }
        GruCell {
            name,
            input_dim,
            hidden_dim,
        }
    }

    fn gate(&self, tape: &mut Tape, store: &ParamStore, gate: &str, x: Var, h: Var) -> Var {
        let w = tape.param(store, &format!("{}.w{gate}", self.name));
        let u = tape.param(store, &format!("{}.u{gate}", self.name));
        let b = tape.param(store, &format!("{}.b{gate}", self.name));
        let xw = tape.matmul(x, w);
        let hu = tape.matmul(h, u);
        let s = tape.add(xw, hu);
        tape.add_bias(s, b)
    }

    /// One step: `(x, h) -> h'`. `x` is `batch x input_dim`, `h` is
    /// `batch x hidden_dim`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let z_pre = self.gate(tape, store, "z", x, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = self.gate(tape, store, "r", x, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let wn = tape.param(store, &format!("{}.wn", self.name));
        let un = tape.param(store, &format!("{}.un", self.name));
        let bn = tape.param(store, &format!("{}.bn", self.name));
        let xw = tape.matmul(x, wn);
        let rhu = tape.matmul(rh, un);
        let n_pre = tape.add(xw, rhu);
        let n_pre = tape.add_bias(n_pre, bn);
        let n = tape.tanh(n_pre);
        let nz = tape.one_minus(z);
        let a = tape.mul(nz, n);
        let b = tape.mul(z, h);
        tape.add(a, b)
    }

    /// A fresh all-zero hidden state for a batch.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> Var {
        tape.constant(Matrix::zeros(batch, self.hidden_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Gradients;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new("l", 3, 5, &mut store, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(2, 3));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!((tape.value(y).rows(), tape.value(y).cols()), (2, 5));
    }

    #[test]
    fn gru_step_shapes_and_stability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gru = GruCell::new("g", 4, 6, &mut store, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::xavier(2, 4, &mut rng));
        let h0 = gru.zero_state(&mut tape, 2);
        let h1 = gru.step(&mut tape, &store, x, h0);
        let h2 = gru.step(&mut tape, &store, x, h1);
        let v = tape.value(h2);
        assert_eq!((v.rows(), v.cols()), (2, 6));
        assert!(v
            .data()
            .iter()
            .all(|x| x.is_finite() && x.abs() <= 1.0 + 1e-5));
    }

    fn gru_loss(store: &ParamStore, gru: &GruCell, x: &Matrix, t: &Matrix) -> (f32, Gradients) {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let h0 = gru.zero_state(&mut tape, x.rows());
        let h1 = gru.step(&mut tape, store, xv, h0);
        let h2 = gru.step(&mut tape, store, xv, h1);
        let w_out = tape.constant(Matrix::full(gru.hidden_dim, 1, 0.3));
        let logits = tape.matmul(h2, w_out);
        let tv = tape.constant(t.clone());
        let loss = tape.bce_with_logits(logits, tv);
        (tape.value(loss).get(0, 0), tape.backward(loss))
    }

    #[test]
    fn gru_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let gru = GruCell::new("g", 3, 4, &mut store, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng);
        let t = Matrix::new(2, 1, vec![1.0, 0.0]);
        let (_, grads) = gru_loss(&store, &gru, &x, &t);
        let eps = 1e-3;
        // spot-check a few parameters in every gate matrix
        for key in ["g.wz", "g.ur", "g.bn", "g.un"] {
            let analytic = grads.get(key).unwrap().clone();
            let base = store.get(key).unwrap().clone();
            for i in [0usize, base.data().len() / 2] {
                let mut plus = base.clone();
                plus.data_mut()[i] += eps;
                store.insert(key, plus);
                let fp = gru_loss(&store, &gru, &x, &t).0;
                let mut minus = base.clone();
                minus.data_mut()[i] -= eps;
                store.insert(key, minus);
                let fm = gru_loss(&store, &gru, &x, &t).0;
                store.insert(key, base.clone());
                let numeric = (fp - fm) / (2.0 * eps);
                let got = analytic.data()[i];
                assert!(
                    (numeric - got).abs() < 2e-2,
                    "{key}[{i}]: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }
}
