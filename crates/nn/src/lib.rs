//! Minimal neural-network training substrate.
//!
//! The Proteus paper relies on two learned components: a GraphRNN topology
//! generator (PyTorch in the original) and a GraphSAGE adversary classifier
//! (PyTorch Geometric). This crate provides the substrate both are built on
//! in this reproduction: dense matrices ([`Matrix`]), tape-based
//! reverse-mode autodiff ([`Tape`]/[`ParamStore`]/[`Gradients`]),
//! [`Linear`]/[`GruCell`] layers, and [`Sgd`]/[`Adam`] optimizers.
//!
//! Gradients are verified against finite differences in the test suite —
//! the generator and adversary results downstream are only meaningful if
//! this substrate is correct.
//!
//! # Example
//!
//! ```
//! use proteus_nn::{Matrix, ParamStore, Tape, Linear, Adam};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new("clf", 2, 1, &mut store, &mut rng);
//! let mut adam = Adam::new(0.05);
//!
//! // learn OR function
//! let x = Matrix::new(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = Matrix::new(4, 1, vec![0., 1., 1., 1.]);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let logits = layer.forward(&mut tape, &store, xv);
//!     let tv = tape.constant(y.clone());
//!     let loss = tape.bce_with_logits(logits, tv);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &grads);
//! }
//! ```

pub mod layers;
pub mod matrix;
pub mod optim;
pub mod tape;

pub use layers::{GruCell, Linear};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use tape::{Gradients, ParamStore, Tape, Var};

#[cfg(test)]
mod integration {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xor_is_learnable_with_hidden_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let l1 = Linear::new("l1", 2, 8, &mut store, &mut rng);
        let l2 = Linear::new("l2", 8, 1, &mut store, &mut rng);
        let mut adam = Adam::new(0.05);
        let x = Matrix::new(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = Matrix::new(4, 1, vec![0., 1., 1., 0.]);
        let mut final_loss = f32::INFINITY;
        for _ in 0..600 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let h = l1.forward(&mut tape, &store, xv);
            let h = tape.tanh(h);
            let logits = l2.forward(&mut tape, &store, h);
            let tv = tape.constant(y.clone());
            let loss = tape.bce_with_logits(logits, tv);
            final_loss = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(final_loss < 0.1, "XOR did not converge: loss {final_loss}");
    }

    #[test]
    fn gru_learns_sequence_sign_task() {
        // classify whether a +-1 sequence has positive sum: requires memory
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let gru = GruCell::new("g", 1, 8, &mut store, &mut rng);
        let head = Linear::new("head", 8, 1, &mut store, &mut rng);
        let mut adam = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1., 1., -1.], 1.0),
            (vec![-1., -1., 1.], 0.0),
            (vec![1., 1., 1.], 1.0),
            (vec![-1., 1., -1.], 0.0),
            (vec![1., -1., 1.], 1.0),
            (vec![-1., -1., -1.], 0.0),
        ];
        let mut final_loss = f32::INFINITY;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let mut logit_vars = Vec::new();
            for (seq, _) in &seqs {
                let mut h = gru.zero_state(&mut tape, 1);
                for &s in seq {
                    let x = tape.constant(Matrix::new(1, 1, vec![s]));
                    h = gru.step(&mut tape, &store, x, h);
                }
                logit_vars.push(head.forward(&mut tape, &store, h));
            }
            // stack losses by summing BCEs
            let mut total: Option<Var> = None;
            for (v, (_, label)) in logit_vars.iter().zip(&seqs) {
                let t = tape.constant(Matrix::new(1, 1, vec![*label]));
                let l = tape.bce_with_logits(*v, t);
                total = Some(match total {
                    None => l,
                    Some(acc) => tape.add(acc, l),
                });
            }
            let loss = total.expect("nonempty batch");
            final_loss = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(
            final_loss < 0.6,
            "GRU did not learn the toy task: loss {final_loss}"
        );
    }
}
