//! Optimizers over a [`ParamStore`].

use crate::matrix::Matrix;
use crate::tape::{Gradients, ParamStore};
use std::collections::HashMap;

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (key, g) in grads.iter() {
            if let Some(p) = store.get_mut(key) {
                for (pv, &gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= self.lr * gv;
                }
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: HashMap<String, Matrix>,
    v: HashMap<String, Matrix>,
}

impl Adam {
    /// Creates Adam with the usual defaults (`β1 = 0.9`, `β2 = 0.999`).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (key, g) in grads.iter() {
            let Some(p) = store.get_mut(key) else {
                continue;
            };
            let m = self
                .m
                .entry(key.clone())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self
                .v
                .entry(key.clone())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            for i in 0..g.data().len() {
                let gi = g.data()[i];
                m.data_mut()[i] = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                v.data_mut()[i] = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                let mh = m.data()[i] / bc1;
                let vh = v.data()[i] / bc2;
                p.data_mut()[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes (w - 3)^2-ish via BCE on a direct logit; checks descent.
    fn train(opt_is_adam: bool) -> f32 {
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(1, 1, vec![-2.0]));
        let mut sgd = Sgd::new(0.5);
        let mut adam = Adam::new(0.2);
        for _ in 0..200 {
            let mut tape = Tape::new();
            let w = tape.param(&store, "w");
            let t = tape.constant(Matrix::new(1, 1, vec![1.0]));
            let loss = tape.bce_with_logits(w, t);
            let grads = tape.backward(loss);
            if opt_is_adam {
                adam.step(&mut store, &grads);
            } else {
                sgd.step(&mut store, &grads);
            }
        }
        store.get("w").unwrap().get(0, 0)
    }

    #[test]
    fn sgd_descends() {
        let w = train(false);
        assert!(w > 2.0, "after training w = {w}");
    }

    #[test]
    fn adam_descends() {
        let w = train(true);
        assert!(w > 2.0, "after training w = {w}");
    }

    #[test]
    fn adam_ignores_unknown_keys() {
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(1, 1, vec![0.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, "w");
        let t = tape.constant(Matrix::new(1, 1, vec![1.0]));
        let loss = tape.bce_with_logits(w, t);
        let grads = tape.backward(loss);
        store = ParamStore::new(); // drop the param
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, &grads); // must not panic
        assert!(store.is_empty());
    }
}
