//! Dense row-major `f32` matrices — the value type of the autograd tape.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(rows * cols, data.len(), "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major elements.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major elements.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` (used by backward passes without materializing
    /// transposes).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dims");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dims");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[j * other.cols + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination with another same-shape matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip shape"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Accumulates `other` into `self` (`self += other`).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        // a^T b
        let tn = a.matmul_tn(&b);
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let explicit = at.matmul(&b);
        for (x, y) in tn.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Matrix::xavier(5, 3, &mut rng);
        let d = Matrix::xavier(4, 3, &mut rng);
        let nt = c.matmul_nt(&d);
        assert_eq!((nt.rows(), nt.cols()), (5, 4));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zip_and_map() {
        let a = Matrix::new(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::new(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
    }
}
