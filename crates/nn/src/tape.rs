//! Tape-based reverse-mode automatic differentiation over matrices.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes;
//! [`Tape::backward`] walks it in reverse accumulating gradients. Trainable
//! parameters enter the tape through [`Tape::param`], which binds them to a
//! string key in a [`ParamStore`]; backward returns a [`Gradients`] map over
//! those keys that an optimizer applies to the store.

use crate::matrix::Matrix;
use std::collections::HashMap;

/// Named trainable parameters.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: HashMap<String, Matrix>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Registers a parameter (replacing any previous value).
    pub fn insert(&mut self, key: impl Into<String>, value: Matrix) {
        self.params.insert(key.into(), value);
    }

    /// Looks up a parameter.
    pub fn get(&self, key: &str) -> Option<&Matrix> {
        self.params.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Matrix> {
        self.params.get_mut(key)
    }

    /// Iterates over `(key, matrix)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Matrix)> {
        self.params.iter()
    }

    /// Number of parameters (matrices, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.values().map(|m| m.rows() * m.cols()).sum()
    }
}

/// Gradients keyed like the [`ParamStore`] that produced them.
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    grads: HashMap<String, Matrix>,
}

impl Gradients {
    /// Gradient for a parameter key, if it participated in the loss.
    pub fn get(&self, key: &str) -> Option<&Matrix> {
        self.grads.get(key)
    }

    /// Iterates over `(key, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Matrix)> {
        self.grads.iter()
    }

    /// Number of gradient entries.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum TapeOp {
    Leaf { key: Option<String> },
    MatMul { a: Var, b: Var },
    Add { a: Var, b: Var },
    Sub { a: Var, b: Var },
    Mul { a: Var, b: Var },
    AddBias { a: Var, bias: Var },
    Scale { a: Var, c: f32 },
    AddScalar { a: Var },
    Sigmoid { a: Var },
    Tanh { a: Var },
    Relu { a: Var },
    MeanRows { a: Var },
    MaxRows { a: Var },
    ConcatCols { a: Var, b: Var },
    BceLogits { logits: Var, targets: Var },
}

/// The recording tape. Create one per forward/backward pass.
#[derive(Debug, Default)]
pub struct Tape {
    ops: Vec<TapeOp>,
    vals: Vec<Matrix>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    fn push(&mut self, op: TapeOp, val: Matrix) -> Var {
        self.ops.push(op);
        self.vals.push(val);
        Var(self.vals.len() - 1)
    }

    /// Current value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.vals[v.0]
    }

    /// Records a non-trainable constant.
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(TapeOp::Leaf { key: None }, m)
    }

    /// Records a trainable parameter bound to `key` in `store`.
    ///
    /// # Panics
    /// Panics if `key` is missing from the store.
    pub fn param(&mut self, store: &ParamStore, key: &str) -> Var {
        let m = store
            .get(key)
            .unwrap_or_else(|| panic!("parameter `{key}` not found"))
            .clone();
        self.push(
            TapeOp::Leaf {
                key: Some(key.to_string()),
            },
            m,
        )
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let val = self.vals[a.0].matmul(&self.vals[b.0]);
        self.push(TapeOp::MatMul { a, b }, val)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let val = self.vals[a.0].zip(&self.vals[b.0], |x, y| x + y);
        self.push(TapeOp::Add { a, b }, val)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let val = self.vals[a.0].zip(&self.vals[b.0], |x, y| x - y);
        self.push(TapeOp::Sub { a, b }, val)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let val = self.vals[a.0].zip(&self.vals[b.0], |x, y| x * y);
        self.push(TapeOp::Mul { a, b }, val)
    }

    /// Adds a `1 x d` bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let m = &self.vals[a.0];
        let b = &self.vals[bias.0];
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), m.cols(), "bias width mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + b.get(0, c);
                out.set(r, c, v);
            }
        }
        self.push(TapeOp::AddBias { a, bias }, out)
    }

    /// Scalar multiplication.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let val = self.vals[a.0].map(|x| x * c);
        self.push(TapeOp::Scale { a, c }, val)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let val = self.vals[a.0].map(|x| x + c);
        let v = self.push(TapeOp::AddScalar { a }, val);
        let _ = c;
        v
    }

    /// `1 - a`, a convenience for gating units.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let val = self.vals[a.0].map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(TapeOp::Sigmoid { a }, val)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let val = self.vals[a.0].map(f32::tanh);
        self.push(TapeOp::Tanh { a }, val)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let val = self.vals[a.0].map(|x| x.max(0.0));
        self.push(TapeOp::Relu { a }, val)
    }

    /// Mean over rows: `n x d -> 1 x d` (graph readout pooling).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let m = &self.vals[a.0];
        let mut out = Matrix::zeros(1, m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = out.get(0, c) + m.get(r, c);
                out.set(0, c, v);
            }
        }
        let inv = 1.0 / m.rows().max(1) as f32;
        for c in 0..m.cols() {
            let v = out.get(0, c) * inv;
            out.set(0, c, v);
        }
        self.push(TapeOp::MeanRows { a }, out)
    }

    /// Max over rows: `n x d -> 1 x d` (max-pooling graph readout). The
    /// gradient flows to the first maximal row of each column.
    pub fn max_rows(&mut self, a: Var) -> Var {
        let m = &self.vals[a.0];
        let mut out = Matrix::zeros(1, m.cols());
        for c in 0..m.cols() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..m.rows() {
                best = best.max(m.get(r, c));
            }
            out.set(0, c, if best.is_finite() { best } else { 0.0 });
        }
        self.push(TapeOp::MaxRows { a }, out)
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ma, mb) = (&self.vals[a.0], &self.vals[b.0]);
        assert_eq!(ma.rows(), mb.rows(), "concat_cols rows");
        let mut out = Matrix::zeros(ma.rows(), ma.cols() + mb.cols());
        for r in 0..ma.rows() {
            for c in 0..ma.cols() {
                out.set(r, c, ma.get(r, c));
            }
            for c in 0..mb.cols() {
                out.set(r, ma.cols() + c, mb.get(r, c));
            }
        }
        self.push(TapeOp::ConcatCols { a, b }, out)
    }

    /// Mean binary cross-entropy with logits; `targets` must be a constant
    /// of the same shape with values in `[0, 1]`. Returns a `1 x 1` loss.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Var) -> Var {
        let l = &self.vals[logits.0];
        let t = &self.vals[targets.0];
        let n = (l.rows() * l.cols()).max(1) as f32;
        let mut loss = 0.0;
        for (&x, &y) in l.data().iter().zip(t.data()) {
            // numerically stable: max(x,0) - x*y + ln(1 + e^{-|x|})
            loss += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        }
        let val = Matrix::new(1, 1, vec![loss / n]);
        self.push(TapeOp::BceLogits { logits, targets }, val)
    }

    /// Runs reverse-mode differentiation from `loss` (which must be `1x1`)
    /// and returns gradients for every parameter leaf.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` value.
    pub fn backward(&self, loss: Var) -> Gradients {
        let lv = &self.vals[loss.0];
        assert_eq!((lv.rows(), lv.cols()), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.vals.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));

        let acc = |grads: &mut Vec<Option<Matrix>>, v: Var, g: Matrix| match &mut grads[v.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        };

        for idx in (0..self.ops.len()).rev() {
            let g = match grads[idx].clone() {
                Some(g) => g,
                None => continue,
            };
            match &self.ops[idx] {
                TapeOp::Leaf { .. } => {}
                TapeOp::MatMul { a, b } => {
                    let ga = g.matmul_nt(&self.vals[b.0]);
                    let gb = self.vals[a.0].matmul_tn(&g);
                    acc(&mut grads, *a, ga);
                    acc(&mut grads, *b, gb);
                }
                TapeOp::Add { a, b } => {
                    acc(&mut grads, *a, g.clone());
                    acc(&mut grads, *b, g);
                }
                TapeOp::Sub { a, b } => {
                    acc(&mut grads, *a, g.clone());
                    acc(&mut grads, *b, g.map(|x| -x));
                }
                TapeOp::Mul { a, b } => {
                    let ga = g.zip(&self.vals[b.0], |x, y| x * y);
                    let gb = g.zip(&self.vals[a.0], |x, y| x * y);
                    acc(&mut grads, *a, ga);
                    acc(&mut grads, *b, gb);
                }
                TapeOp::AddBias { a, bias } => {
                    acc(&mut grads, *a, g.clone());
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            let v = gb.get(0, c) + g.get(r, c);
                            gb.set(0, c, v);
                        }
                    }
                    acc(&mut grads, *bias, gb);
                }
                TapeOp::Scale { a, c } => acc(&mut grads, *a, g.map(|x| x * c)),
                TapeOp::AddScalar { a } => acc(&mut grads, *a, g),
                TapeOp::Sigmoid { a } => {
                    let y = &self.vals[idx];
                    let ga = g.zip(y, |gv, yv| gv * yv * (1.0 - yv));
                    acc(&mut grads, *a, ga);
                }
                TapeOp::Tanh { a } => {
                    let y = &self.vals[idx];
                    let ga = g.zip(y, |gv, yv| gv * (1.0 - yv * yv));
                    acc(&mut grads, *a, ga);
                }
                TapeOp::Relu { a } => {
                    let x = &self.vals[a.0];
                    let ga = g.zip(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    acc(&mut grads, *a, ga);
                }
                TapeOp::MeanRows { a } => {
                    let m = &self.vals[a.0];
                    let inv = 1.0 / m.rows().max(1) as f32;
                    let mut ga = Matrix::zeros(m.rows(), m.cols());
                    for r in 0..m.rows() {
                        for c in 0..m.cols() {
                            ga.set(r, c, g.get(0, c) * inv);
                        }
                    }
                    acc(&mut grads, *a, ga);
                }
                TapeOp::MaxRows { a } => {
                    let m = &self.vals[a.0];
                    let mut ga = Matrix::zeros(m.rows(), m.cols());
                    for c in 0..m.cols() {
                        let mut best_r = 0;
                        for r in 1..m.rows() {
                            if m.get(r, c) > m.get(best_r, c) {
                                best_r = r;
                            }
                        }
                        if m.rows() > 0 {
                            ga.set(best_r, c, g.get(0, c));
                        }
                    }
                    acc(&mut grads, *a, ga);
                }
                TapeOp::ConcatCols { a, b } => {
                    let (ma, mb) = (&self.vals[a.0], &self.vals[b.0]);
                    let mut ga = Matrix::zeros(ma.rows(), ma.cols());
                    let mut gb = Matrix::zeros(mb.rows(), mb.cols());
                    for r in 0..ma.rows() {
                        for c in 0..ma.cols() {
                            ga.set(r, c, g.get(r, c));
                        }
                        for c in 0..mb.cols() {
                            gb.set(r, c, g.get(r, ma.cols() + c));
                        }
                    }
                    acc(&mut grads, *a, ga);
                    acc(&mut grads, *b, gb);
                }
                TapeOp::BceLogits { logits, targets } => {
                    let l = &self.vals[logits.0];
                    let t = &self.vals[targets.0];
                    let n = (l.rows() * l.cols()).max(1) as f32;
                    let scale = g.get(0, 0) / n;
                    let gl = l.zip(t, |x, y| (1.0 / (1.0 + (-x).exp()) - y) * scale);
                    acc(&mut grads, *logits, gl);
                }
            }
        }

        let mut out = Gradients::default();
        for (idx, op) in self.ops.iter().enumerate() {
            if let TapeOp::Leaf { key: Some(k) } = op {
                if let Some(g) = grads[idx].clone() {
                    match out.grads.get_mut(k) {
                        Some(existing) => existing.add_assign(&g),
                        None => {
                            out.grads.insert(k.clone(), g);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a scalar loss function of a
    /// single named parameter.
    fn grad_check(
        store: &mut ParamStore,
        key: &str,
        f: &dyn Fn(&ParamStore) -> f32,
        analytic: &Matrix,
        tol: f32,
    ) {
        let eps = 1e-3;
        let base = store.get(key).unwrap().clone();
        for i in 0..base.data().len() {
            let mut plus = base.clone();
            plus.data_mut()[i] += eps;
            store.insert(key, plus);
            let fp = f(store);
            let mut minus = base.clone();
            minus.data_mut()[i] -= eps;
            store.insert(key, minus);
            let fm = f(store);
            let numeric = (fp - fm) / (2.0 * eps);
            let got = analytic.data()[i];
            assert!(
                (numeric - got).abs() < tol,
                "param {key}[{i}]: numeric {numeric} vs analytic {got}"
            );
        }
        store.insert(key, base);
    }

    fn mlp_loss(store: &ParamStore, x: &Matrix, t: &Matrix) -> (f32, Gradients) {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let w1 = tape.param(store, "w1");
        let b1 = tape.param(store, "b1");
        let w2 = tape.param(store, "w2");
        let h = tape.matmul(xv, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.tanh(h);
        let logits = tape.matmul(h, w2);
        let tv = tape.constant(t.clone());
        let loss = tape.bce_with_logits(logits, tv);
        let val = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        (val, grads)
    }

    #[test]
    fn mlp_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.insert("w1", Matrix::xavier(4, 5, &mut rng));
        store.insert("b1", Matrix::zeros(1, 5));
        store.insert("w2", Matrix::xavier(5, 1, &mut rng));
        let x = Matrix::xavier(3, 4, &mut rng);
        let t = Matrix::new(3, 1, vec![1.0, 0.0, 1.0]);

        let (_, grads) = mlp_loss(&store, &x, &t);
        for key in ["w1", "b1", "w2"] {
            let analytic = grads.get(key).unwrap().clone();
            grad_check(&mut store, key, &|s| mlp_loss(s, &x, &t).0, &analytic, 2e-2);
        }
    }

    #[test]
    fn shared_parameter_accumulates() {
        // loss = sum over two uses of w: y = (x w) + (x w)
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(1, 1, vec![2.0]));
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::new(1, 1, vec![3.0]));
        let w1 = tape.param(&store, "w");
        let w2 = tape.param(&store, "w");
        let a = tape.mul(x, w1);
        let b = tape.mul(x, w2);
        let s = tape.add(a, b);
        let t = tape.constant(Matrix::new(1, 1, vec![1.0]));
        let loss = tape.bce_with_logits(s, t);
        let grads = tape.backward(loss);
        // dL/dw = (sigmoid(2xw) - 1) * x * 2 (two uses)
        let sig = 1.0 / (1.0 + (-12.0f32).exp());
        let expected = (sig - 1.0) * 3.0 * 2.0;
        let got = grads.get("w").unwrap().get(0, 0);
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn gating_ops_differentiate() {
        // z = sigmoid(w); y = (1-z)*a + z*b; check dL/dw numerically
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(1, 1, vec![0.3]));
        let f = |s: &ParamStore| -> (f32, Gradients) {
            let mut tape = Tape::new();
            let w = tape.param(s, "w");
            let z = tape.sigmoid(w);
            let nz = tape.one_minus(z);
            let a = tape.constant(Matrix::new(1, 1, vec![2.0]));
            let b = tape.constant(Matrix::new(1, 1, vec![-1.0]));
            let ya = tape.mul(nz, a);
            let yb = tape.mul(z, b);
            let y = tape.add(ya, yb);
            let t = tape.constant(Matrix::new(1, 1, vec![0.0]));
            let loss = tape.bce_with_logits(y, t);
            (tape.value(loss).get(0, 0), tape.backward(loss))
        };
        let (_, grads) = f(&store);
        let analytic = grads.get("w").unwrap().clone();
        grad_check(&mut store, "w", &|s| f(s).0, &analytic, 1e-3);
    }

    #[test]
    fn mean_rows_and_concat_backward() {
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(2, 2, vec![0.1, -0.2, 0.3, 0.4]));
        let f = |s: &ParamStore| -> (f32, Gradients) {
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
            let w = tape.param(s, "w");
            let h = tape.matmul(x, w);
            let hc = tape.concat_cols(h, x);
            let pooled = tape.mean_rows(hc);
            let w2 = tape.constant(Matrix::new(4, 1, vec![0.5, -0.5, 0.25, 0.125]));
            let logit = tape.matmul(pooled, w2);
            let t = tape.constant(Matrix::new(1, 1, vec![1.0]));
            let loss = tape.bce_with_logits(logit, t);
            (tape.value(loss).get(0, 0), tape.backward(loss))
        };
        let (_, grads) = f(&store);
        let analytic = grads.get("w").unwrap().clone();
        grad_check(&mut store, "w", &|s| f(s).0, &analytic, 1e-3);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(2, 2, vec![0.2, -0.1, 0.4, 0.3]));
        let f = |s: &ParamStore| -> (f32, Gradients) {
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::new(3, 2, vec![1.0, 2.0, 3.0, -4.0, 0.5, 6.0]));
            let w = tape.param(s, "w");
            let h = tape.matmul(x, w);
            let pooled = tape.max_rows(h);
            let w2 = tape.constant(Matrix::new(2, 1, vec![0.5, -0.25]));
            let logit = tape.matmul(pooled, w2);
            let t = tape.constant(Matrix::new(1, 1, vec![1.0]));
            let loss = tape.bce_with_logits(logit, t);
            (tape.value(loss).get(0, 0), tape.backward(loss))
        };
        let (_, grads) = f(&store);
        let analytic = grads.get("w").unwrap().clone();
        grad_check(&mut store, "w", &|s| f(s).0, &analytic, 1e-3);
    }

    #[test]
    fn max_rows_forward_takes_column_maxima() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::new(3, 2, vec![1.0, -2.0, 5.0, 0.0, 3.0, -7.0]));
        let m = tape.max_rows(x);
        let v = tape.value(m);
        assert_eq!((v.rows(), v.cols()), (1, 2));
        assert_eq!(v.get(0, 0), 5.0);
        assert_eq!(v.get(0, 1), 0.0);
    }

    #[test]
    fn relu_backward_masks() {
        let mut store = ParamStore::new();
        store.insert("w", Matrix::new(1, 2, vec![1.0, -1.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, "w");
        let r = tape.relu(w);
        let ones = tape.constant(Matrix::new(1, 2, vec![5.0, 5.0]));
        let y = tape.mul(r, ones);
        let pooled = tape.mean_rows(y);
        // reduce to scalar via mean over the 2 cols: use matmul with ones
        let col = tape.constant(Matrix::new(2, 1, vec![1.0, 1.0]));
        let s = tape.matmul(pooled, col);
        let t = tape.constant(Matrix::new(1, 1, vec![0.0]));
        let loss = tape.bce_with_logits(s, t);
        let grads = tape.backward(loss);
        let g = grads.get("w").unwrap();
        assert!(g.get(0, 0) > 0.0, "active unit gets gradient");
        assert_eq!(g.get(0, 1), 0.0, "inactive unit masked");
    }
}
