//! Graph partitioning for Proteus (paper §4.1.1).
//!
//! Splits a protected computational graph into `n` balanced subgraphs via
//! randomized edge contraction (a Karger–Stein-style scheme with
//! balance-seeking restarts), extracts each partition as a standalone graph
//! with `Input` placeholders on cut edges, and reassembles optimized pieces
//! into the full model.
//!
//! # Example
//!
//! ```
//! use proteus_partition::{partition_balanced, PartitionPlan};
//! use proteus_graph::{Graph, Op, Activation, TensorMap};
//!
//! let mut g = Graph::new("m");
//! let mut prev = g.input([1, 16]);
//! for _ in 0..15 {
//!     prev = g.add(Op::Activation(Activation::Relu), [prev]);
//! }
//! g.set_outputs([prev]);
//!
//! let assignment = partition_balanced(&g, 4, 16, 42);
//! let plan = PartitionPlan::extract(&g, &TensorMap::new(), &assignment)?;
//! assert_eq!(plan.pieces.len(), 4);
//! let (merged, _) = plan.reassemble_identity()?;
//! assert_eq!(merged.len(), g.len());
//! # Ok::<(), proteus_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod contract;
pub mod plan;

pub use contract::{contract_once, partition_balanced, partition_by_size, Assignment};
pub use plan::{BoundaryRef, PartitionPlan, Piece};

#[cfg(test)]
pub(crate) mod tests_support {
    use proteus_graph::{Activation, ConvAttrs, Graph, Op};

    /// A medium branching graph used by several tests.
    pub fn medium_graph() -> Graph {
        let mut g = Graph::new("medium");
        let x = g.input([1, 8, 16, 16]);
        let mut h = x;
        for i in 0..10 {
            let c = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [h]);
            let r = g.add(Op::Activation(Activation::Relu), [c]);
            h = if i % 3 == 2 {
                g.add(Op::Add, [r, h])
            } else {
                r
            };
        }
        g.set_outputs([h]);
        g
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use proteus_graph::{Activation, Graph, Op, TensorMap};

    /// Builds a random DAG of unary/binary elementwise ops over one input.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        // sequence of ops: each picks its input(s) among earlier nodes
        proptest::collection::vec((0u8..4, proptest::num::u64::ANY), 3..40).prop_map(|specs| {
            let mut g = Graph::new("prop");
            let mut ids = vec![g.input([1, 8])];
            for (kind, pick) in specs {
                let a = ids[(pick as usize) % ids.len()];
                let b = ids[(pick as usize / 7) % ids.len()];
                let id = match kind {
                    0 => g.add(Op::Activation(Activation::Relu), [a]),
                    1 => g.add(Op::Activation(Activation::Tanh), [a]),
                    2 => g.add(Op::Add, [a, b]),
                    _ => g.add(Op::Mul, [a, b]),
                };
                ids.push(id);
            }
            let last = *ids.last().expect("nonempty");
            g.set_outputs([last]);
            g
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn partition_is_a_cover(g in arb_graph(), n in 1usize..8, seed in 0u64..500) {
            let a = partition_balanced(&g, n, 4, seed);
            prop_assert_eq!(a.partition_of.len(), g.len());
            let sizes = a.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), g.len());
            prop_assert!(sizes.iter().all(|&s| s > 0), "no empty partitions");
        }

        #[test]
        fn extract_reassemble_is_identity_on_structure(
            g in arb_graph(),
            n in 1usize..6,
            seed in 0u64..500,
        ) {
            let a = partition_balanced(&g, n, 4, seed);
            let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
            let (merged, _) = plan.reassemble_identity().unwrap();
            prop_assert_eq!(merged.len(), g.len());
            prop_assert_eq!(merged.edge_count(), g.edge_count());
            merged.validate().unwrap();
            // opcode multiset preserved
            let mut a_ops: Vec<_> = g.iter().map(|(_, n)| n.op.opcode()).collect();
            let mut b_ops: Vec<_> = merged.iter().map(|(_, n)| n.op.opcode()).collect();
            a_ops.sort();
            b_ops.sort();
            prop_assert_eq!(a_ops, b_ops);
        }

        #[test]
        fn pieces_validate_and_infer(
            g in arb_graph(),
            n in 1usize..6,
            seed in 0u64..500,
        ) {
            let a = partition_balanced(&g, n, 4, seed);
            let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
            for piece in &plan.pieces {
                piece.graph.validate().unwrap();
                proteus_graph::infer_shapes(&piece.graph).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod zoo_tests {
    use super::*;
    use proteus_graph::TensorMap;
    use proteus_models::{build, ModelKind};

    #[test]
    fn zoo_models_roundtrip_structurally() {
        for kind in [
            ModelKind::ResNet,
            ModelKind::GoogleNet,
            ModelKind::DistilBert,
        ] {
            let g = build(kind);
            let a = partition_by_size(&g, 8, 8, 42);
            let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
            let (merged, _) = plan.reassemble_identity().unwrap();
            assert_eq!(merged.len(), g.len(), "{kind}");
            assert_eq!(merged.edge_count(), g.edge_count(), "{kind}");
            proteus_graph::infer_shapes(&merged).unwrap();
        }
    }

    #[test]
    fn average_piece_size_near_target() {
        let g = build(ModelKind::ResNet);
        let a = partition_by_size(&g, 8, 16, 7);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        let avg = plan.average_piece_size();
        assert!((6.0..=11.0).contains(&avg), "avg piece size {avg}");
    }
}
