//! Subgraph extraction and reassembly (paper §4.1.1 and §4.3).
//!
//! [`PartitionPlan::extract`] turns a node→partition assignment into
//! standalone subgraph *pieces* whose cross-partition edges are replaced by
//! `Input` placeholders, and records the wiring needed to splice optimized
//! pieces back into a full model ([`PartitionPlan::reassemble`]). The wiring
//! (`boundary` references) is the "information about subgraph connections
//! tracked when the graph was partitioned" that the paper's de-obfuscation
//! step relies on; it never leaves the model owner.

use crate::contract::Assignment;
use proteus_graph::{infer_shapes, Graph, GraphError, NodeId, Op, TensorMap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a piece's boundary input comes from: output `output` of piece
/// `piece`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryRef {
    /// Index of the producing piece in the plan.
    pub piece: usize,
    /// Index into that piece's output list.
    pub output: usize,
}

/// One extracted subgraph plus its interface wiring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Piece {
    /// The standalone subgraph (cut edges replaced by `Input` placeholders).
    pub graph: Graph,
    /// Parameters of the piece's nodes (keyed by piece-local node ids).
    pub params: TensorMap,
    /// For each placeholder input (piece-local id), where its value comes
    /// from in the plan.
    pub boundary: Vec<(NodeId, BoundaryRef)>,
    /// Original node ids corresponding to `graph.outputs()`, in order.
    pub original_outputs: Vec<NodeId>,
}

/// A complete partitioning of a protected model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// The extracted pieces, indexed by partition id.
    pub pieces: Vec<Piece>,
    /// Graph outputs of the original model as piece interface references.
    pub global_outputs: Vec<BoundaryRef>,
    /// Name of the protected model.
    pub model_name: String,
}

impl PartitionPlan {
    /// Extracts standalone subgraphs according to `assignment`.
    ///
    /// Parameters of the original model (`params`) are distributed to the
    /// owning pieces. Placeholder shapes are taken from shape inference on
    /// the original graph.
    ///
    /// # Errors
    /// Propagates shape-inference failures on the original graph (a graph
    /// that does not infer cannot be partitioned faithfully).
    pub fn extract(
        graph: &Graph,
        params: &TensorMap,
        assignment: &Assignment,
    ) -> Result<PartitionPlan, GraphError> {
        let shapes = infer_shapes(graph)?;
        let n_parts = assignment.num_partitions;
        let groups = assignment.groups();

        // Which original nodes must be interface outputs of their piece:
        // nodes consumed by another partition or listed as graph outputs.
        let mut interface: Vec<Vec<NodeId>> = vec![Vec::new(); n_parts];
        let mut is_interface: HashMap<NodeId, bool> = HashMap::new();
        let succ = graph.successors();
        for (id, _) in graph.iter() {
            let p = assignment.partition_of[&id];
            let crosses = succ[&id].iter().any(|s| assignment.partition_of[s] != p)
                || graph.outputs().contains(&id);
            if crosses {
                interface[p].push(id);
                is_interface.insert(id, true);
            }
        }
        for list in &mut interface {
            list.sort();
        }
        // interface index lookup
        let mut interface_index: HashMap<NodeId, usize> = HashMap::new();
        for list in &interface {
            for (j, &id) in list.iter().enumerate() {
                interface_index.insert(id, j);
            }
        }

        let mut pieces = Vec::with_capacity(n_parts);
        for (p, group) in groups.iter().enumerate() {
            let mut sub = Graph::new(format!("{}::part{}", graph.name(), p));
            let mut sub_params = TensorMap::new();
            let mut local: HashMap<NodeId, NodeId> = HashMap::new();
            let mut boundary: Vec<(NodeId, BoundaryRef)> = Vec::new();
            // placeholder per external producer (dedup within the piece)
            let mut placeholder_of: HashMap<NodeId, NodeId> = HashMap::new();

            // Create nodes in original topological order restricted to the
            // group so that piece-local inputs already exist.
            let topo = graph.topo_order()?;
            for &id in topo.iter().filter(|id| group.contains(id)) {
                let node = graph.node(id).expect("live");
                let mut inputs = Vec::with_capacity(node.inputs.len());
                for &inp in &node.inputs {
                    let inp_part = assignment.partition_of[&inp];
                    if inp_part == p {
                        inputs.push(local[&inp]);
                    } else {
                        let ph = *placeholder_of.entry(inp).or_insert_with(|| {
                            let shape = shapes[&inp].clone();
                            let ph = sub.add(Op::Input { shape }, []);
                            boundary.push((
                                ph,
                                BoundaryRef {
                                    piece: inp_part,
                                    output: interface_index[&inp],
                                },
                            ));
                            ph
                        });
                        inputs.push(ph);
                    }
                }
                let new_id = sub.add_named(node.op.clone(), inputs, node.name.clone());
                if let Some(t) = params.get(id) {
                    sub_params.insert(new_id, t.to_vec());
                }
                local.insert(id, new_id);
            }
            let outs: Vec<NodeId> = interface[p].iter().map(|id| local[id]).collect();
            sub.set_outputs(outs);
            pieces.push(Piece {
                graph: sub,
                params: sub_params,
                boundary,
                original_outputs: interface[p].clone(),
            });
        }

        let global_outputs = graph
            .outputs()
            .iter()
            .map(|id| BoundaryRef {
                piece: assignment.partition_of[id],
                output: interface_index[id],
            })
            .collect();

        Ok(PartitionPlan {
            pieces,
            global_outputs,
            model_name: graph.name().to_string(),
        })
    }

    /// Splices pieces back into a single model (the de-obfuscation step).
    ///
    /// `optimized` supplies one graph (and parameter store) per piece — the
    /// optimizer's output. Each optimized piece must preserve its declared
    /// interface: the same number of `Input` placeholders in the same arena
    /// order, and the same number/order of outputs.
    ///
    /// # Errors
    /// Returns [`GraphError::Exec`]-style errors when an optimized piece's
    /// interface no longer matches the plan, and propagates validation
    /// failures of the reassembled model.
    pub fn reassemble(
        &self,
        optimized: &[(Graph, TensorMap)],
    ) -> Result<(Graph, TensorMap), GraphError> {
        if optimized.len() != self.pieces.len() {
            return Err(GraphError::Exec {
                node: format!("<reassemble {}>", self.model_name),
                detail: format!(
                    "expected {} optimized pieces, got {}",
                    self.pieces.len(),
                    optimized.len()
                ),
            });
        }
        let mut merged = Graph::new(self.model_name.clone());
        let mut merged_params = TensorMap::new();
        // (piece, local id) -> merged id
        let mut mapping: HashMap<(usize, NodeId), NodeId> = HashMap::new();

        // The optimizer compacts/renumbers its output, so boundary
        // placeholders are re-identified positionally: optimizers preserve
        // the calling convention, i.e. `Input` nodes survive in arena order.
        let mut boundary_of_piece: Vec<HashMap<NodeId, BoundaryRef>> = Vec::new();
        for (pi, ((g, _), piece)) in optimized.iter().zip(&self.pieces).enumerate() {
            let orig_inputs: Vec<NodeId> = input_ids(&piece.graph);
            let opt_inputs: Vec<NodeId> = input_ids(g);
            if orig_inputs.len() != opt_inputs.len() {
                return Err(GraphError::Exec {
                    node: format!("<piece {pi}>"),
                    detail: format!(
                        "optimizer changed input arity: {} -> {}",
                        orig_inputs.len(),
                        opt_inputs.len()
                    ),
                });
            }
            let pos_of: HashMap<NodeId, usize> = orig_inputs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i))
                .collect();
            let mut map = HashMap::new();
            for (orig_ph, bref) in &piece.boundary {
                let pos = pos_of[orig_ph];
                map.insert(opt_inputs[pos], *bref);
            }
            boundary_of_piece.push(map);
        }

        // Pass 1: copy non-placeholder nodes of every piece.
        for (pi, ((g, params), piece)) in optimized.iter().zip(&self.pieces).enumerate() {
            if g.outputs().len() != piece.graph.outputs().len() {
                return Err(GraphError::Exec {
                    node: format!("<piece {pi}>"),
                    detail: format!(
                        "optimizer changed output arity: {} -> {}",
                        piece.graph.outputs().len(),
                        g.outputs().len()
                    ),
                });
            }
            for (id, node) in g.iter() {
                if boundary_of_piece[pi].contains_key(&id) {
                    continue;
                }
                // inputs rewired in pass 2; keep local ids for now
                let new_id =
                    merged.add_named(node.op.clone(), node.inputs.clone(), node.name.clone());
                if let Some(t) = params.get(id) {
                    merged_params.insert(new_id, t.to_vec());
                }
                mapping.insert((pi, id), new_id);
            }
        }

        // Resolve a boundary reference to a merged node id. When a piece's
        // optimizer eliminated everything between a boundary placeholder
        // and an interface output (e.g. an identity-only piece), the
        // reference chases through to the producing piece transitively.
        let resolve = |start: BoundaryRef,
                       optimized: &[(Graph, TensorMap)],
                       mapping: &HashMap<(usize, NodeId), NodeId>|
         -> Result<NodeId, GraphError> {
            let mut bref = start;
            for _ in 0..=self.pieces.len() {
                let (g, _) = &optimized[bref.piece];
                let out_local = *g
                    .outputs()
                    .get(bref.output)
                    .ok_or_else(|| GraphError::Exec {
                        node: format!("<piece {}>", bref.piece),
                        detail: format!("missing interface output {}", bref.output),
                    })?;
                if let Some(&id) = mapping.get(&(bref.piece, out_local)) {
                    return Ok(id);
                }
                if let Some(&next) = boundary_of_piece[bref.piece].get(&out_local) {
                    bref = next; // passthrough piece: follow the chain
                    continue;
                }
                return Err(GraphError::Exec {
                    node: format!("<piece {}>", bref.piece),
                    detail: format!(
                        "interface output {} resolves to an unknown placeholder",
                        bref.output
                    ),
                });
            }
            Err(GraphError::Exec {
                node: format!("<piece {}>", start.piece),
                detail: "cyclic passthrough chain between pieces".into(),
            })
        };

        // Pass 2: rewire inputs.
        for (pi, (g, _)) in optimized.iter().enumerate() {
            let boundary_of = &boundary_of_piece[pi];
            for (id, node) in g.iter() {
                if boundary_of.contains_key(&id) {
                    continue;
                }
                let merged_id = mapping[&(pi, id)];
                let mut new_inputs = Vec::with_capacity(node.inputs.len());
                for &inp in &node.inputs {
                    if let Some(&bref) = boundary_of.get(&inp) {
                        new_inputs.push(resolve(bref, optimized, &mapping)?);
                    } else {
                        new_inputs.push(mapping[&(pi, inp)]);
                    }
                }
                merged.node_mut(merged_id).expect("copied").inputs = new_inputs;
            }
        }

        let outs: Result<Vec<NodeId>, GraphError> = self
            .global_outputs
            .iter()
            .map(|&bref| resolve(bref, optimized, &mapping))
            .collect();
        merged.set_outputs(outs?);
        merged.validate()?;
        Ok((merged, merged_params))
    }

    /// Reassembles the *unoptimized* pieces (identity round-trip).
    pub fn reassemble_identity(&self) -> Result<(Graph, TensorMap), GraphError> {
        let pieces: Vec<(Graph, TensorMap)> = self
            .pieces
            .iter()
            .map(|p| (p.graph.clone(), p.params.clone()))
            .collect();
        self.reassemble(&pieces)
    }

    /// Average piece size in nodes (excluding boundary placeholders).
    pub fn average_piece_size(&self) -> f64 {
        if self.pieces.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .pieces
            .iter()
            .map(|p| p.graph.len() - p.boundary.len())
            .sum();
        total as f64 / self.pieces.len() as f64
    }
}

/// `Input` node ids of a graph, in arena order — the positional calling
/// convention optimizers must preserve.
fn input_ids(g: &Graph) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
        .map(|(id, _)| id)
        .collect();
    ids.sort();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::partition_balanced;
    use proteus_graph::{Activation, ConvAttrs, Executor, Op, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cnn() -> (Graph, TensorMap) {
        let mut g = Graph::new("small");
        let x = g.input([1, 3, 8, 8]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(4, 4, 3).padding(1)), [r1]);
        let s = g.add(Op::Add, [c2, r1]);
        let r2 = g.add(Op::Activation(Activation::Relu), [s]);
        let gap = g.add(Op::GlobalAveragePool, [r2]);
        g.set_outputs([gap]);
        let params = TensorMap::init_random(&g, 9);
        (g, params)
    }

    #[test]
    fn extract_covers_all_nodes() {
        let (g, params) = small_cnn();
        let a = partition_balanced(&g, 3, 8, 1);
        let plan = PartitionPlan::extract(&g, &params, &a).unwrap();
        assert_eq!(plan.pieces.len(), 3);
        let total: usize = plan
            .pieces
            .iter()
            .map(|p| p.graph.len() - p.boundary.len())
            .sum();
        assert_eq!(total, g.len());
        for piece in &plan.pieces {
            piece.graph.validate().unwrap();
        }
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let (g, params) = small_cnn();
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
        let expected = Executor::new(&g, &params)
            .run(std::slice::from_ref(&input))
            .unwrap();

        for n in 1..=5 {
            let a = partition_balanced(&g, n, 8, n as u64);
            let plan = PartitionPlan::extract(&g, &params, &a).unwrap();
            let (merged, merged_params) = plan.reassemble_identity().unwrap();
            let got = Executor::new(&merged, &merged_params)
                .run(std::slice::from_ref(&input))
                .unwrap();
            assert_eq!(got.len(), expected.len());
            assert!(
                got[0].allclose(&expected[0], 1e-5),
                "n={n}: max diff {}",
                got[0].max_abs_diff(&expected[0])
            );
        }
    }

    #[test]
    fn pieces_infer_shapes() {
        let (g, params) = small_cnn();
        let a = partition_balanced(&g, 4, 8, 2);
        let plan = PartitionPlan::extract(&g, &params, &a).unwrap();
        for piece in &plan.pieces {
            infer_shapes(&piece.graph)
                .unwrap_or_else(|e| panic!("piece {}: {e}", piece.graph.name()));
        }
    }

    #[test]
    fn interface_mismatch_rejected() {
        let (g, params) = small_cnn();
        let a = partition_balanced(&g, 2, 8, 3);
        let plan = PartitionPlan::extract(&g, &params, &a).unwrap();
        let mut bad: Vec<(Graph, TensorMap)> = plan
            .pieces
            .iter()
            .map(|p| (p.graph.clone(), p.params.clone()))
            .collect();
        // drop an output from the first piece
        let outs = bad[0].0.outputs().to_vec();
        bad[0].0.set_outputs(outs.into_iter().skip(1));
        assert!(plan.reassemble(&bad).is_err());
    }

    #[test]
    fn reassembly_chases_passthrough_pieces() {
        // A piece whose only nodes are eliminated (identity/dropout) ends up
        // exporting a boundary placeholder as its interface output; the
        // resolver must chase through to the producing piece.
        let mut g = Graph::new("chain");
        let x = g.input([1, 4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let i1 = g.add(Op::Identity, [a]);
        let i2 = g.add(Op::Identity, [i1]);
        let b = g.add(Op::Activation(Activation::Tanh), [i2]);
        g.set_outputs([b]);
        let params = TensorMap::init_random(&g, 1);
        // force the identities into their own partition
        let mut partition_of = std::collections::HashMap::new();
        partition_of.insert(x, 0usize);
        partition_of.insert(a, 0);
        partition_of.insert(i1, 1);
        partition_of.insert(i2, 1);
        partition_of.insert(b, 2);
        let assignment = crate::contract::Assignment {
            partition_of,
            num_partitions: 3,
        };
        let plan = PartitionPlan::extract(&g, &params, &assignment).unwrap();
        // "optimize": eliminate identities from piece 1, rerouting its
        // output straight to the placeholder
        let optimized: Vec<(Graph, TensorMap)> = plan
            .pieces
            .iter()
            .map(|p| {
                let mut og = p.graph.clone();
                let victims: Vec<NodeId> = og
                    .iter()
                    .filter(|(_, n)| matches!(n.op, Op::Identity))
                    .map(|(id, _)| id)
                    .collect();
                for v in victims {
                    let input = og.node(v).unwrap().inputs[0];
                    og.replace_uses(v, input);
                    og.remove(v);
                }
                (og, p.params.clone())
            })
            .collect();
        let (merged, merged_params) = plan.reassemble(&optimized).unwrap();
        merged.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let probe = Tensor::random([1, 4], 1.0, &mut rng);
        let expected = Executor::new(&g, &params)
            .run(std::slice::from_ref(&probe))
            .unwrap();
        let got = Executor::new(&merged, &merged_params)
            .run(&[probe])
            .unwrap();
        assert!(got[0].allclose(&expected[0], 1e-6));
    }

    #[test]
    fn params_distributed_to_pieces() {
        let (g, params) = small_cnn();
        let a = partition_balanced(&g, 3, 8, 4);
        let plan = PartitionPlan::extract(&g, &params, &a).unwrap();
        let piece_params: usize = plan.pieces.iter().map(|p| p.params.len()).sum();
        assert_eq!(piece_params, params.len());
    }
}
