//! Karger–Stein-inspired randomized edge contraction (paper §4.1.1).
//!
//! The protected graph is partitioned by repeatedly contracting random
//! edges of its undirected view until `n` super-nodes remain; each
//! super-node becomes one subgraph. Because plain contraction produces
//! partitions of wildly varying sizes — which leaks information (large
//! pieces) and hurts optimization (tiny pieces) — the paper runs the
//! contraction several times and keeps the assignment minimizing the
//! standard deviation of partition sizes. [`partition_balanced`] implements
//! exactly that loop.

use proteus_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Union-find over arena indices.
#[derive(Debug, Clone)]
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// A node→partition assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Partition index for every live node.
    pub partition_of: HashMap<NodeId, usize>,
    /// Number of partitions.
    pub num_partitions: usize,
}

impl Assignment {
    /// Sizes of all partitions.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_partitions];
        for &p in self.partition_of.values() {
            sizes[p] += 1;
        }
        sizes
    }

    /// Population standard deviation of partition sizes — the balance metric
    /// the paper's enhanced Karger–Stein loop minimizes.
    pub fn size_std(&self) -> f64 {
        let sizes = self.sizes();
        if sizes.is_empty() {
            return 0.0;
        }
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let var = sizes
            .iter()
            .map(|&s| (s as f64 - mean) * (s as f64 - mean))
            .sum::<f64>()
            / sizes.len() as f64;
        var.sqrt()
    }

    /// Node ids of each partition, sorted within each partition.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.num_partitions];
        for (&id, &p) in &self.partition_of {
            groups[p].push(id);
        }
        for g in &mut groups {
            g.sort();
        }
        groups
    }
}

/// One run of randomized edge contraction down to (at most) `n` components.
///
/// If the undirected view has more than `n` connected components to begin
/// with, the result simply keeps those components separate; the returned
/// assignment may then have more than `n` partitions.
pub fn contract_once(graph: &Graph, n: usize, rng: &mut StdRng) -> Assignment {
    let arena = graph.arena_len();
    let live: Vec<NodeId> = graph.node_ids();
    let n = n.clamp(1, live.len().max(1));
    let mut dsu = Dsu::new(arena);
    // Undirected edge list (u < v deduplicated is unnecessary; duplicates
    // only change the sampling distribution the way multi-edges do in
    // Karger's algorithm, which is faithful to the original).
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(graph.edge_count());
    for (id, node) in graph.iter() {
        for &inp in &node.inputs {
            edges.push((inp.index(), id.index()));
        }
    }
    edges.shuffle(rng);
    let mut components = live.len();
    for (u, v) in edges {
        if components <= n {
            break;
        }
        if dsu.union(u, v) {
            components -= 1;
        }
    }
    // Map DSU roots to dense partition indices.
    let mut root_to_part: HashMap<usize, usize> = HashMap::new();
    let mut partition_of = HashMap::with_capacity(live.len());
    for id in live {
        let root = dsu.find(id.index());
        let next = root_to_part.len();
        let part = *root_to_part.entry(root).or_insert(next);
        partition_of.insert(id, part);
    }
    Assignment {
        partition_of,
        num_partitions: root_to_part.len(),
    }
}

/// The paper's balanced partitioning: run [`contract_once`] `restarts` times
/// and keep the assignment with the smallest partition-size standard
/// deviation. Deterministic in `seed`.
pub fn partition_balanced(graph: &Graph, n: usize, restarts: usize, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Assignment> = None;
    for _ in 0..restarts.max(1) {
        let cand = contract_once(graph, n, &mut rng);
        let better = match &best {
            None => true,
            Some(b) => cand.size_std() < b.size_std(),
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("at least one restart")
}

/// Partitions so that partitions have roughly `target_size` nodes each
/// (the paper's `n = ⌊N / target⌋` convention, clamped to at least 1).
pub fn partition_by_size(
    graph: &Graph,
    target_size: usize,
    restarts: usize,
    seed: u64,
) -> Assignment {
    let n = (graph.len() / target_size.max(1)).max(1);
    partition_balanced(graph, n, restarts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut prev = g.input([1, 4]);
        for _ in 1..n {
            prev = g.add(Op::Activation(Activation::Relu), [prev]);
        }
        g.set_outputs([prev]);
        g
    }

    #[test]
    fn partitions_cover_all_nodes_exactly_once() {
        let g = chain(40);
        let a = partition_balanced(&g, 5, 8, 42);
        assert_eq!(a.partition_of.len(), 40);
        assert_eq!(a.sizes().iter().sum::<usize>(), 40);
        assert_eq!(a.num_partitions, 5);
    }

    #[test]
    fn partitions_are_contiguous_on_a_chain() {
        // Contracting edges of a path always yields contiguous segments.
        let g = chain(30);
        let a = partition_balanced(&g, 4, 4, 7);
        let ids = g.node_ids();
        for w in ids.windows(2) {
            let (p, q) = (a.partition_of[&w[0]], a.partition_of[&w[1]]);
            // neighbors on the chain are either same partition or a boundary
            let _ = (p, q); // contiguity check below
        }
        // each partition's ids form one contiguous run
        for group in a.groups() {
            for w in group.windows(2) {
                assert_eq!(
                    w[1].index() - w[0].index(),
                    1,
                    "chain partitions contiguous"
                );
            }
        }
    }

    #[test]
    fn balancing_reduces_std() {
        let g = crate::tests_support::medium_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let single = contract_once(&g, 8, &mut rng);
        let balanced = partition_balanced(&g, 8, 32, 3);
        assert!(
            balanced.size_std() <= single.size_std() + 1e-9,
            "balanced {} vs single {}",
            balanced.size_std(),
            single.size_std()
        );
    }

    #[test]
    fn n_clamped_to_node_count() {
        let g = chain(5);
        let a = partition_balanced(&g, 50, 2, 1);
        assert_eq!(a.num_partitions, 5);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = chain(25);
        let a = partition_balanced(&g, 5, 8, 11);
        let b = partition_balanced(&g, 5, 8, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_by_size_targets_average() {
        let g = chain(64);
        let a = partition_by_size(&g, 8, 16, 5);
        assert_eq!(a.num_partitions, 8);
        let sizes = a.sizes();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 8.0).abs() < 1e-9);
    }
}
