//! `proteus::store` — a content-addressed, crash-safe durable store for
//! trained artifacts and in-flight sessions.
//!
//! Everything the store persists goes through a write-ahead log of
//! wire-v1-framed records whose digests are Merkle-style chained (each
//! record's FNV-1a is seeded with the previous record's digest, and each
//! record's checksummed payload names its predecessor's digest — see
//! [`wal`]). Appends commit atomically by renaming a small marker file
//! over the previous one; recovery replays the committed horizon and
//! truncates any uncommitted tail a crash left behind. The failure
//! discipline matches the net codec's: every bad byte is a typed
//! [`StoreError`], and nothing is ever silently resynced.
//!
//! What the log carries:
//!
//! - **Artifacts** — `PRTA` bytes, content-addressed by their FNV-1a
//!   digest and indexed by config fingerprint
//!   ([`Store::put_artifact`] / [`Store::latest_artifact`]; the
//!   convenience wrappers are
//!   [`Proteus::save_artifact_store`](crate::Proteus::save_artifact_store)
//!   and
//!   [`Proteus::load_artifact_store`](crate::Proteus::load_artifact_store)).
//! - **Owner sessions** — checkpointed [`ObfuscationSecrets`] plus the
//!   raw optimized frames accepted so far, so a killed owner process can
//!   [`DeobfuscationSession::resume`](crate::DeobfuscationSession::resume)
//!   and finish with bit-identical output.
//! - **Serving lanes** — the input frames a daemon accepted but had not
//!   finished when it died, so a restarted `proteus-serve --store-dir`
//!   re-optimizes them (request-id-keyed determinism makes the replayed
//!   bytes identical) before taking new traffic.
//!
//! Crash matrix (what a `SIGKILL` at any byte boundary means):
//!
//! | killed during            | after recovery                           |
//! |--------------------------|------------------------------------------|
//! | store creation           | WAL holds at most a genesis prefix and no marker exists; nothing was committed — recreated fresh |
//! | WAL record append        | tail truncated; append was never acked   |
//! | marker tmp write         | old marker intact; tail truncated        |
//! | marker rename            | rename is atomic: old or new, never torn |
//! | any later read           | nothing to recover                       |
//!
//! Every append fsyncs the WAL, the staged marker, *and* the store
//! directory before acknowledging, so the commit boundary survives
//! power loss as well as a killed process. A *failed* append rolls the
//! WAL back to the committed horizon before returning its error, so
//! orphan bytes of a half-written record can never end up under a
//! later marker; if even that rollback fails, the store poisons itself
//! ([`StoreError::Poisoned`]) and refuses further appends until a
//! reopen replays the on-disk truth.
//!
//! A flipped byte is *not* a crash: inside the committed horizon it
//! breaks the frame checksum or the digest chain and surfaces as
//! [`StoreError::Corrupt`]; in the marker it surfaces as
//! [`StoreError::Marker`]. `proteus-train store verify DIR` runs the
//! same fsck read-only.

mod codec;
pub mod wal;

pub use codec::SessionCheckpoint;
pub(crate) use codec::{decode_secrets, encode_secrets};

use crate::bucket::ObfuscationSecrets;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::fnv1a64;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use wal::{Marker, RecordTag, WalRecord};

/// Any failure of the durable store. Typed and fail-closed, like every
/// other decode boundary in the workspace: corruption never degrades
/// into a silent partial recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What was being done.
        context: String,
        /// The OS error, stringified (kept clonable/comparable).
        detail: String,
    },
    /// A byte inside the committed WAL horizon is wrong: a record failed
    /// its frame checksum, broke the digest chain, carried a bad
    /// sequence number or tag, or the replay disagrees with the marker.
    Corrupt {
        /// Byte offset of the first bad record.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The commit marker itself is missing, malformed, or fails its
    /// checksum — the store has no trustworthy committed horizon.
    Marker {
        /// What was wrong.
        detail: String,
    },
    /// The store does not hold what was asked for (no such artifact, no
    /// such open session).
    Missing {
        /// What was requested.
        what: String,
    },
    /// The caller drove the store out of protocol (checkpointing the
    /// same request twice, journaling a frame for a request that was
    /// never opened, ...).
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// A failed append could not be cleanly undone (the WAL rollback
    /// or the directory sync after a committed rename failed), so the
    /// in-memory view can no longer be trusted to match the disk.
    /// Further appends are refused; reopening the store replays the
    /// on-disk truth and recovers.
    Poisoned {
        /// The failure that poisoned the store.
        detail: String,
    },
}

impl StoreError {
    fn io(context: impl Into<String>, err: &std::io::Error) -> StoreError {
        StoreError::Io {
            context: context.into(),
            detail: err.to_string(),
        }
    }

    pub(crate) fn corrupt(offset: u64, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }

    pub(crate) fn marker(detail: impl Into<String>) -> StoreError {
        StoreError::Marker {
            detail: detail.into(),
        }
    }

    fn missing(what: impl Into<String>) -> StoreError {
        StoreError::Missing { what: what.into() }
    }

    fn invalid(detail: impl Into<String>) -> StoreError {
        StoreError::Invalid {
            detail: detail.into(),
        }
    }

    fn poisoned(detail: impl Into<String>) -> StoreError {
        StoreError::Poisoned {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, detail } => {
                write!(f, "store i/o error {context}: {detail}")
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store corrupt at byte {offset}: {detail}")
            }
            StoreError::Marker { detail } => write!(f, "store commit marker unusable: {detail}"),
            StoreError::Missing { what } => write!(f, "store does not hold {what}"),
            StoreError::Invalid { detail } => write!(f, "store misuse: {detail}"),
            StoreError::Poisoned { detail } => {
                write!(f, "store poisoned (reopen to recover): {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`Store::open_or_create`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether the store was created fresh (no prior state existed).
    pub created: bool,
    /// Committed records replayed.
    pub records: u64,
    /// Uncommitted tail bytes truncated (a crash between append and
    /// commit left them; the append was never acknowledged).
    pub truncated_bytes: u64,
    /// Artifacts resident after replay.
    pub artifacts: usize,
    /// Owner sessions still open after replay.
    pub open_sessions: usize,
    /// Serving lanes still pending after replay.
    pub pending_lanes: usize,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.created {
            return write!(f, "created fresh store");
        }
        write!(
            f,
            "replayed {} record(s) ({} artifact(s), {} open session(s), {} pending lane(s))",
            self.records, self.artifacts, self.open_sessions, self.pending_lanes
        )?;
        if self.truncated_bytes > 0 {
            write!(
                f,
                "; truncated {} uncommitted tail byte(s)",
                self.truncated_bytes
            )?;
        }
        Ok(())
    }
}

/// What [`Store::verify`] (the read-only fsck) found in a healthy store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Committed records verified.
    pub records: u64,
    /// Committed WAL bytes.
    pub committed_len: u64,
    /// Chain digest at the committed horizon.
    pub chain_digest: u64,
    /// Uncommitted tail bytes present (would be truncated by a
    /// recovering open; harmless).
    pub tail_bytes: u64,
    /// Artifacts resident.
    pub artifacts: usize,
    /// Owner sessions open.
    pub open_sessions: usize,
    /// Serving lanes pending.
    pub pending_lanes: usize,
}

/// One resident artifact: content digest, config fingerprint, bytes.
#[derive(Debug, Clone)]
struct ArtifactEntry {
    digest: u64,
    fingerprint: u64,
    bytes: Bytes,
}

/// Journaled state of one open owner session.
#[derive(Debug, Clone, Default)]
struct SessionState {
    secrets: Bytes,
    frames: Vec<Bytes>,
}

/// Mutable state behind the store's lock: the WAL append handle, the
/// chain position, and the indexes replay rebuilt.
#[derive(Debug)]
struct Inner {
    wal: File,
    chain: u64,
    records: u64,
    committed_len: u64,
    /// `Some` when a failed append could not be cleanly undone: the
    /// in-memory view may disagree with the WAL bytes, so appends are
    /// refused until the store is reopened (which replays the disk).
    poisoned: Option<String>,
    artifacts: Vec<ArtifactEntry>,
    sessions: BTreeMap<u64, SessionState>,
    lanes: BTreeMap<u64, Vec<Bytes>>,
    /// Test-only fault injection: the next append writes a partial
    /// record and then fails, the way ENOSPC mid-`write_all` would.
    #[cfg(test)]
    fail_next_append: bool,
}

impl Inner {
    /// Fresh in-memory state positioned at `horizon` with empty
    /// indexes (replay fills them).
    fn new(wal: File, horizon: &Marker) -> Inner {
        Inner {
            wal,
            chain: horizon.chain,
            records: horizon.records,
            committed_len: horizon.committed_len,
            poisoned: None,
            artifacts: Vec::new(),
            sessions: BTreeMap::new(),
            lanes: BTreeMap::new(),
            #[cfg(test)]
            fail_next_append: false,
        }
    }
}

/// Rolls the WAL back to the committed horizon after a failed append,
/// so the orphan bytes of a half-written record can never sit under a
/// marker a *later* successful append commits (replay would then hit
/// `Corrupt` and the store would be unrecoverable). When even the
/// rollback fails, the store poisons itself: further appends are
/// refused, and only a reopen — whose recovery truncates the tail from
/// the on-disk truth — resumes service.
fn rollback(inner: &mut Inner, cause: StoreError) -> StoreError {
    if let Err(e) = inner
        .wal
        .set_len(inner.committed_len)
        .and_then(|()| inner.wal.sync_data())
    {
        inner.poisoned = Some(format!(
            "append failed ({cause}) and rolling the WAL back failed too ({e})"
        ));
    }
    cause
}

/// Fsyncs the store directory so a just-renamed marker (and the WAL's
/// directory entry) survive power loss, not just process death.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The crash-safe durable store. Thread-safe behind one internal lock —
/// share it as an `Arc<Store>` between a serving daemon's connection
/// threads.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

fn read_file(path: &Path, context: &str) -> Result<Vec<u8>, StoreError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| StoreError::io(context, &e))?;
    Ok(buf)
}

impl Store {
    /// Path of the WAL file inside a store directory.
    pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(wal::WAL_FILE)
    }

    /// Path of the commit marker inside a store directory.
    pub fn marker_path(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(wal::MARKER_FILE)
    }

    /// Opens the store at `dir`, creating it (directory, genesis record,
    /// first commit marker) when nothing is there yet.
    ///
    /// Opening an existing store replays the committed horizon —
    /// verifying every frame checksum, the digest chain, and the
    /// sequence numbers against the marker — then truncates any
    /// uncommitted tail a crash left. The report says what happened.
    ///
    /// A WAL with no marker that holds at most a (possibly torn)
    /// prefix of the genesis record is a crash *during creation* —
    /// nothing was ever committed — and is recreated fresh. Any other
    /// WAL without a marker lost its commit horizon and is refused.
    ///
    /// # Errors
    /// [`StoreError::Marker`] / [`StoreError::Corrupt`] when the state
    /// on disk cannot be trusted (marker missing with committed-looking
    /// data present, WAL missing, a failed checksum, a broken chain);
    /// [`StoreError::Io`] on filesystem failure. Never a partial
    /// recovery.
    pub fn open_or_create(dir: impl AsRef<Path>) -> Result<(Store, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("creating {}", dir.display()), &e))?;
        let wal_path = Store::wal_path(&dir);
        let marker_path = Store::marker_path(&dir);
        match (wal_path.exists(), marker_path.exists()) {
            (false, false) => Store::create(dir),
            (true, true) => Store::recover(dir),
            (true, false) => {
                // a crash inside `create` — after the WAL file appeared
                // but before the first marker rename landed — leaves
                // exactly a prefix of the canonical genesis record and
                // no marker. Nothing was ever committed or
                // acknowledged, so recreating fresh loses nothing. Any
                // *other* WAL without a marker means acknowledged state
                // lost its commit horizon: refuse.
                let wal_bytes = read_file(&wal_path, "reading WAL")?;
                let genesis = wal::encode_record(
                    RecordTag::Genesis,
                    0,
                    wal::CHAIN_SEED,
                    &wal::STORE_FORMAT_VERSION.to_le_bytes(),
                );
                if genesis.starts_with(&wal_bytes) {
                    Store::create(dir)
                } else {
                    Err(StoreError::marker(
                        "WAL exists but the commit marker is missing — no committed horizon to recover to",
                    ))
                }
            }
            (false, true) => Err(StoreError::marker(
                "commit marker exists but the WAL is missing",
            )),
        }
    }

    fn create(dir: PathBuf) -> Result<(Store, RecoveryReport), StoreError> {
        let wal_path = Store::wal_path(&dir);
        // a partial genesis WAL from a creation crash may exist
        // (open_or_create routes that state here): remove it, since
        // `truncate` cannot be combined with the append mode we need —
        // rollback after a failed append shrinks the file with
        // `set_len`, and O_APPEND keeps the next write at the new end
        // instead of a stale cursor past EOF
        if wal_path.exists() {
            std::fs::remove_file(&wal_path)
                .map_err(|e| StoreError::io(format!("removing {}", wal_path.display()), &e))?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| StoreError::io(format!("creating {}", wal_path.display()), &e))?;
        let store = Store {
            dir,
            inner: Mutex::new(Inner::new(
                wal,
                &Marker {
                    committed_len: 0,
                    chain: wal::CHAIN_SEED,
                    records: 0,
                },
            )),
        };
        {
            let mut inner = store.lock();
            let body = wal::STORE_FORMAT_VERSION.to_le_bytes();
            store.append(&mut inner, RecordTag::Genesis, &body)?;
        }
        Ok((
            store,
            RecoveryReport {
                created: true,
                records: 1,
                ..RecoveryReport::default()
            },
        ))
    }

    fn recover(dir: PathBuf) -> Result<(Store, RecoveryReport), StoreError> {
        let wal_path = Store::wal_path(&dir);
        let marker_bytes = read_file(&Store::marker_path(&dir), "reading commit marker")?;
        let marker = wal::decode_marker(&marker_bytes)?;
        let wal_bytes = read_file(&wal_path, "reading WAL")?;
        let records = wal::replay(&wal_bytes, &marker)?;

        let mut inner = Inner::new(
            OpenOptions::new()
                .append(true)
                .open(&wal_path)
                .map_err(|e| StoreError::io(format!("opening {}", wal_path.display()), &e))?,
            &marker,
        );
        for (i, record) in records.iter().enumerate() {
            apply(&mut inner, record).map_err(|detail| StoreError::corrupt(i as u64, detail))?;
        }

        // truncate the uncommitted tail (a crash between append and
        // marker rename); those bytes were never acknowledged
        let truncated_bytes = wal_bytes.len() as u64 - marker.committed_len;
        if truncated_bytes > 0 {
            inner
                .wal
                .set_len(marker.committed_len)
                .and_then(|()| inner.wal.sync_data())
                .map_err(|e| StoreError::io("truncating uncommitted tail", &e))?;
        }

        let report = RecoveryReport {
            created: false,
            records: marker.records,
            truncated_bytes,
            artifacts: inner.artifacts.len(),
            open_sessions: inner.sessions.len(),
            pending_lanes: inner.lanes.len(),
        };
        Ok((
            Store {
                dir,
                inner: Mutex::new(inner),
            },
            report,
        ))
    }

    /// Read-only fsck of the store at `dir`: replays and verifies the
    /// committed horizon exactly like an open would, without touching
    /// the files. The tool surface is `proteus-train store verify DIR`.
    ///
    /// # Errors
    /// Exactly the errors [`Store::open_or_create`] would report.
    pub fn verify(dir: impl AsRef<Path>) -> Result<VerifyReport, StoreError> {
        let dir = dir.as_ref();
        let marker_bytes = read_file(&Store::marker_path(dir), "reading commit marker")?;
        let marker = wal::decode_marker(&marker_bytes)?;
        let wal_bytes = read_file(&Store::wal_path(dir), "reading WAL")?;
        let records = wal::replay(&wal_bytes, &marker)?;
        // interpret the records too: a digest-valid log whose contents
        // are self-inconsistent (frame for an unopened session, artifact
        // body hash mismatch) is still corruption
        let mut shadow = Inner::new(
            File::open(Store::wal_path(dir)).map_err(|e| StoreError::io("reopening WAL", &e))?,
            &marker,
        );
        for (i, record) in records.iter().enumerate() {
            apply(&mut shadow, record).map_err(|detail| StoreError::corrupt(i as u64, detail))?;
        }
        Ok(VerifyReport {
            records: marker.records,
            committed_len: marker.committed_len,
            chain_digest: marker.chain,
            tail_bytes: wal_bytes.len() as u64 - marker.committed_len,
            artifacts: shadow.artifacts.len(),
            open_sessions: shadow.sessions.len(),
            pending_lanes: shadow.lanes.len(),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed records in the log.
    pub fn records(&self) -> u64 {
        self.lock().records
    }

    /// Committed WAL length in bytes.
    pub fn committed_len(&self) -> u64 {
        self.lock().committed_len
    }

    /// Whether a failed append has poisoned the store — appends are
    /// refused with [`StoreError::Poisoned`] until it is reopened. A
    /// health signal for long-running daemons.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned.is_some()
    }

    /// Makes the next append write a partial record and fail, the way
    /// ENOSPC mid-`write_all` would.
    #[cfg(test)]
    fn inject_append_failure(&self) {
        self.lock().fail_next_append = true;
    }

    // -- artifacts ----------------------------------------------------

    /// Stores a trained artifact (`PRTA` bytes), content-addressed:
    /// returns the artifact's FNV-1a content digest, and appends
    /// nothing when identical bytes are already resident *under the
    /// same fingerprint*. `fingerprint` is the config fingerprint the
    /// artifact is indexed under for lookup — the same bytes arriving
    /// under a new fingerprint append a fresh index record, so
    /// [`Store::latest_artifact`] always reports the association most
    /// recently saved.
    ///
    /// # Errors
    /// [`StoreError::Io`] on append failure.
    pub fn put_artifact(&self, bytes: &[u8], fingerprint: u64) -> Result<u64, StoreError> {
        let digest = fnv1a64(bytes);
        let mut inner = self.lock();
        if inner
            .artifacts
            .iter()
            .any(|a| a.digest == digest && a.fingerprint == fingerprint)
        {
            return Ok(digest);
        }
        let mut body = BytesMut::with_capacity(8 + 8 + 4 + bytes.len());
        body.put_u64_le(fingerprint);
        body.put_u64_le(digest);
        body.put_u32_le(bytes.len() as u32);
        body.put_slice(bytes);
        self.append(&mut inner, RecordTag::Artifact, &body)?;
        Ok(digest)
    }

    /// The most recently stored artifact, as `(config fingerprint,
    /// bytes)`.
    pub fn latest_artifact(&self) -> Option<(u64, Bytes)> {
        let inner = self.lock();
        inner
            .artifacts
            .last()
            .map(|a| (a.fingerprint, a.bytes.clone()))
    }

    /// The artifact with the given content digest, if resident.
    pub fn artifact(&self, digest: u64) -> Option<Bytes> {
        let inner = self.lock();
        inner
            .artifacts
            .iter()
            .find(|a| a.digest == digest)
            .map(|a| a.bytes.clone())
    }

    /// Number of distinct artifacts resident.
    pub fn artifact_count(&self) -> usize {
        self.lock().artifacts.len()
    }

    // -- owner sessions -----------------------------------------------

    /// Opens a durable session for `secrets.request_id`: checkpoints the
    /// secrets so the reassembly can be resumed after a crash.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] when the request is already open;
    /// [`StoreError::Io`] on append failure.
    pub fn checkpoint_session(&self, secrets: &ObfuscationSecrets) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if inner.sessions.contains_key(&secrets.request_id) {
            return Err(StoreError::invalid(format!(
                "session {:#x} is already open",
                secrets.request_id
            )));
        }
        let body = encode_secrets(secrets);
        self.append(&mut inner, RecordTag::SessionOpen, &body)
    }

    /// Journals one accepted optimized frame (raw wire bytes, v1 or v2)
    /// for an open session.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] when no such session is open;
    /// [`StoreError::Io`] on append failure.
    pub fn checkpoint_frame(&self, request_id: u64, frame: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if !inner.sessions.contains_key(&request_id) {
            return Err(StoreError::invalid(format!(
                "no open session {request_id:#x} to journal a frame for"
            )));
        }
        let mut body = BytesMut::with_capacity(8 + frame.len());
        body.put_u64_le(request_id);
        body.put_slice(frame);
        self.append(&mut inner, RecordTag::SessionFrame, &body)
    }

    /// Marks a session finished; its journaled state is garbage from
    /// here on and will not be offered for resume.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] when no such session is open;
    /// [`StoreError::Io`] on append failure.
    pub fn finish_session(&self, request_id: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if !inner.sessions.contains_key(&request_id) {
            return Err(StoreError::invalid(format!(
                "no open session {request_id:#x} to finish"
            )));
        }
        self.append(
            &mut inner,
            RecordTag::SessionDone,
            &request_id.to_le_bytes(),
        )
    }

    /// Request ids of every session still open (checkpointed, never
    /// finished), in ascending order.
    pub fn open_sessions(&self) -> Vec<u64> {
        self.lock().sessions.keys().copied().collect()
    }

    /// The journaled state of an open session: its decoded secrets and
    /// the raw frames accepted before the interruption — exactly the
    /// arguments of
    /// [`DeobfuscationSession::resume`](crate::DeobfuscationSession::resume).
    ///
    /// # Errors
    /// [`StoreError::Missing`] when no such session is open;
    /// [`StoreError::Corrupt`] when the journaled secrets no longer
    /// decode (cannot happen without on-disk tampering surviving the
    /// chain — defense in depth).
    pub fn resume_session(
        &self,
        request_id: u64,
    ) -> Result<(ObfuscationSecrets, Vec<Bytes>), StoreError> {
        let inner = self.lock();
        let state = inner
            .sessions
            .get(&request_id)
            .ok_or_else(|| StoreError::missing(format!("an open session {request_id:#x}")))?;
        let mut sbytes = state.secrets.clone();
        let secrets = decode_secrets(&mut sbytes)
            .map_err(|e| StoreError::corrupt(0, format!("journaled secrets: {e}")))?;
        Ok((secrets, state.frames.clone()))
    }

    // -- serving lanes ------------------------------------------------

    /// Journals one input frame (raw wire bytes) submitted to a serving
    /// lane. The first frame of a request id opens the lane.
    ///
    /// # Errors
    /// [`StoreError::Io`] on append failure.
    pub fn record_lane_frame(&self, request_id: u64, frame: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let mut body = BytesMut::with_capacity(8 + frame.len());
        body.put_u64_le(request_id);
        body.put_slice(frame);
        self.append(&mut inner, RecordTag::LaneSubmit, &body)
    }

    /// Marks a serving lane fully delivered; it will not be re-run on
    /// recovery. A lane that was never journaled is fine to finish —
    /// the daemon calls this unconditionally at lane teardown.
    ///
    /// # Errors
    /// [`StoreError::Io`] on append failure.
    pub fn finish_lane(&self, request_id: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if !inner.lanes.contains_key(&request_id) {
            return Ok(());
        }
        self.append(&mut inner, RecordTag::LaneDone, &request_id.to_le_bytes())
    }

    /// Every pending lane (submitted frames that were never marked
    /// delivered), in ascending request-id order — what a restarted
    /// daemon re-optimizes before taking traffic.
    pub fn pending_lanes(&self) -> Vec<(u64, Vec<Bytes>)> {
        self.lock()
            .lanes
            .iter()
            .map(|(rid, frames)| (*rid, frames.clone()))
            .collect()
    }

    // -- internals ----------------------------------------------------

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // the store holds no state that can go inconsistent under a
        // panicking holder half-way: appends write-then-apply, and apply
        // is infallible once the record is durable. Healing the poison
        // keeps the daemon serving.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one record and commits it: write + flush + fsync the WAL,
    /// atomically rename the refreshed marker into place, fsync the
    /// store directory (so the rename — and, on the first append, the
    /// WAL's directory entry — survive power loss, not just process
    /// death), then apply the record to the in-memory indexes. Only
    /// returns `Ok` after the directory sync — the all-or-nothing
    /// acknowledgement boundary.
    ///
    /// A failed append never leaves orphan bytes under a later marker:
    /// the WAL is [`rollback`]ed to the committed horizon before the
    /// error returns, and when that cannot be done the store poisons
    /// itself and refuses further appends ([`StoreError::Poisoned`]).
    fn append(&self, inner: &mut Inner, tag: RecordTag, body: &[u8]) -> Result<(), StoreError> {
        if let Some(detail) = &inner.poisoned {
            return Err(StoreError::poisoned(detail.clone()));
        }
        let record = wal::encode_record(tag, inner.records, inner.chain, body);
        #[cfg(test)]
        if inner.fail_next_append {
            inner.fail_next_append = false;
            let _ = inner.wal.write_all(&record[..record.len() / 2]);
            let _ = inner.wal.sync_data();
            let injected = std::io::Error::other("injected mid-write failure");
            let cause = StoreError::io("appending WAL record", &injected);
            return Err(rollback(inner, cause));
        }
        if let Err(e) = inner
            .wal
            .write_all(&record)
            .and_then(|()| inner.wal.flush())
            .and_then(|()| inner.wal.sync_data())
        {
            return Err(rollback(inner, StoreError::io("appending WAL record", &e)));
        }
        let chain = wal::chain_digest(inner.chain, &record);
        let marker = Marker {
            committed_len: inner.committed_len + record.len() as u64,
            chain,
            records: inner.records + 1,
        };
        let tmp = self.dir.join(wal::MARKER_TMP_FILE);
        let dst = self.dir.join(wal::MARKER_FILE);
        let stage = |tmp: &Path| -> std::io::Result<()> {
            let mut f = File::create(tmp)?;
            f.write_all(&wal::encode_marker(&marker))?;
            f.sync_data()?;
            std::fs::rename(tmp, &dst)
        };
        if let Err(e) = stage(&tmp) {
            return Err(rollback(inner, StoreError::io("committing marker", &e)));
        }
        if let Err(e) = sync_dir(&self.dir) {
            // the new marker is already renamed into place, so the
            // record must *stay* — truncating now would leave the
            // marker claiming bytes the WAL no longer has. Poison
            // instead; a reopen replays the (consistent) on-disk state.
            let err = StoreError::io("syncing store directory", &e);
            inner.poisoned = Some(err.to_string());
            return Err(err);
        }
        inner.chain = chain;
        inner.records = marker.records;
        inner.committed_len = marker.committed_len;
        let applied = apply(
            inner,
            &WalRecord {
                tag,
                seq: marker.records - 1,
                body: Bytes::copy_from_slice(body),
            },
        );
        debug_assert!(
            applied.is_ok(),
            "append validated before write: {applied:?}"
        );
        Ok(())
    }
}

/// Interprets one chain-verified record into the in-memory indexes.
/// Returns a description of the inconsistency when the log is
/// self-contradictory (callers wrap it in [`StoreError::Corrupt`]).
fn apply(inner: &mut Inner, record: &WalRecord) -> Result<(), String> {
    let mut body = record.body.clone();
    match record.tag {
        RecordTag::Genesis => {
            if body.remaining() < 4 {
                return Err("genesis record too short".into());
            }
            let version = body.get_u32_le();
            if version != wal::STORE_FORMAT_VERSION {
                return Err(format!(
                    "store format version {version} (this library speaks {})",
                    wal::STORE_FORMAT_VERSION
                ));
            }
            if record.seq != 0 {
                return Err(format!("genesis record at sequence {}", record.seq));
            }
        }
        RecordTag::Artifact => {
            if body.remaining() < 20 {
                return Err("artifact record too short".into());
            }
            let fingerprint = body.get_u64_le();
            let digest = body.get_u64_le();
            let len = body.get_u32_le() as usize;
            if body.remaining() != len {
                return Err(format!(
                    "artifact record claims {len} bytes, carries {}",
                    body.remaining()
                ));
            }
            let bytes = body;
            if fnv1a64(&bytes) != digest {
                return Err(format!(
                    "artifact content does not hash to its recorded digest {digest:#018x}"
                ));
            }
            inner.artifacts.push(ArtifactEntry {
                digest,
                fingerprint,
                bytes,
            });
        }
        RecordTag::SessionOpen => {
            let mut peek = body.clone();
            if peek.remaining() < 9 {
                return Err("session-open record too short".into());
            }
            peek.get_u8(); // codec version; validated on resume
            let request_id = peek.get_u64_le();
            if inner.sessions.contains_key(&request_id) {
                return Err(format!("session {request_id:#x} opened twice"));
            }
            inner.sessions.insert(
                request_id,
                SessionState {
                    secrets: body,
                    frames: Vec::new(),
                },
            );
        }
        RecordTag::SessionFrame => {
            if body.remaining() < 8 {
                return Err("session-frame record too short".into());
            }
            let request_id = body.get_u64_le();
            let state = inner
                .sessions
                .get_mut(&request_id)
                .ok_or_else(|| format!("frame journaled for unopened session {request_id:#x}"))?;
            state.frames.push(body);
        }
        RecordTag::SessionDone => {
            if body.remaining() < 8 {
                return Err("session-done record too short".into());
            }
            let request_id = body.get_u64_le();
            if inner.sessions.remove(&request_id).is_none() {
                return Err(format!("unopened session {request_id:#x} marked done"));
            }
        }
        RecordTag::LaneSubmit => {
            if body.remaining() < 8 {
                return Err("lane-submit record too short".into());
            }
            let request_id = body.get_u64_le();
            inner.lanes.entry(request_id).or_default().push(body);
        }
        RecordTag::LaneDone => {
            if body.remaining() < 8 {
                return Err("lane-done record too short".into());
            }
            let request_id = body.get_u64_le();
            if inner.lanes.remove(&request_id).is_none() {
                return Err(format!("unsubmitted lane {request_id:#x} marked done"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proteus-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_store_reopens_empty() {
        let dir = tempdir("fresh");
        let (store, report) = Store::open_or_create(&dir).unwrap();
        assert!(report.created);
        assert_eq!(store.records(), 1, "genesis only");
        drop(store);
        let (store, report) = Store::open_or_create(&dir).unwrap();
        assert!(!report.created);
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(store.artifact_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_roundtrips_and_dedups() {
        let dir = tempdir("artifact");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        let digest = store.put_artifact(b"pretend-prta", 0xF00D).unwrap();
        let again = store.put_artifact(b"pretend-prta", 0xF00D).unwrap();
        assert_eq!(digest, again);
        assert_eq!(store.artifact_count(), 1, "content-addressed dedup");
        assert_eq!(store.records(), 2, "second put appended nothing");
        drop(store);
        let (store, report) = Store::open_or_create(&dir).unwrap();
        assert_eq!(report.artifacts, 1);
        let (fp, bytes) = store.latest_artifact().unwrap();
        assert_eq!(fp, 0xF00D);
        assert_eq!(&bytes[..], b"pretend-prta");
        assert_eq!(store.artifact(digest).unwrap(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lane_journal_survives_reopen_until_done() {
        let dir = tempdir("lanes");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        store.record_lane_frame(7, b"frame-a").unwrap();
        store.record_lane_frame(7, b"frame-b").unwrap();
        store.record_lane_frame(9, b"frame-c").unwrap();
        store.finish_lane(9).unwrap();
        store.finish_lane(1234).unwrap(); // never journaled: a no-op
        drop(store);
        let (store, report) = Store::open_or_create(&dir).unwrap();
        assert_eq!(report.pending_lanes, 1);
        let lanes = store.pending_lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].0, 7);
        assert_eq!(&lanes[0].1[0][..], b"frame-a");
        assert_eq!(&lanes[0].1[1][..], b"frame-b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misuse_is_typed_invalid() {
        let dir = tempdir("misuse");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        let err = store.checkpoint_frame(99, b"frame").unwrap_err();
        assert!(matches!(err, StoreError::Invalid { .. }), "{err}");
        let err = store.finish_session(99).unwrap_err();
        assert!(matches!(err, StoreError::Invalid { .. }), "{err}");
        let err = store.resume_session(99).unwrap_err();
        assert!(matches!(err, StoreError::Missing { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_missing_store_is_typed_marker_error() {
        let dir = tempdir("half");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        // committed data beyond genesis: losing the marker now means
        // acknowledged state has no horizon — must refuse, not recreate
        store.put_artifact(b"acked-bytes", 0xA).unwrap();
        drop(store);
        std::fs::remove_file(Store::marker_path(&dir)).unwrap();
        let err = Store::open_or_create(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Marker { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_creation_recreates_fresh() {
        // a kill anywhere inside create() leaves a prefix of the
        // canonical genesis record and no marker; every such state must
        // open as a fresh store
        let genesis = wal::encode_record(
            RecordTag::Genesis,
            0,
            wal::CHAIN_SEED,
            &wal::STORE_FORMAT_VERSION.to_le_bytes(),
        );
        let dir = tempdir("createcrash");
        for cut in [0, 1, genesis.len() / 2, genesis.len()] {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(Store::wal_path(&dir), &genesis[..cut]).unwrap();
            let (store, report) = Store::open_or_create(&dir)
                .unwrap_or_else(|e| panic!("creation crash at byte {cut} not recovered: {e}"));
            assert!(report.created, "cut {cut}");
            assert_eq!(store.records(), 1, "cut {cut}: genesis only");
            drop(store);
        }
        // anything that is NOT a genesis prefix must still refuse
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Store::wal_path(&dir), b"not a genesis record").unwrap();
        let err = Store::open_or_create(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Marker { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_back_and_the_store_stays_usable() {
        let dir = tempdir("rollback");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        store.put_artifact(b"first", 0x1).unwrap();
        let committed = store.committed_len();

        store.inject_append_failure();
        let err = store.put_artifact(b"doomed", 0x2).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert!(!store.is_poisoned(), "rollback succeeded, not poisoned");
        // the orphan bytes are gone from the WAL, not just unclaimed
        let wal_len = std::fs::metadata(Store::wal_path(&dir)).unwrap().len();
        assert_eq!(wal_len, committed, "orphan record bytes not rolled back");

        // the next append lands after the rollback point and the store
        // reopens clean — the exact scenario that used to brick it
        store.put_artifact(b"second", 0x3).unwrap();
        drop(store);
        let (store, report) = Store::open_or_create(&dir).unwrap();
        assert_eq!(report.artifacts, 2);
        assert_eq!(store.latest_artifact().unwrap().0, 0x3);
        assert!(Store::verify(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_bytes_under_new_fingerprint_reindex() {
        let dir = tempdir("refinger");
        let (store, _) = Store::open_or_create(&dir).unwrap();
        let d1 = store.put_artifact(b"same-bytes", 0xAAAA).unwrap();
        let d2 = store.put_artifact(b"same-bytes", 0xBBBB).unwrap();
        assert_eq!(d1, d2, "content digest is fingerprint-independent");
        assert_eq!(
            store.latest_artifact().unwrap().0,
            0xBBBB,
            "new fingerprint association dropped"
        );
        assert_eq!(store.records(), 3, "re-fingerprint appended a record");
        drop(store);
        let (store, _) = Store::open_or_create(&dir).unwrap();
        assert_eq!(store.latest_artifact().unwrap().0, 0xBBBB, "after replay");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
