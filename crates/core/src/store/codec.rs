//! Canonical binary codecs for checkpointed owner state: the
//! [`ObfuscationSecrets`] (partition plan, boundary wiring, real
//! positions) and the [`SessionCheckpoint`] a mid-flight
//! [`DeobfuscationSession`](crate::DeobfuscationSession) serializes to.
//!
//! The encodings are explicit tag-length-value layouts over the same
//! primitives as the wire and artifact codecs ([`encode_graph`] /
//! [`encode_params`], little-endian integers, length-prefixed strings) —
//! *not* a generic serializer — so checkpoint bytes are canonical:
//! piece graphs are built dense by partitioning, which makes the
//! graph/params round trip bit-exact, and that is what lets the
//! recovery battery assert byte-identical reassembly after a resume.
//!
//! Every decoder is fail-closed: typed [`WireError`]s on truncation or
//! malformed counts, pre-allocations clamped by the remaining buffer
//! (the same untrusted-length discipline as the artifact codec).

use crate::bucket::{BucketMember, ObfuscationSecrets};
use crate::error::ProteusError;
use crate::session::DeobfuscationSession;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{decode_graph, decode_params, encode_graph, encode_params};
use proteus_graph::{NodeId, WireError};
use proteus_partition::{BoundaryRef, PartitionPlan, Piece};

type CResult<T> = std::result::Result<T, WireError>;

/// Version byte opening every encoded secrets blob.
const SECRETS_CODEC_VERSION: u8 = 1;
/// Version byte opening every encoded session checkpoint.
const CHECKPOINT_CODEC_VERSION: u8 = 1;
/// Longest string the checkpoint codec will read (1 MiB), matching the
/// artifact codec's bound.
const MAX_STRING_LEN: usize = 1 << 20;

fn need(buf: &impl Buf, n: usize, what: &str) -> CResult<()> {
    if buf.remaining() < n {
        Err(WireError::truncated(what))
    } else {
        Ok(())
    }
}

fn bounded_capacity(count: usize, buf: &impl Buf, min_bytes: usize) -> usize {
    count.min(buf.remaining() / min_bytes.max(1))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &str) -> CResult<String> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    if len > MAX_STRING_LEN {
        return Err(WireError::malformed(format!(
            "implausible string length {len} reading {what}"
        )));
    }
    need(buf, len, what)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| WireError::malformed(format!("invalid utf8 reading {what}")))
}

fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    buf.put_u32_le(blob.len() as u32);
    buf.put_slice(blob);
}

fn get_blob(buf: &mut Bytes, what: &str) -> CResult<Bytes> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, what)?;
    Ok(buf.split_to(len))
}

fn put_member(buf: &mut BytesMut, member: &BucketMember) {
    put_blob(buf, &encode_graph(&member.graph));
    put_blob(buf, &encode_params(&member.graph, &member.params));
}

fn get_member(buf: &mut Bytes, what: &str) -> CResult<BucketMember> {
    let mut gbytes = get_blob(buf, what)?;
    let graph = decode_graph(&mut gbytes)?;
    let mut pbytes = get_blob(buf, what)?;
    let params = decode_params(&mut pbytes)?;
    Ok(BucketMember { graph, params })
}

/// Serializes the owner's reassembly secrets to their canonical bytes.
pub fn encode_secrets(secrets: &ObfuscationSecrets) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(SECRETS_CODEC_VERSION);
    buf.put_u64_le(secrets.request_id);
    put_str(&mut buf, &secrets.plan.model_name);
    buf.put_u32_le(secrets.plan.pieces.len() as u32);
    for piece in &secrets.plan.pieces {
        // encode_graph compacts before writing; piece graphs are dense by
        // construction so the mapping is the identity, but boundary ids
        // are remapped through it anyway so the pair stays consistent
        // even for a piece that somehow carries tombstones
        let (_, mapping) = piece.graph.compact();
        put_blob(&mut buf, &encode_graph(&piece.graph));
        put_blob(&mut buf, &encode_params(&piece.graph, &piece.params));
        buf.put_u32_le(piece.boundary.len() as u32);
        for (node, bref) in &piece.boundary {
            buf.put_u32_le(mapping[node].index() as u32);
            buf.put_u32_le(bref.piece as u32);
            buf.put_u32_le(bref.output as u32);
        }
        buf.put_u32_le(piece.original_outputs.len() as u32);
        for id in &piece.original_outputs {
            buf.put_u32_le(id.index() as u32);
        }
    }
    buf.put_u32_le(secrets.plan.global_outputs.len() as u32);
    for bref in &secrets.plan.global_outputs {
        buf.put_u32_le(bref.piece as u32);
        buf.put_u32_le(bref.output as u32);
    }
    buf.put_u32_le(secrets.real_positions.len() as u32);
    for &pos in &secrets.real_positions {
        buf.put_u32_le(pos as u32);
    }
    buf.freeze()
}

/// Decodes secrets from [`encode_secrets`] bytes. Fail-closed: typed
/// [`WireError`]s, trailing bytes rejected.
pub fn decode_secrets(buf: &mut Bytes) -> CResult<ObfuscationSecrets> {
    need(buf, 1, "secrets codec version")?;
    let version = buf.get_u8();
    if version != SECRETS_CODEC_VERSION {
        return Err(WireError::malformed(format!(
            "unknown secrets codec version {version}"
        )));
    }
    need(buf, 8, "secrets request id")?;
    let request_id = buf.get_u64_le();
    let model_name = get_str(buf, "secrets model name")?;
    need(buf, 4, "piece count")?;
    let n_pieces = buf.get_u32_le() as usize;
    if n_pieces > 1 << 20 {
        return Err(WireError::malformed(format!(
            "implausible piece count {n_pieces}"
        )));
    }
    let mut pieces = Vec::with_capacity(bounded_capacity(n_pieces, buf, 16));
    for pi in 0..n_pieces {
        let mut gbytes = get_blob(buf, "piece graph")?;
        let graph = decode_graph(&mut gbytes)?;
        let mut pbytes = get_blob(buf, "piece params")?;
        let params = decode_params(&mut pbytes)?;
        need(buf, 4, "boundary count")?;
        let n_boundary = buf.get_u32_le() as usize;
        let mut boundary = Vec::with_capacity(bounded_capacity(n_boundary, buf, 12));
        for _ in 0..n_boundary {
            need(buf, 12, "boundary entry")?;
            let node = buf.get_u32_le() as usize;
            if node >= graph.len() {
                return Err(WireError::malformed(format!(
                    "piece {pi}: boundary node id {node} out of range for {}-node graph",
                    graph.len()
                )));
            }
            let piece = buf.get_u32_le() as usize;
            let output = buf.get_u32_le() as usize;
            if piece >= n_pieces {
                return Err(WireError::malformed(format!(
                    "piece {pi}: boundary references piece {piece} of {n_pieces}"
                )));
            }
            boundary.push((NodeId::from_index(node), BoundaryRef { piece, output }));
        }
        need(buf, 4, "original output count")?;
        let n_orig = buf.get_u32_le() as usize;
        let mut original_outputs = Vec::with_capacity(bounded_capacity(n_orig, buf, 4));
        for _ in 0..n_orig {
            need(buf, 4, "original output id")?;
            original_outputs.push(NodeId::from_index(buf.get_u32_le() as usize));
        }
        pieces.push(Piece {
            graph,
            params,
            boundary,
            original_outputs,
        });
    }
    need(buf, 4, "global output count")?;
    let n_global = buf.get_u32_le() as usize;
    let mut global_outputs = Vec::with_capacity(bounded_capacity(n_global, buf, 8));
    for _ in 0..n_global {
        need(buf, 8, "global output entry")?;
        let piece = buf.get_u32_le() as usize;
        let output = buf.get_u32_le() as usize;
        if piece >= n_pieces {
            return Err(WireError::malformed(format!(
                "global output references piece {piece} of {n_pieces}"
            )));
        }
        global_outputs.push(BoundaryRef { piece, output });
    }
    need(buf, 4, "real position count")?;
    let n_real = buf.get_u32_le() as usize;
    let mut real_positions = Vec::with_capacity(bounded_capacity(n_real, buf, 4));
    for _ in 0..n_real {
        need(buf, 4, "real position")?;
        real_positions.push(buf.get_u32_le() as usize);
    }
    if !buf.is_empty() {
        return Err(WireError::malformed(format!(
            "{} trailing bytes after secrets",
            buf.remaining()
        )));
    }
    Ok(ObfuscationSecrets {
        request_id,
        plan: PartitionPlan {
            pieces,
            global_outputs,
            model_name,
        },
        real_positions,
    })
}

/// A self-contained snapshot of a mid-flight reassembly: the secrets
/// plus every real member extracted so far. Produced by
/// [`DeobfuscationSession::checkpoint`], serializable with
/// [`SessionCheckpoint::to_bytes`], and resumable with
/// [`SessionCheckpoint::resume`] — the resumed session accepts the
/// remaining frames and finishes bit-identically to an uninterrupted
/// run (request-id-keyed determinism makes that exactly assertable).
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// The owner's reassembly secrets (owned — the checkpoint outlives
    /// the session that produced it).
    pub secrets: ObfuscationSecrets,
    /// One slot per bucket: the extracted real member, for every frame
    /// accepted before the checkpoint.
    pub(crate) slots: Vec<Option<BucketMember>>,
}

impl SessionCheckpoint {
    /// Builds a checkpoint from a session's parts (crate-internal; the
    /// public entry is [`DeobfuscationSession::checkpoint`]).
    pub(crate) fn from_parts(
        secrets: ObfuscationSecrets,
        slots: Vec<Option<BucketMember>>,
    ) -> SessionCheckpoint {
        SessionCheckpoint { secrets, slots }
    }

    /// The request this checkpoint belongs to.
    pub fn request_id(&self) -> u64 {
        self.secrets.request_id
    }

    /// Frames that were already accepted when the checkpoint was taken.
    pub fn received(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Serializes the checkpoint to its canonical bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(CHECKPOINT_CODEC_VERSION);
        put_blob(&mut buf, &encode_secrets(&self.secrets));
        buf.put_u32_le(self.slots.len() as u32);
        for slot in &self.slots {
            match slot {
                None => buf.put_u8(0),
                Some(member) => {
                    buf.put_u8(1);
                    put_member(&mut buf, member);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a checkpoint from [`SessionCheckpoint::to_bytes`] bytes.
    ///
    /// # Errors
    /// [`ProteusError::Wire`] on any truncation or malformation;
    /// [`ProteusError::Protocol`] when the slot count disagrees with the
    /// decoded plan.
    pub fn from_bytes(mut data: Bytes) -> Result<SessionCheckpoint, ProteusError> {
        let buf = &mut data;
        need(buf, 1, "checkpoint codec version").map_err(ProteusError::Wire)?;
        let version = buf.get_u8();
        if version != CHECKPOINT_CODEC_VERSION {
            return Err(ProteusError::Wire(WireError::malformed(format!(
                "unknown checkpoint codec version {version}"
            ))));
        }
        let mut sbytes = get_blob(buf, "checkpoint secrets").map_err(ProteusError::Wire)?;
        let secrets = decode_secrets(&mut sbytes).map_err(ProteusError::Wire)?;
        need(buf, 4, "checkpoint slot count").map_err(ProteusError::Wire)?;
        let n_slots = buf.get_u32_le() as usize;
        if n_slots != secrets.plan.pieces.len() {
            return Err(ProteusError::protocol(format!(
                "checkpoint has {n_slots} slots for a {}-piece plan",
                secrets.plan.pieces.len()
            )));
        }
        let mut slots = Vec::with_capacity(bounded_capacity(n_slots, buf, 1));
        for i in 0..n_slots {
            need(buf, 1, "checkpoint slot flag").map_err(ProteusError::Wire)?;
            match buf.get_u8() {
                0 => slots.push(None),
                1 => slots.push(Some(
                    get_member(buf, "checkpoint member").map_err(ProteusError::Wire)?,
                )),
                other => {
                    return Err(ProteusError::Wire(WireError::malformed(format!(
                        "checkpoint slot {i}: unknown presence flag {other}"
                    ))))
                }
            }
        }
        if !buf.is_empty() {
            return Err(ProteusError::Wire(WireError::malformed(format!(
                "{} trailing bytes after checkpoint",
                buf.remaining()
            ))));
        }
        Ok(SessionCheckpoint { secrets, slots })
    }

    /// Resumes the reassembly where the checkpoint left it: the returned
    /// session borrows this checkpoint's secrets, already holds every
    /// member accepted before the crash, and accepts the remaining
    /// frames exactly as the original session would have.
    pub fn resume(&self) -> DeobfuscationSession<'_> {
        DeobfuscationSession::resume_from_slots(&self.secrets, self.slots.clone())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn truncated_secrets_fail_typed_everywhere() {
        let secrets = ObfuscationSecrets {
            request_id: 42,
            plan: PartitionPlan {
                pieces: Vec::new(),
                global_outputs: Vec::new(),
                model_name: "empty".into(),
            },
            real_positions: vec![0, 1],
        };
        let bytes = encode_secrets(&secrets);
        let back = decode_secrets(&mut bytes.clone()).unwrap();
        assert_eq!(back.request_id, 42);
        assert_eq!(back.real_positions, vec![0, 1]);
        for cut in 0..bytes.len() {
            let mut prefix = bytes.slice(0..cut);
            assert!(
                decode_secrets(&mut prefix).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn implausible_counts_are_rejected_without_allocation() {
        // version byte, rid, empty name, then a piece count demanding
        // a million pieces from an empty buffer
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(7);
        buf.put_u32_le(0);
        buf.put_u32_le(1 << 20);
        let mut data = buf.freeze();
        assert!(matches!(
            decode_secrets(&mut data),
            Err(WireError::Truncated { .. })
        ));
    }
}
