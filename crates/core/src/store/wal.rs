//! The write-ahead-log record layer: wire-v1-framed records whose
//! digests are Merkle-style chained, plus the atomically renamed commit
//! marker that defines the committed horizon.
//!
//! A record is an ordinary [`proteus_graph::wire`] v1 frame — the same
//! 22-byte header + checksum every bucket crossing the trust boundary
//! uses — with the frame's `bucket_index` field carrying the record
//! *tag* and the payload opening with the chain digest of the previous
//! record and the record's sequence number:
//!
//! ```text
//! PRTB | version=1 | tag u32 | payload_len u32 | checksum u64 |
//!     prev_digest u64 | seq u64 | body
//! ```
//!
//! The chain digest of record `N` is FNV-1a over record `N`'s full
//! encoded bytes *seeded with the digest of record `N-1`*
//! ([`chain_digest`]); the genesis record seeds from the FNV offset
//! basis. Because each record also *stores* its predecessor's digest in
//! its checksummed payload, a single flipped byte anywhere in the log
//! either breaks that record's frame checksum or breaks the chain at the
//! next record — and splicing, reordering, or duplicating whole
//! (individually valid) records breaks the `prev_digest`/`seq`
//! verification. Nothing past a bad byte is ever silently resynced.
//!
//! Commit is atomic via rename: after a record is appended and flushed,
//! the 38-byte marker file (`store.commit`) is rewritten to a temp file
//! and `rename(2)`d into place. The marker names the committed byte
//! length, the chain digest, and the record count; bytes beyond the
//! committed length are an uncommitted tail (a crash between append and
//! rename) and are truncated on recovery — the append was never
//! acknowledged, so nothing acknowledged is lost.

use super::StoreError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{decode_frame, encode_frame, fnv1a64, fnv1a64_continue, WIRE_VERSION_V1};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "store.wal";
/// Commit-marker file name inside a store directory.
pub const MARKER_FILE: &str = "store.commit";
/// Temp file the marker is staged in before the atomic rename.
pub const MARKER_TMP_FILE: &str = "store.commit.tmp";

/// Magic bytes opening the commit marker.
pub const MARKER_MAGIC: [u8; 4] = *b"PRTM";
/// Commit-marker format version.
pub const MARKER_VERSION: u16 = 1;
/// Exact encoded size of the commit marker.
pub const MARKER_LEN: usize = 4 + 2 + 8 + 8 + 8 + 8;

/// Store format version recorded in the genesis record's body.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Seed of the digest chain (the FNV-1a offset basis) — the
/// `prev_digest` the genesis record carries.
pub const CHAIN_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Fixed prefix of every record payload: `prev_digest u64 | seq u64`.
pub const RECORD_PREFIX: usize = 16;

/// What a WAL record describes. Encoded in the v1 frame's `bucket_index`
/// field; unknown tags are rejected as corruption, never skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordTag {
    /// First record of every store: the store format version.
    Genesis = 0,
    /// A content-addressed trained artifact (`PRTA` bytes).
    Artifact = 1,
    /// A reassembly session opened: the owner's checkpointed secrets.
    SessionOpen = 2,
    /// One optimized frame accepted into an open session (raw wire bytes).
    SessionFrame = 3,
    /// A session finished; its records are garbage from here on.
    SessionDone = 4,
    /// One input frame submitted to a serving lane (raw wire bytes).
    LaneSubmit = 5,
    /// A serving lane fully delivered; its records are garbage.
    LaneDone = 6,
}

impl RecordTag {
    /// Decodes a tag from the frame's `bucket_index` field.
    pub fn from_u32(v: u32) -> Option<RecordTag> {
        match v {
            0 => Some(RecordTag::Genesis),
            1 => Some(RecordTag::Artifact),
            2 => Some(RecordTag::SessionOpen),
            3 => Some(RecordTag::SessionFrame),
            4 => Some(RecordTag::SessionDone),
            5 => Some(RecordTag::LaneSubmit),
            6 => Some(RecordTag::LaneDone),
            _ => None,
        }
    }
}

/// One decoded, chain-verified WAL record.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// What the record describes.
    pub tag: RecordTag,
    /// Position in the log (0-based, dense).
    pub seq: u64,
    /// The tag-specific body (payload after the 16-byte chain prefix).
    pub body: Bytes,
}

/// Encodes one record: a v1 frame whose payload folds in the previous
/// record's chain digest.
pub fn encode_record(tag: RecordTag, seq: u64, prev_digest: u64, body: &[u8]) -> Bytes {
    let mut payload = BytesMut::with_capacity(RECORD_PREFIX + body.len());
    payload.put_u64_le(prev_digest);
    payload.put_u64_le(seq);
    payload.put_slice(body);
    encode_frame(tag as u32, &payload)
}

/// Advances the chain: digest of a record given its predecessor's digest
/// and its full encoded bytes.
pub fn chain_digest(prev: u64, record_bytes: &[u8]) -> u64 {
    fnv1a64_continue(prev, record_bytes)
}

/// The commit marker: the durable claim of how much of the WAL is
/// committed and what the chain digest at that horizon is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Committed WAL length in bytes.
    pub committed_len: u64,
    /// Chain digest after the last committed record.
    pub chain: u64,
    /// Number of committed records.
    pub records: u64,
}

/// Serializes a marker (fixed [`MARKER_LEN`] bytes, self-checksummed).
pub fn encode_marker(m: &Marker) -> Bytes {
    let mut buf = BytesMut::with_capacity(MARKER_LEN);
    buf.put_slice(&MARKER_MAGIC);
    buf.put_u16_le(MARKER_VERSION);
    buf.put_u64_le(m.committed_len);
    buf.put_u64_le(m.chain);
    buf.put_u64_le(m.records);
    let checksum = fnv1a64(&buf[4..]);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decodes and validates a marker. Every malformation — wrong size, bad
/// magic, unknown version, checksum mismatch — is a typed
/// [`StoreError::Marker`]: a store whose commit marker cannot be trusted
/// has no committed horizon to recover to.
pub fn decode_marker(data: &[u8]) -> Result<Marker, StoreError> {
    if data.len() != MARKER_LEN {
        return Err(StoreError::marker(format!(
            "marker is {} bytes, expected {MARKER_LEN}",
            data.len()
        )));
    }
    let magic = &data[..4];
    if magic != MARKER_MAGIC {
        return Err(StoreError::marker(format!("bad marker magic {magic:02x?}")));
    }
    let mut buf = Bytes::copy_from_slice(&data[4..]);
    let version = buf.get_u16_le();
    if version != MARKER_VERSION {
        return Err(StoreError::marker(format!(
            "unknown marker version {version} (this library speaks {MARKER_VERSION})"
        )));
    }
    let committed_len = buf.get_u64_le();
    let chain = buf.get_u64_le();
    let records = buf.get_u64_le();
    let claimed = buf.get_u64_le();
    let actual = fnv1a64(&data[4..MARKER_LEN - 8]);
    if claimed != actual {
        return Err(StoreError::marker(format!(
            "marker checksum mismatch (marker says {claimed:#018x}, fields hash to {actual:#018x})"
        )));
    }
    Ok(Marker {
        committed_len,
        chain,
        records,
    })
}

/// Replays the committed region of a WAL byte-for-byte against its
/// marker: decodes each frame, verifies the chain digest and sequence
/// number, and checks the final digest/length/count against the marker's
/// claim. Any mismatch is a typed [`StoreError::Corrupt`] naming the
/// byte offset — recovery never resyncs past a bad byte.
pub fn replay(wal: &[u8], marker: &Marker) -> Result<Vec<WalRecord>, StoreError> {
    let committed = usize::try_from(marker.committed_len)
        .map_err(|_| StoreError::marker("committed length exceeds addressable memory"))?;
    if wal.len() < committed {
        return Err(StoreError::corrupt(
            wal.len() as u64,
            format!(
                "WAL is {} bytes but the marker committed {committed}",
                wal.len()
            ),
        ));
    }
    let mut records = Vec::new();
    let mut chain = CHAIN_SEED;
    let mut offset = 0usize;
    // replay strictly inside the committed horizon: a frame that claims
    // to extend past it is corruption, not a torn tail
    let mut buf = Bytes::copy_from_slice(&wal[..committed]);
    while offset < committed {
        let before = buf.remaining();
        let frame = decode_frame(&mut buf).map_err(|e| {
            // inside the committed region, truncation is corruption too:
            // these bytes were acknowledged as a whole record once
            StoreError::corrupt(offset as u64, format!("record failed to decode: {e}"))
        })?;
        let consumed = before - buf.remaining();
        if frame.version != WIRE_VERSION_V1 {
            return Err(StoreError::corrupt(
                offset as u64,
                format!("record frame has wire version {}, want 1", frame.version),
            ));
        }
        let tag = RecordTag::from_u32(frame.bucket_index).ok_or_else(|| {
            StoreError::corrupt(
                offset as u64,
                format!("unknown record tag {}", frame.bucket_index),
            )
        })?;
        let mut payload = frame.payload;
        if payload.remaining() < RECORD_PREFIX {
            return Err(StoreError::corrupt(
                offset as u64,
                format!(
                    "record payload is {} bytes, shorter than the {RECORD_PREFIX}-byte chain prefix",
                    payload.remaining()
                ),
            ));
        }
        let prev_digest = payload.get_u64_le();
        let seq = payload.get_u64_le();
        if prev_digest != chain {
            return Err(StoreError::corrupt(
                offset as u64,
                format!(
                    "chain broken: record claims predecessor digest {prev_digest:#018x}, \
                     chain is at {chain:#018x} (spliced, reordered, or duplicated record)"
                ),
            ));
        }
        let expected_seq = records.len() as u64;
        if seq != expected_seq {
            return Err(StoreError::corrupt(
                offset as u64,
                format!("record carries sequence {seq}, expected {expected_seq}"),
            ));
        }
        if records.is_empty() && tag != RecordTag::Genesis {
            return Err(StoreError::corrupt(
                offset as u64,
                format!("first record is {tag:?}, expected Genesis"),
            ));
        }
        chain = chain_digest(chain, &wal[offset..offset + consumed]);
        records.push(WalRecord {
            tag,
            seq,
            body: payload,
        });
        offset += consumed;
    }
    if offset != committed {
        return Err(StoreError::corrupt(
            offset as u64,
            format!("records end at byte {offset}, marker committed {committed}"),
        ));
    }
    if chain != marker.chain {
        return Err(StoreError::corrupt(
            offset as u64,
            format!(
                "chain digest {chain:#018x} does not match the marker's {:#018x}",
                marker.chain
            ),
        ));
    }
    if records.len() as u64 != marker.records {
        return Err(StoreError::corrupt(
            offset as u64,
            format!(
                "{} records replayed, marker committed {}",
                records.len(),
                marker.records
            ),
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn build_log(bodies: &[(RecordTag, &[u8])]) -> (Vec<u8>, Marker) {
        let mut wal = Vec::new();
        let mut chain = CHAIN_SEED;
        for (seq, (tag, body)) in bodies.iter().enumerate() {
            let rec = encode_record(*tag, seq as u64, chain, body);
            chain = chain_digest(chain, &rec);
            wal.extend_from_slice(&rec);
        }
        let marker = Marker {
            committed_len: wal.len() as u64,
            chain,
            records: bodies.len() as u64,
        };
        (wal, marker)
    }

    fn genesis_body() -> Vec<u8> {
        STORE_FORMAT_VERSION.to_le_bytes().to_vec()
    }

    #[test]
    fn marker_roundtrip_and_tamper() {
        let m = Marker {
            committed_len: 1234,
            chain: 0xDEAD_BEEF,
            records: 7,
        };
        let bytes = encode_marker(&m);
        assert_eq!(bytes.len(), MARKER_LEN);
        assert_eq!(decode_marker(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            assert!(
                decode_marker(&bad).is_err(),
                "marker byte {i} flip undetected"
            );
        }
    }

    #[test]
    fn replay_roundtrip() {
        let g = genesis_body();
        let (wal, marker) = build_log(&[
            (RecordTag::Genesis, &g),
            (RecordTag::SessionDone, &7u64.to_le_bytes()),
            (RecordTag::LaneDone, &9u64.to_le_bytes()),
        ]);
        let records = replay(&wal, &marker).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].tag, RecordTag::Genesis);
        assert_eq!(records[2].seq, 2);
        assert_eq!(&records[1].body[..], &7u64.to_le_bytes());
    }

    #[test]
    fn any_single_byte_flip_in_committed_region_is_detected() {
        let g = genesis_body();
        let (wal, marker) = build_log(&[
            (RecordTag::Genesis, &g),
            (RecordTag::SessionDone, &1u64.to_le_bytes()),
        ]);
        for i in 0..wal.len() {
            let mut bad = wal.clone();
            bad[i] ^= 0x01;
            let err = replay(&bad, &marker);
            assert!(
                matches!(err, Err(StoreError::Corrupt { .. })),
                "flip at byte {i} not detected: {err:?}"
            );
        }
    }

    #[test]
    fn reordered_and_duplicated_records_break_the_chain() {
        let g = genesis_body();
        let (wal, marker) = build_log(&[
            (RecordTag::Genesis, &g),
            (RecordTag::SessionDone, &1u64.to_le_bytes()),
            (RecordTag::LaneDone, &2u64.to_le_bytes()),
        ]);
        // find record boundaries by re-encoding
        let mut chain = CHAIN_SEED;
        let r0 = encode_record(RecordTag::Genesis, 0, chain, &g);
        chain = chain_digest(chain, &r0);
        let r1 = encode_record(RecordTag::SessionDone, 1, chain, &1u64.to_le_bytes());
        chain = chain_digest(chain, &r1);
        let r2 = encode_record(RecordTag::LaneDone, 2, chain, &2u64.to_le_bytes());

        // swap records 1 and 2 (each individually a valid frame)
        let mut swapped = Vec::new();
        swapped.extend_from_slice(&r0);
        swapped.extend_from_slice(&r2);
        swapped.extend_from_slice(&r1);
        assert_eq!(swapped.len(), wal.len());
        assert!(matches!(
            replay(&swapped, &marker),
            Err(StoreError::Corrupt { .. })
        ));

        // duplicate record 1 in place of record 2
        let mut duped = Vec::new();
        duped.extend_from_slice(&r0);
        duped.extend_from_slice(&r1);
        duped.extend_from_slice(&r1);
        let dup_marker = Marker {
            committed_len: duped.len() as u64,
            chain: 0, // attacker cannot forge the chain without the records
            records: 3,
        };
        assert!(matches!(
            replay(&duped, &dup_marker),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn committed_region_shorter_than_marker_is_corrupt() {
        let g = genesis_body();
        let (wal, marker) = build_log(&[(RecordTag::Genesis, &g)]);
        let truncated = &wal[..wal.len() - 1];
        assert!(matches!(
            replay(truncated, &marker),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
