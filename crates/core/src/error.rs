//! The workspace-level error type of the Proteus service API.
//!
//! Every fallible operation on the owner/optimizer surface —
//! configuration validation, partitioning, wire decode, graph
//! validation/reassembly, and protocol-state violations in the streaming
//! sessions — reports through [`ProteusError`]. Library code never
//! panics on malformed input; panics are reserved for internal
//! invariants.

use crate::artifact::ArtifactError;
use crate::store::StoreError;
use proteus_graph::{GraphError, WireError};
use std::fmt;

/// Any failure of the Proteus owner/optimizer API.
#[derive(Debug, Clone, PartialEq)]
pub enum ProteusError {
    /// A [`crate::ProteusConfig`] is degenerate (rejected by
    /// [`crate::ProteusConfig::validate`]) or the training corpus is
    /// unusable.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// Partitioning the protected model failed (the plan could not be
    /// extracted or its piece interfaces are broken).
    Partition {
        /// What was wrong.
        detail: String,
    },
    /// A wire frame or payload failed to decode.
    Wire(WireError),
    /// Graph validation, shape inference, execution, or reassembly failed.
    Graph(GraphError),
    /// A streaming session was driven out of protocol: secrets requested
    /// before all frames were emitted, an out-of-range or cross-request
    /// frame accepted, reassembly attempted while frames are still
    /// missing, ...
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// A frame for a bucket the session (or serving runtime) has already
    /// accepted arrived again. Split out from [`ProteusError::Protocol`]
    /// so replay/duplication — the failure mode a lossy or adversarial
    /// transport actually produces — is matchable without string
    /// inspection. The first accepted frame is always retained; a
    /// duplicate is never silently overwritten.
    DuplicateFrame {
        /// Bucket index the duplicate claimed.
        bucket_index: u32,
        /// Request the frame belonged to.
        request_id: u64,
    },
    /// A trained-state artifact failed to encode, decode, or validate
    /// (see [`crate::artifact`]): bad magic, version skew, a section
    /// checksum mismatch, malformed state, a config-fingerprint mismatch,
    /// or file I/O.
    Artifact(ArtifactError),
    /// An optimizer worker panicked while executing a task of this
    /// request. The panic was contained (`catch_unwind`) — the pool and
    /// every other request lane keep running — but this request's
    /// in-flight frames are abandoned: the lane fails closed rather than
    /// emitting a frame with missing members. Retryable: the fleet
    /// re-dispatches the request (determinism makes the replay
    /// bit-identical).
    WorkerCrashed {
        /// Request whose lane failed.
        request_id: u64,
        /// Panic payload / failure site.
        detail: String,
    },
    /// The request exceeded its latency deadline while waiting on the
    /// runtime. Terminal, not retryable: the deadline is the caller's
    /// end-to-end budget, and re-dispatching past it cannot make the
    /// response timely.
    Deadline {
        /// Request that timed out.
        request_id: u64,
        /// Time actually elapsed when the deadline check fired.
        elapsed_ms: u64,
    },
    /// The replica backing this lane is gone — killed mid-request, shut
    /// down, or never spawned. Retryable: the fleet marks the replica
    /// down and re-dispatches to a healthy one.
    ReplicaUnavailable {
        /// Which replica failed ([`crate::ServeConfig::replica_label`]).
        replica: usize,
        /// What happened to it.
        detail: String,
    },
    /// The durable store failed: filesystem I/O, a corrupt or tampered
    /// WAL record, an unusable commit marker, a missing entry, or store
    /// misuse (see [`crate::store::StoreError`]).
    Store(StoreError),
    /// The fleet's bounded retry budget ran out without any replica
    /// completing the request. Carries the final attempt's error so the
    /// caller can see *why* the last replica failed.
    RetriesExhausted {
        /// Request that could not be served.
        request_id: u64,
        /// Total dispatch attempts made (initial + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ProteusError>,
    },
}

impl ProteusError {
    /// Shorthand for [`ProteusError::Config`].
    pub fn config(detail: impl Into<String>) -> ProteusError {
        ProteusError::Config {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`ProteusError::Partition`].
    pub fn partition(detail: impl Into<String>) -> ProteusError {
        ProteusError::Partition {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`ProteusError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> ProteusError {
        ProteusError::Protocol {
            detail: detail.into(),
        }
    }

    /// Whether a fleet may re-dispatch the request after this error.
    ///
    /// Only failures of the *serving substrate* — a crashed worker or a
    /// lost replica — are retryable: request-id-keyed determinism
    /// guarantees the replay is bit-identical on any replica, so retrying
    /// is safe and transparent. Everything else is a property of the
    /// request or the protocol ([`ProteusError::Deadline`] included: the
    /// latency budget is already spent) and will fail identically on every
    /// replica.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ProteusError::WorkerCrashed { .. } | ProteusError::ReplicaUnavailable { .. }
        )
    }
}

impl fmt::Display for ProteusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProteusError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            ProteusError::Partition { detail } => write!(f, "partitioning failed: {detail}"),
            ProteusError::Wire(e) => write!(f, "{e}"),
            ProteusError::Graph(e) => write!(f, "{e}"),
            ProteusError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ProteusError::DuplicateFrame {
                bucket_index,
                request_id,
            } => write!(
                f,
                "protocol violation: duplicate frame for bucket {bucket_index} of request {request_id:#x}"
            ),
            ProteusError::Artifact(e) => write!(f, "{e}"),
            ProteusError::WorkerCrashed { request_id, detail } => write!(
                f,
                "worker crashed serving request {request_id:#x}: {detail}"
            ),
            ProteusError::Deadline {
                request_id,
                elapsed_ms,
            } => write!(
                f,
                "request {request_id:#x} exceeded its deadline after {elapsed_ms}ms"
            ),
            ProteusError::ReplicaUnavailable { replica, detail } => {
                write!(f, "replica {replica} unavailable: {detail}")
            }
            ProteusError::Store(e) => write!(f, "{e}"),
            ProteusError::RetriesExhausted {
                request_id,
                attempts,
                last,
            } => write!(
                f,
                "request {request_id:#x} failed after {attempts} attempts; last error: {last}"
            ),
        }
    }
}

impl std::error::Error for ProteusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProteusError::Wire(e) => Some(e),
            ProteusError::Graph(e) => Some(e),
            ProteusError::Artifact(e) => Some(e),
            ProteusError::Store(e) => Some(e),
            ProteusError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<ArtifactError> for ProteusError {
    fn from(e: ArtifactError) -> ProteusError {
        ProteusError::Artifact(e)
    }
}

impl From<StoreError> for ProteusError {
    fn from(e: StoreError) -> ProteusError {
        ProteusError::Store(e)
    }
}

impl From<WireError> for ProteusError {
    fn from(e: WireError) -> ProteusError {
        ProteusError::Wire(e)
    }
}

impl From<GraphError> for ProteusError {
    fn from(e: GraphError) -> ProteusError {
        ProteusError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ProteusError::config("k must be at least 1 (got 0)");
        assert!(e.to_string().contains("k must be at least 1"));
        let e: ProteusError = WireError::UnknownVersion {
            got: 9,
            supported: 1,
        }
        .into();
        assert!(e.to_string().contains("unknown wire version 9"));
        let e: ProteusError = GraphError::Cyclic.into();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn duplicate_frame_is_its_own_variant() {
        let e = ProteusError::DuplicateFrame {
            bucket_index: 3,
            request_id: 0xBEEF,
        };
        assert!(e.to_string().contains("duplicate frame for bucket 3"));
        assert!(e.to_string().contains("0xbeef"));
        assert!(!matches!(e, ProteusError::Protocol { .. }));
    }

    #[test]
    fn sources_chain_to_underlying_errors() {
        use std::error::Error;
        let e = ProteusError::from(WireError::truncated("frame header"));
        assert!(e.source().is_some());
        let e = ProteusError::protocol("secrets requested early");
        assert!(e.source().is_none());
    }

    #[test]
    fn fault_family_displays_and_retryability() {
        let crash = ProteusError::WorkerCrashed {
            request_id: 0xAB,
            detail: "fault injection: task 3".into(),
        };
        assert!(crash.to_string().contains("0xab"));
        assert!(crash.is_retryable());

        let gone = ProteusError::ReplicaUnavailable {
            replica: 2,
            detail: "killed at task 5".into(),
        };
        assert!(gone.to_string().contains("replica 2"));
        assert!(gone.is_retryable());

        let late = ProteusError::Deadline {
            request_id: 7,
            elapsed_ms: 120,
        };
        assert!(late.to_string().contains("120ms"));
        assert!(!late.is_retryable(), "deadline budget is already spent");

        let spent = ProteusError::RetriesExhausted {
            request_id: 7,
            attempts: 3,
            last: Box::new(crash.clone()),
        };
        assert!(spent.to_string().contains("after 3 attempts"));
        assert!(spent.to_string().contains("worker crashed"));
        assert!(!spent.is_retryable());
        use std::error::Error;
        assert_eq!(
            spent.source().map(ToString::to_string),
            Some(crash.to_string()),
            "RetriesExhausted chains to the final attempt's error"
        );
        // the family stays matchable and comparable
        assert_eq!(spent.clone(), spent);
        assert!(!matches!(crash, ProteusError::Protocol { .. }));
    }
}
