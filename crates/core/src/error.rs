//! The workspace-level error type of the Proteus service API.
//!
//! Every fallible operation on the owner/optimizer surface —
//! configuration validation, partitioning, wire decode, graph
//! validation/reassembly, and protocol-state violations in the streaming
//! sessions — reports through [`ProteusError`]. Library code never
//! panics on malformed input; panics are reserved for internal
//! invariants.

use crate::artifact::ArtifactError;
use proteus_graph::{GraphError, WireError};
use std::fmt;

/// Any failure of the Proteus owner/optimizer API.
#[derive(Debug, Clone, PartialEq)]
pub enum ProteusError {
    /// A [`crate::ProteusConfig`] is degenerate (rejected by
    /// [`crate::ProteusConfig::validate`]) or the training corpus is
    /// unusable.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// Partitioning the protected model failed (the plan could not be
    /// extracted or its piece interfaces are broken).
    Partition {
        /// What was wrong.
        detail: String,
    },
    /// A wire frame or payload failed to decode.
    Wire(WireError),
    /// Graph validation, shape inference, execution, or reassembly failed.
    Graph(GraphError),
    /// A streaming session was driven out of protocol: secrets requested
    /// before all frames were emitted, an out-of-range or cross-request
    /// frame accepted, reassembly attempted while frames are still
    /// missing, ...
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// A frame for a bucket the session (or serving runtime) has already
    /// accepted arrived again. Split out from [`ProteusError::Protocol`]
    /// so replay/duplication — the failure mode a lossy or adversarial
    /// transport actually produces — is matchable without string
    /// inspection. The first accepted frame is always retained; a
    /// duplicate is never silently overwritten.
    DuplicateFrame {
        /// Bucket index the duplicate claimed.
        bucket_index: u32,
        /// Request the frame belonged to.
        request_id: u64,
    },
    /// A trained-state artifact failed to encode, decode, or validate
    /// (see [`crate::artifact`]): bad magic, version skew, a section
    /// checksum mismatch, malformed state, a config-fingerprint mismatch,
    /// or file I/O.
    Artifact(ArtifactError),
}

impl ProteusError {
    /// Shorthand for [`ProteusError::Config`].
    pub fn config(detail: impl Into<String>) -> ProteusError {
        ProteusError::Config {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`ProteusError::Partition`].
    pub fn partition(detail: impl Into<String>) -> ProteusError {
        ProteusError::Partition {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`ProteusError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> ProteusError {
        ProteusError::Protocol {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProteusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProteusError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            ProteusError::Partition { detail } => write!(f, "partitioning failed: {detail}"),
            ProteusError::Wire(e) => write!(f, "{e}"),
            ProteusError::Graph(e) => write!(f, "{e}"),
            ProteusError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ProteusError::DuplicateFrame {
                bucket_index,
                request_id,
            } => write!(
                f,
                "protocol violation: duplicate frame for bucket {bucket_index} of request {request_id:#x}"
            ),
            ProteusError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProteusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProteusError::Wire(e) => Some(e),
            ProteusError::Graph(e) => Some(e),
            ProteusError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for ProteusError {
    fn from(e: ArtifactError) -> ProteusError {
        ProteusError::Artifact(e)
    }
}

impl From<WireError> for ProteusError {
    fn from(e: WireError) -> ProteusError {
        ProteusError::Wire(e)
    }
}

impl From<GraphError> for ProteusError {
    fn from(e: GraphError) -> ProteusError {
        ProteusError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ProteusError::config("k must be at least 1 (got 0)");
        assert!(e.to_string().contains("k must be at least 1"));
        let e: ProteusError = WireError::UnknownVersion {
            got: 9,
            supported: 1,
        }
        .into();
        assert!(e.to_string().contains("unknown wire version 9"));
        let e: ProteusError = GraphError::Cyclic.into();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn duplicate_frame_is_its_own_variant() {
        let e = ProteusError::DuplicateFrame {
            bucket_index: 3,
            request_id: 0xBEEF,
        };
        assert!(e.to_string().contains("duplicate frame for bucket 3"));
        assert!(e.to_string().contains("0xbeef"));
        assert!(!matches!(e, ProteusError::Protocol { .. }));
    }

    #[test]
    fn sources_chain_to_underlying_errors() {
        use std::error::Error;
        let e = ProteusError::from(WireError::truncated("frame header"));
        assert!(e.source().is_some());
        let e = ProteusError::protocol("secrets requested early");
        assert!(e.source().is_none());
    }
}
