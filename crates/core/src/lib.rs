//! # Proteus — preserving model confidentiality during graph optimizations
//!
//! A from-scratch Rust implementation of *Proteus* (MLSys 2024): an
//! obfuscation mechanism that lets an independent optimizer party apply
//! graph-level optimizations to a DNN computational graph without learning
//! the protected architecture.
//!
//! The protocol (paper Figure 1):
//!
//! 1. **Obfuscation** ([`Proteus::obfuscate`]) — the protected graph is
//!    partitioned into `n` balanced subgraphs (randomized edge contraction,
//!    `proteus-partition`), and each subgraph is hidden among `k` *sentinel*
//!    subgraphs produced by a GraphRNN topology generator + importance
//!    sampler (`proteus-graphgen`) and an SMT-style operator population step
//!    (`proteus-smt`, [`operators`]) filtered for semantic consistency
//!    ([`semantic`]). The result is an anonymized, shuffled
//!    [`ObfuscatedModel`] of `n` buckets with `k + 1` members each — a
//!    search space of `O((k+1)^n)` architectures.
//! 2. **Optimization** ([`optimize_model`]) — the optimizer party applies
//!    its graph rewrites to every bucket member independently
//!    (`proteus-opt` stands in for ONNXRuntime/Hidet).
//! 3. **De-obfuscation** ([`Proteus::deobfuscate`]) — the owner extracts the
//!    optimized real pieces using its [`ObfuscationSecrets`] and reassembles
//!    the optimized model.
//!
//! # Quickstart
//!
//! ```
//! use proteus::{Proteus, ProteusConfig, PartitionSpec, optimize_model};
//! use proteus_graph::{Graph, Op, Activation, ConvAttrs, TensorMap};
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_opt::{Optimizer, Profile};
//!
//! // the secret model
//! let mut g = Graph::new("secret");
//! let x = g.input([1, 3, 8, 8]);
//! let c = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).padding(1)), [x]);
//! let r = g.add(Op::Activation(Activation::Relu), [c]);
//! g.set_outputs([r]);
//!
//! // train the sentinel generator on public models only
//! let config = ProteusConfig {
//!     k: 2,
//!     partitions: PartitionSpec::Count(1),
//!     graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!     topology_pool: 10,
//!     ..Default::default()
//! };
//! let corpus = vec![proteus_models::build(proteus_models::ModelKind::ResNet)];
//! let proteus = Proteus::train(config, &corpus);
//!
//! // owner -> optimizer -> owner
//! let (bucket, secrets) = proteus.obfuscate(&g, &TensorMap::new())?;
//! let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));
//! let (model, _params) = proteus.deobfuscate(&secrets, &optimized)?;
//! assert!(model.validate().is_ok());
//! # Ok::<(), proteus_graph::GraphError>(())
//! ```

pub mod baseline;
pub mod bucket;
pub mod config;
pub mod operators;
pub mod pipeline;
pub mod semantic;
pub mod sentinel;

pub use baseline::{random_opcode_graph, random_opcode_sentinels};
pub use bucket::{anonymize, Bucket, BucketMember, ObfuscatedModel, ObfuscationSecrets};
pub use config::{PartitionSpec, ProteusConfig, SentinelMode};
pub use operators::{detect_regime, populate, PopulationConfig, Regime};
pub use pipeline::{optimize_model, optimize_model_serial, optimize_model_with_threads, Proteus};
pub use semantic::{top_percentile, BigramModel};
pub use sentinel::SentinelFactory;
