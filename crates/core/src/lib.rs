//! # Proteus — preserving model confidentiality during graph optimizations
//!
//! A from-scratch Rust implementation of *Proteus* (MLSys 2024): an
//! obfuscation mechanism that lets an independent optimizer party apply
//! graph-level optimizations to a DNN computational graph without learning
//! the protected architecture.
//!
//! The protocol (paper Figure 1):
//!
//! 1. **Obfuscation** ([`Proteus::obfuscate`]) — the protected graph is
//!    partitioned into `n` balanced subgraphs (randomized edge contraction,
//!    `proteus-partition`), and each subgraph is hidden among `k` *sentinel*
//!    subgraphs produced by a GraphRNN topology generator + importance
//!    sampler (`proteus-graphgen`) and an SMT-style operator population step
//!    (`proteus-smt`, [`operators`]) filtered for semantic consistency
//!    ([`semantic`]). The result is an anonymized, shuffled
//!    [`ObfuscatedModel`] of `n` buckets with `k + 1` members each — a
//!    search space of `O((k+1)^n)` architectures.
//! 2. **Optimization** ([`optimize_model`], or [`SealedBucket::optimize`]
//!    per streamed frame) — the optimizer party applies its graph rewrites
//!    to every bucket member independently (`proteus-opt` stands in for
//!    ONNXRuntime/Hidet).
//! 3. **De-obfuscation** ([`DeobfuscationSession`] /
//!    [`Proteus::deobfuscate`]) — the owner extracts the optimized real
//!    pieces using its [`ObfuscationSecrets`] and reassembles the
//!    optimized model.
//!
//! # Quickstart: the session API
//!
//! A trained [`Proteus`] is immutable and shareable across requests
//! (train once via [`ProteusBuilder`], wrap in an `Arc`). Each request
//! opens an [`ObfuscationSession`] keyed by a `request_id`: buckets
//! stream across the trust boundary one [`SealedBucket`] frame at a time,
//! and the [`DeobfuscationSession`] accepts optimized frames back in any
//! order. Same `request_id` → byte-identical frames; every failure is a
//! typed [`ProteusError`].
//!
//! ```
//! use proteus::{Proteus, ProteusConfig, ProteusError, PartitionSpec};
//! use proteus_graph::{Graph, Op, Activation, ConvAttrs, TensorMap};
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_opt::{Optimizer, Profile};
//!
//! // the secret model
//! let mut g = Graph::new("secret");
//! let x = g.input([1, 3, 8, 8]);
//! let c = g.add(Op::Conv(ConvAttrs::new(3, 8, 3).padding(1)), [x]);
//! let r = g.add(Op::Activation(Activation::Relu), [c]);
//! g.set_outputs([r]);
//!
//! // train the sentinel generator on public models only (validated,
//! // train-once; `train_shared()` returns an Arc for request handlers)
//! let proteus = Proteus::builder()
//!     .config(ProteusConfig {
//!         k: 2,
//!         partitions: PartitionSpec::Count(1),
//!         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!         topology_pool: 10,
//!         ..Default::default()
//!     })
//!     .corpus_model(proteus_models::build(proteus_models::ModelKind::ResNet))
//!     .train()?;
//!
//! // owner -> optimizer -> owner, one frame at a time
//! let optimizer = Optimizer::new(Profile::OrtLike);
//! let mut session = proteus.obfuscate_session(&g, &TensorMap::new(), 7)?;
//! let mut optimized_frames = Vec::new();
//! while let Some(frame) = session.next_frame() {
//!     // `frame.to_bytes()` is what would cross the trust boundary; the
//!     // optimizer party can work on this frame while the owner
//!     // generates the next one
//!     optimized_frames.push(frame.optimize(&optimizer, None));
//! }
//! let secrets = session.finish()?;
//! let mut reassembly = proteus.deobfuscate_session(&secrets);
//! for frame in optimized_frames {
//!     reassembly.accept(frame)?; // any order
//! }
//! let (model, _params) = reassembly.finish()?;
//! assert!(model.validate().is_ok());
//! # Ok::<(), ProteusError>(())
//! ```
//!
//! ## Migrating from the one-shot functions
//!
//! [`Proteus::obfuscate`] / [`optimize_model`] / [`Proteus::deobfuscate`]
//! remain available and now return [`ProteusError`]; they are wrappers
//! over the sessions with [`LEGACY_REQUEST_ID`], bit-identical to driving
//! a session by hand.
//!
//! ## Warm starts
//!
//! Training is model-independent and happens once; persist it with
//! [`Proteus::save_artifact`] and cold-start serving processes from the
//! checksummed `PRTA` artifact with [`Proteus::load_artifact`] (or
//! [`Proteus::load_artifact_expecting`] to pin the deployment config) —
//! milliseconds instead of the GraphRNN/partition training cost, and
//! bit-identical on the wire. See [`artifact`].

#![warn(missing_docs)]

pub mod artifact;
pub mod baseline;
pub mod bucket;
pub mod config;
pub mod error;
pub mod fleet;
pub mod inventory;
pub mod operators;
pub mod phase;
pub mod pipeline;
pub mod semantic;
pub mod sentinel;
pub mod serve;
pub mod session;
pub mod store;

pub use artifact::{
    config_fingerprint, ArtifactError, ArtifactSummary, TrainedArtifact, ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
};
pub use baseline::{random_opcode_graph, random_opcode_sentinels};
pub use bucket::{
    anonymize, anonymize_content, Bucket, BucketMember, ObfuscatedModel, ObfuscationSecrets,
    SealedBucket,
};
pub use config::{FaultPlan, PartitionSpec, ProteusConfig, SentinelMode, ServeConfig};
pub use error::ProteusError;
pub use fleet::{Fleet, FleetConfig, FleetResponse, FleetStats, ReplicaState, ReplicaStatus};
pub use inventory::{InventoryStats, RegimeTag, SentinelInventory, SentinelKey};
pub use operators::{detect_regime, populate, PopulationConfig, Regime};
pub use phase::{semantic_ns, PhaseBreakdown};
pub use pipeline::{
    optimize_bucket, optimize_model, optimize_model_serial, optimize_model_with_threads, Proteus,
    ProteusBuilder,
};
pub use semantic::{top_percentile, BigramModel};
pub use sentinel::SentinelFactory;
pub use serve::{
    OptimizedCache, RequestHandle, SentinelPool, ServeRuntime, ServeStats, StealQueues,
};
pub use session::{
    derive_member_seed, derive_request_seed, splitmix64, DeobfuscationSession, ObfuscationSession,
    LEGACY_REQUEST_ID,
};
pub use store::{RecoveryReport, SessionCheckpoint, Store, StoreError, VerifyReport};
