//! Proteus configuration (paper §4.4, Figure 8's tunable parameters),
//! plus the serving-runtime and fault-injection knobs.

use crate::error::ProteusError;
use crate::operators::PopulationConfig;
use crate::session::splitmix64;
use proteus_graphgen::GraphRnnConfig;

/// How many partitions to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Exactly `n` subgraphs (the paper's `n` parameter).
    Count(usize),
    /// `n = ⌊N / size⌋` — the paper's "subgraph size 8–16 sweet spot"
    /// convention (§5.2).
    TargetSize(usize),
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec::TargetSize(8)
    }
}

/// How sentinel graphs are produced for each protected subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SentinelMode {
    /// GraphRNN topology sampling + SMT operator population (§4.1.2).
    #[default]
    Generative,
    /// Minor modifications over the protected subgraph itself — for models
    /// that closely resemble popular architectures (§4.1.2 last paragraph,
    /// used by the SEResNet case study).
    Perturb,
}

/// Full configuration of the obfuscation pipeline.
#[derive(Debug, Clone)]
pub struct ProteusConfig {
    /// Partitioning granularity (`n`).
    pub partitions: PartitionSpec,
    /// Sentinels per protected subgraph (`k`).
    pub k: usize,
    /// Balance restarts of the Karger–Stein loop.
    pub partition_restarts: usize,
    /// Band width of Algorithm 1's uniform statistics band (in pool
    /// standard deviations).
    pub beta: f64,
    /// Sentinel generation strategy.
    pub mode: SentinelMode,
    /// GraphRNN hyper-parameters (Generative mode).
    pub graphrnn: GraphRnnConfig,
    /// Topology pool size sampled from the trained GraphRNN.
    pub topology_pool: usize,
    /// Operator-population settings (Algorithm 2).
    pub population: PopulationConfig,
    /// Distinct sentinel variants per (topology, regime) pair. Sentinel
    /// content is a pure function of `(topology index, regime, variant)`
    /// ([`crate::SentinelKey`]), so this bounds the warm inventory at
    /// `topology_pool x 2 x sentinel_variants` entries while keeping
    /// buckets diverse — each draw picks a variant at random from the
    /// session's per-request stream.
    pub sentinel_variants: usize,
    /// Worker threads for the optimizer party's bucket fan-out
    /// ([`crate::optimize_model_with_threads`]). `None` uses all available
    /// parallelism.
    pub optimizer_threads: Option<usize>,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        ProteusConfig {
            partitions: PartitionSpec::default(),
            k: 20,
            partition_restarts: 16,
            beta: 2.0,
            mode: SentinelMode::default(),
            graphrnn: GraphRnnConfig::default(),
            topology_pool: 200,
            population: PopulationConfig::default(),
            sentinel_variants: 4,
            optimizer_threads: None,
            seed: 0xB0B,
        }
    }
}

impl ProteusConfig {
    /// Resolves the partition count for a model with `model_nodes` nodes.
    pub fn num_partitions(&self, model_nodes: usize) -> usize {
        match self.partitions {
            PartitionSpec::Count(n) => n.max(1),
            PartitionSpec::TargetSize(s) => (model_nodes / s.max(1)).max(1),
        }
    }

    /// Rejects degenerate configurations with [`ProteusError::Config`]
    /// instead of letting them surface as empty buckets or panics deep in
    /// the pipeline. Run by [`crate::ProteusBuilder::train`] and by every
    /// [`crate::Proteus::obfuscate_session`] call.
    ///
    /// # Errors
    /// [`ProteusError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProteusError> {
        if self.k == 0 {
            return Err(ProteusError::config(
                "k must be at least 1 (a bucket needs sentinels to hide the real subgraph)",
            ));
        }
        if self.topology_pool < self.k {
            return Err(ProteusError::config(format!(
                "topology_pool ({}) must be at least k ({}) so every bucket can draw distinct topologies",
                self.topology_pool, self.k
            )));
        }
        match self.partitions {
            PartitionSpec::Count(0) => {
                return Err(ProteusError::config(
                    "partitions: Count(0) — the model must be cut into at least one piece",
                ));
            }
            PartitionSpec::TargetSize(0) => {
                return Err(ProteusError::config(
                    "partitions: TargetSize(0) — target subgraph size must be at least 1",
                ));
            }
            _ => {}
        }
        if self.partition_restarts == 0 {
            return Err(ProteusError::config(
                "partition_restarts must be at least 1 (the Karger-Stein loop needs one attempt)",
            ));
        }
        if self.sentinel_variants == 0 {
            return Err(ProteusError::config(
                "sentinel_variants must be at least 1 (every sentinel draw needs a variant)",
            ));
        }
        Ok(())
    }
}

/// Deterministic fault-injection plan for the serving runtime, threaded
/// through [`ServeConfig::faults`]. Every fault decision is a pure
/// function of `(seed, ordinal)` — the same plan against the same request
/// stream fires the same faults, so every chaos-battery failure is
/// replayable from its seed. The default plan (`FaultPlan::default()`)
/// injects nothing and is what production configs carry.
///
/// Rate-based fields (`*_one_in`) fire when
/// `splitmix64(seed ^ mix(ordinal)) % one_in == 0`; `0` disables the
/// fault. Ordinal-based fields (`*_at`) are 1-based counters over
/// pool-executed tasks (or cache inserts for the cache fault); `0`
/// disables the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// Seed for the rate-based fault draws.
    pub seed: u64,
    /// Panic exactly the k-th pool task (1-based; `0` = off). The panic is
    /// contained by `catch_unwind` and surfaces as
    /// [`ProteusError::WorkerCrashed`] on that task's request lane.
    pub panic_at: u32,
    /// Seeded rate: panic roughly one in `panic_one_in` pool tasks.
    pub panic_one_in: u32,
    /// When a contained panic fires, also retire the worker thread that
    /// ran it — exercising the supervisor's respawn path instead of the
    /// in-place containment path.
    pub abort_worker: bool,
    /// Seeded rate: stall roughly one in `stall_one_in` pool tasks for
    /// [`FaultPlan::stall_ms`] before executing. Doubles as the bench's
    /// modeled backend service time (`stall_one_in: 1`).
    pub stall_one_in: u32,
    /// Stall duration in milliseconds.
    pub stall_ms: u32,
    /// Poison the [`crate::serve::OptimizedCache`] lock on the k-th insert
    /// (1-based; `0` = off): a panic is raised *while the cache lock is
    /// held*, exercising the cache's poison self-heal path.
    pub poison_cache_at: u32,
    /// Kill the whole runtime on the k-th pool task (1-based; `0` = off):
    /// shutdown is forced mid-request and every open lane fails with
    /// [`ProteusError::ReplicaUnavailable`] — the replica-loss fault the
    /// fleet's re-dispatch path recovers from.
    pub kill_at_task: u32,
}

impl FaultPlan {
    /// True when any fault is armed. The hot path checks this once per
    /// task and skips all fault draws for the (default) inert plan.
    pub fn is_active(&self) -> bool {
        self.panic_at != 0
            || self.panic_one_in != 0
            || self.stall_one_in != 0
            || self.poison_cache_at != 0
            || self.kill_at_task != 0
    }

    /// Seeded rate draw: does a `one_in` fault fire at `ordinal`?
    /// `salt` decorrelates the draws of different fault kinds at the same
    /// ordinal.
    fn fires(&self, one_in: u32, ordinal: u64, salt: u64) -> bool {
        one_in != 0
            && splitmix64(self.seed ^ salt ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .is_multiple_of(u64::from(one_in))
    }

    /// Should the task at `ordinal` (1-based) panic?
    pub fn panic_fires(&self, ordinal: u64) -> bool {
        (self.panic_at != 0 && ordinal == u64::from(self.panic_at))
            || self.fires(self.panic_one_in, ordinal, 0x5041_4E49) // "PANI"
    }

    /// Should the task at `ordinal` (1-based) stall first?
    pub fn stall_fires(&self, ordinal: u64) -> bool {
        self.fires(self.stall_one_in, ordinal, 0x5354_414C) // "STAL"
    }

    /// Should the runtime die at task `ordinal` (1-based)?
    pub fn kill_fires(&self, ordinal: u64) -> bool {
        self.kill_at_task != 0 && ordinal >= u64::from(self.kill_at_task)
    }

    /// Should the cache lock be poisoned on insert `ordinal` (1-based)?
    pub fn poison_cache_fires(&self, ordinal: u64) -> bool {
        self.poison_cache_at != 0 && ordinal == u64::from(self.poison_cache_at)
    }
}

/// Configuration of the multi-tenant serving runtime
/// ([`crate::serve::ServeRuntime`]): the shared optimizer worker pool and
/// the per-request flow-control window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads in the shared optimizer pool. `0` means "all
    /// available parallelism" (the serving analogue of
    /// [`ProteusConfig::optimizer_threads`]`: None`).
    pub workers: usize,
    /// Per-request backpressure window: the maximum number of frames a
    /// request may have in flight (submitted but not yet optimized).
    /// Submitting past the window blocks the producer until a frame
    /// completes, so one request can never flood the shared pool.
    pub window: usize,
    /// Capacity (entries) of the shared optimized-member cache
    /// ([`crate::serve::OptimizedCache`]): bucket members whose wire
    /// bytes and optimizer profile match a cached entry skip the worker
    /// pool entirely. `0` disables the cache — every member is optimized
    /// from scratch, the pre-cache behavior.
    pub cache_capacity: usize,
    /// Deterministic fault-injection plan. The default plan is inert;
    /// chaos tests and the fleet bench arm it per replica.
    pub faults: FaultPlan,
    /// Identity of the replica this runtime backs, reported in
    /// [`ProteusError::ReplicaUnavailable`] so fleet errors name the
    /// failing replica. `0` for standalone runtimes.
    pub replica_label: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            window: 4,
            cache_capacity: 4096,
            faults: FaultPlan::default(),
            replica_label: 0,
        }
    }
}

impl ServeConfig {
    /// Resolves the worker count (`0` → available parallelism).
    pub fn num_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.workers
        }
    }

    /// Rejects degenerate serving configurations.
    ///
    /// # Errors
    /// [`ProteusError::Config`] when the window is zero — no request could
    /// ever submit a frame.
    pub fn validate(&self) -> Result<(), ProteusError> {
        if self.window == 0 {
            return Err(ProteusError::config(
                "serve window must be at least 1 (a zero window deadlocks every submit)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_defaults_and_validation() {
        let cfg = ServeConfig::default();
        cfg.validate().expect("defaults validate");
        assert!(cfg.num_workers() >= 1);
        assert_eq!(ServeConfig { workers: 3, ..cfg }.num_workers(), 3);
        let err = ServeConfig { window: 0, ..cfg }.validate().unwrap_err();
        assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");
    }

    #[test]
    fn fault_plan_default_is_inert_and_draws_are_deterministic() {
        let inert = FaultPlan::default();
        assert!(!inert.is_active());
        for ordinal in 1..200 {
            assert!(!inert.panic_fires(ordinal));
            assert!(!inert.stall_fires(ordinal));
            assert!(!inert.kill_fires(ordinal));
            assert!(!inert.poison_cache_fires(ordinal));
        }

        let plan = FaultPlan {
            seed: 0xC0FFEE,
            panic_one_in: 5,
            stall_one_in: 3,
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        // same (seed, ordinal) → same decision, always
        let draws: Vec<(bool, bool)> = (1..100)
            .map(|o| (plan.panic_fires(o), plan.stall_fires(o)))
            .collect();
        let replay: Vec<(bool, bool)> = (1..100)
            .map(|o| (plan.panic_fires(o), plan.stall_fires(o)))
            .collect();
        assert_eq!(draws, replay);
        // a one-in-5 rate fires a plausible number of times in 99 draws
        let fired = draws.iter().filter(|(p, _)| *p).count();
        assert!(fired > 4 && fired < 50, "panic draw rate off: {fired}/99");
        // different seeds decorrelate
        let other = FaultPlan {
            seed: 0xBEEF,
            ..plan
        };
        assert!((1..100).any(|o| plan.panic_fires(o) != other.panic_fires(o)));

        // ordinal-pinned faults fire exactly where aimed
        let pinned = FaultPlan {
            panic_at: 7,
            kill_at_task: 9,
            poison_cache_at: 2,
            ..FaultPlan::default()
        };
        assert!(pinned.panic_fires(7) && !pinned.panic_fires(6) && !pinned.panic_fires(8));
        assert!(!pinned.kill_fires(8) && pinned.kill_fires(9) && pinned.kill_fires(10));
        assert!(pinned.poison_cache_fires(2) && !pinned.poison_cache_fires(3));
    }

    #[test]
    fn partition_resolution() {
        let mut cfg = ProteusConfig {
            partitions: PartitionSpec::Count(7),
            ..Default::default()
        };
        assert_eq!(cfg.num_partitions(100), 7);
        cfg.partitions = PartitionSpec::TargetSize(8);
        assert_eq!(cfg.num_partitions(80), 10);
        assert_eq!(cfg.num_partitions(3), 1);
    }

    #[test]
    fn defaults_match_paper_choices() {
        let cfg = ProteusConfig::default();
        assert_eq!(cfg.k, 20);
        assert_eq!(cfg.partitions, PartitionSpec::TargetSize(8));
        cfg.validate().expect("defaults validate");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = ProteusConfig::default();
        for (label, cfg) in [
            ("k=0", ProteusConfig { k: 0, ..ok.clone() }),
            (
                "pool<k",
                ProteusConfig {
                    k: 30,
                    topology_pool: 10,
                    ..ok.clone()
                },
            ),
            (
                "count=0",
                ProteusConfig {
                    partitions: PartitionSpec::Count(0),
                    ..ok.clone()
                },
            ),
            (
                "size=0",
                ProteusConfig {
                    partitions: PartitionSpec::TargetSize(0),
                    ..ok.clone()
                },
            ),
            (
                "restarts=0",
                ProteusConfig {
                    partition_restarts: 0,
                    ..ok.clone()
                },
            ),
            (
                "variants=0",
                ProteusConfig {
                    sentinel_variants: 0,
                    ..ok.clone()
                },
            ),
        ] {
            let err = cfg.validate().expect_err(label);
            assert!(
                matches!(err, ProteusError::Config { .. }),
                "{label}: wrong variant {err:?}"
            );
        }
    }
}
