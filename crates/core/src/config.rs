//! Proteus configuration (paper §4.4, Figure 8's tunable parameters).

use crate::error::ProteusError;
use crate::operators::PopulationConfig;
use proteus_graphgen::GraphRnnConfig;

/// How many partitions to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Exactly `n` subgraphs (the paper's `n` parameter).
    Count(usize),
    /// `n = ⌊N / size⌋` — the paper's "subgraph size 8–16 sweet spot"
    /// convention (§5.2).
    TargetSize(usize),
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec::TargetSize(8)
    }
}

/// How sentinel graphs are produced for each protected subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SentinelMode {
    /// GraphRNN topology sampling + SMT operator population (§4.1.2).
    #[default]
    Generative,
    /// Minor modifications over the protected subgraph itself — for models
    /// that closely resemble popular architectures (§4.1.2 last paragraph,
    /// used by the SEResNet case study).
    Perturb,
}

/// Full configuration of the obfuscation pipeline.
#[derive(Debug, Clone)]
pub struct ProteusConfig {
    /// Partitioning granularity (`n`).
    pub partitions: PartitionSpec,
    /// Sentinels per protected subgraph (`k`).
    pub k: usize,
    /// Balance restarts of the Karger–Stein loop.
    pub partition_restarts: usize,
    /// Band width of Algorithm 1's uniform statistics band (in pool
    /// standard deviations).
    pub beta: f64,
    /// Sentinel generation strategy.
    pub mode: SentinelMode,
    /// GraphRNN hyper-parameters (Generative mode).
    pub graphrnn: GraphRnnConfig,
    /// Topology pool size sampled from the trained GraphRNN.
    pub topology_pool: usize,
    /// Operator-population settings (Algorithm 2).
    pub population: PopulationConfig,
    /// Distinct sentinel variants per (topology, regime) pair. Sentinel
    /// content is a pure function of `(topology index, regime, variant)`
    /// ([`crate::SentinelKey`]), so this bounds the warm inventory at
    /// `topology_pool x 2 x sentinel_variants` entries while keeping
    /// buckets diverse — each draw picks a variant at random from the
    /// session's per-request stream.
    pub sentinel_variants: usize,
    /// Worker threads for the optimizer party's bucket fan-out
    /// ([`crate::optimize_model_with_threads`]). `None` uses all available
    /// parallelism.
    pub optimizer_threads: Option<usize>,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        ProteusConfig {
            partitions: PartitionSpec::default(),
            k: 20,
            partition_restarts: 16,
            beta: 2.0,
            mode: SentinelMode::default(),
            graphrnn: GraphRnnConfig::default(),
            topology_pool: 200,
            population: PopulationConfig::default(),
            sentinel_variants: 4,
            optimizer_threads: None,
            seed: 0xB0B,
        }
    }
}

impl ProteusConfig {
    /// Resolves the partition count for a model with `model_nodes` nodes.
    pub fn num_partitions(&self, model_nodes: usize) -> usize {
        match self.partitions {
            PartitionSpec::Count(n) => n.max(1),
            PartitionSpec::TargetSize(s) => (model_nodes / s.max(1)).max(1),
        }
    }

    /// Rejects degenerate configurations with [`ProteusError::Config`]
    /// instead of letting them surface as empty buckets or panics deep in
    /// the pipeline. Run by [`crate::ProteusBuilder::train`] and by every
    /// [`crate::Proteus::obfuscate_session`] call.
    ///
    /// # Errors
    /// [`ProteusError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProteusError> {
        if self.k == 0 {
            return Err(ProteusError::config(
                "k must be at least 1 (a bucket needs sentinels to hide the real subgraph)",
            ));
        }
        if self.topology_pool < self.k {
            return Err(ProteusError::config(format!(
                "topology_pool ({}) must be at least k ({}) so every bucket can draw distinct topologies",
                self.topology_pool, self.k
            )));
        }
        match self.partitions {
            PartitionSpec::Count(0) => {
                return Err(ProteusError::config(
                    "partitions: Count(0) — the model must be cut into at least one piece",
                ));
            }
            PartitionSpec::TargetSize(0) => {
                return Err(ProteusError::config(
                    "partitions: TargetSize(0) — target subgraph size must be at least 1",
                ));
            }
            _ => {}
        }
        if self.partition_restarts == 0 {
            return Err(ProteusError::config(
                "partition_restarts must be at least 1 (the Karger-Stein loop needs one attempt)",
            ));
        }
        if self.sentinel_variants == 0 {
            return Err(ProteusError::config(
                "sentinel_variants must be at least 1 (every sentinel draw needs a variant)",
            ));
        }
        Ok(())
    }
}

/// Configuration of the multi-tenant serving runtime
/// ([`crate::serve::ServeRuntime`]): the shared optimizer worker pool and
/// the per-request flow-control window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads in the shared optimizer pool. `0` means "all
    /// available parallelism" (the serving analogue of
    /// [`ProteusConfig::optimizer_threads`]`: None`).
    pub workers: usize,
    /// Per-request backpressure window: the maximum number of frames a
    /// request may have in flight (submitted but not yet optimized).
    /// Submitting past the window blocks the producer until a frame
    /// completes, so one request can never flood the shared pool.
    pub window: usize,
    /// Capacity (entries) of the shared optimized-member cache
    /// ([`crate::serve::OptimizedCache`]): bucket members whose wire
    /// bytes and optimizer profile match a cached entry skip the worker
    /// pool entirely. `0` disables the cache — every member is optimized
    /// from scratch, the pre-cache behavior.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            window: 4,
            cache_capacity: 4096,
        }
    }
}

impl ServeConfig {
    /// Resolves the worker count (`0` → available parallelism).
    pub fn num_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.workers
        }
    }

    /// Rejects degenerate serving configurations.
    ///
    /// # Errors
    /// [`ProteusError::Config`] when the window is zero — no request could
    /// ever submit a frame.
    pub fn validate(&self) -> Result<(), ProteusError> {
        if self.window == 0 {
            return Err(ProteusError::config(
                "serve window must be at least 1 (a zero window deadlocks every submit)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_defaults_and_validation() {
        let cfg = ServeConfig::default();
        cfg.validate().expect("defaults validate");
        assert!(cfg.num_workers() >= 1);
        assert_eq!(ServeConfig { workers: 3, ..cfg }.num_workers(), 3);
        let err = ServeConfig { window: 0, ..cfg }.validate().unwrap_err();
        assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");
    }

    #[test]
    fn partition_resolution() {
        let mut cfg = ProteusConfig {
            partitions: PartitionSpec::Count(7),
            ..Default::default()
        };
        assert_eq!(cfg.num_partitions(100), 7);
        cfg.partitions = PartitionSpec::TargetSize(8);
        assert_eq!(cfg.num_partitions(80), 10);
        assert_eq!(cfg.num_partitions(3), 1);
    }

    #[test]
    fn defaults_match_paper_choices() {
        let cfg = ProteusConfig::default();
        assert_eq!(cfg.k, 20);
        assert_eq!(cfg.partitions, PartitionSpec::TargetSize(8));
        cfg.validate().expect("defaults validate");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = ProteusConfig::default();
        for (label, cfg) in [
            ("k=0", ProteusConfig { k: 0, ..ok.clone() }),
            (
                "pool<k",
                ProteusConfig {
                    k: 30,
                    topology_pool: 10,
                    ..ok.clone()
                },
            ),
            (
                "count=0",
                ProteusConfig {
                    partitions: PartitionSpec::Count(0),
                    ..ok.clone()
                },
            ),
            (
                "size=0",
                ProteusConfig {
                    partitions: PartitionSpec::TargetSize(0),
                    ..ok.clone()
                },
            ),
            (
                "restarts=0",
                ProteusConfig {
                    partition_restarts: 0,
                    ..ok.clone()
                },
            ),
            (
                "variants=0",
                ProteusConfig {
                    sentinel_variants: 0,
                    ..ok.clone()
                },
            ),
        ] {
            let err = cfg.validate().expect_err(label);
            assert!(
                matches!(err, ProteusError::Config { .. }),
                "{label}: wrong variant {err:?}"
            );
        }
    }
}
