//! Semantic consistency scoring (paper §4.1.2, Algorithm 2 lines 8–9).
//!
//! Syntactically valid operator assignments are not all equally plausible:
//! real models overwhelmingly follow conventions like "convolution is
//! followed by normalization or activation". Proteus quantifies this with
//! the likelihood of the operator sequences along graph edges; this module
//! implements that likelihood as a Laplace-smoothed bigram model over
//! opcode pairs, fitted on real model graphs.

use proteus_graph::{Graph, OpCode};

/// Laplace-smoothed bigram model `P(opcode_dst | opcode_src)` over edges.
#[derive(Debug, Clone)]
pub struct BigramModel {
    counts: Vec<Vec<f64>>,
    totals: Vec<f64>,
    alpha: f64,
}

impl BigramModel {
    /// Fits the model on the edges of `corpus` graphs.
    pub fn fit(corpus: &[&Graph], alpha: f64) -> BigramModel {
        let v = OpCode::COUNT;
        let mut counts = vec![vec![0.0; v]; v];
        let mut totals = vec![0.0; v];
        for g in corpus {
            for (_, node) in g.iter() {
                let dst = node.op.opcode().index();
                for &inp in &node.inputs {
                    if let Some(src_node) = g.node(inp) {
                        let src = src_node.op.opcode().index();
                        counts[src][dst] += 1.0;
                        totals[src] += 1.0;
                    }
                }
            }
        }
        BigramModel {
            counts,
            totals,
            alpha,
        }
    }

    /// The raw edge-count matrix `counts[src][dst]`, indexed by
    /// [`OpCode::index`] (exported for trained-state persistence).
    pub fn counts(&self) -> &[Vec<f64>] {
        &self.counts
    }

    /// Per-source-opcode edge totals (exported for trained-state
    /// persistence).
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// The Laplace smoothing constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Reassembles a fitted model from exported state (the inverse of
    /// [`BigramModel::counts`] / [`BigramModel::totals`] /
    /// [`BigramModel::alpha`]).
    ///
    /// # Errors
    /// Returns a description of the defect when the matrices are not
    /// `OpCode::COUNT`-square/long or a count is not finite.
    pub fn from_parts(
        counts: Vec<Vec<f64>>,
        totals: Vec<f64>,
        alpha: f64,
    ) -> Result<BigramModel, String> {
        let v = OpCode::COUNT;
        if counts.len() != v || totals.len() != v {
            return Err(format!(
                "bigram state sized {}x{} / {}, expected {v}x{v} / {v}",
                counts.len(),
                counts.first().map_or(0, Vec::len),
                totals.len()
            ));
        }
        for row in &counts {
            if row.len() != v {
                return Err(format!("bigram row of width {}, expected {v}", row.len()));
            }
            if row.iter().any(|c| !c.is_finite()) {
                return Err("non-finite bigram count".to_string());
            }
        }
        if totals.iter().any(|t| !t.is_finite()) || !alpha.is_finite() {
            return Err("non-finite bigram total or alpha".to_string());
        }
        Ok(BigramModel {
            counts,
            totals,
            alpha,
        })
    }

    /// `log P(dst | src)` with Laplace smoothing.
    pub fn log_prob(&self, src: OpCode, dst: OpCode) -> f64 {
        let v = OpCode::COUNT as f64;
        let c = self.counts[src.index()][dst.index()];
        let t = self.totals[src.index()];
        ((c + self.alpha) / (t + self.alpha * v)).ln()
    }

    /// Mean edge log-likelihood of a whole graph (length-normalized so
    /// graphs of different sizes are comparable).
    pub fn graph_log_likelihood(&self, g: &Graph) -> f64 {
        let mut total = 0.0;
        let mut edges = 0usize;
        for (_, node) in g.iter() {
            let dst = node.op.opcode();
            for &inp in &node.inputs {
                if let Some(src_node) = g.node(inp) {
                    total += self.log_prob(src_node.op.opcode(), dst);
                    edges += 1;
                }
            }
        }
        if edges == 0 {
            0.0
        } else {
            total / edges as f64
        }
    }

    /// Mean edge log-likelihood of an opcode assignment over an edge list
    /// (used during operator population, before a [`Graph`] exists).
    pub fn assignment_log_likelihood(&self, edges: &[(usize, usize)], opcodes: &[OpCode]) -> f64 {
        if edges.is_empty() {
            return 0.0;
        }
        let total: f64 = edges
            .iter()
            .map(|&(s, d)| self.log_prob(opcodes[s], opcodes[d]))
            .sum();
        total / edges.len() as f64
    }
}

/// Keeps the top `pct` fraction (by score) of scored items — Algorithm 2's
/// `TOPPERCENTILE`. Always keeps at least one item when input is nonempty.
pub fn top_percentile<T>(mut scored: Vec<(T, f64)>, pct: f64) -> Vec<T> {
    if scored.is_empty() {
        return Vec::new();
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN scores"));
    let keep = ((scored.len() as f64 * pct).ceil() as usize).clamp(1, scored.len());
    scored.into_iter().take(keep).map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};

    fn conv_relu_chain(n: usize) -> Graph {
        let mut g = Graph::new("c");
        let mut prev = g.input([1, 8, 8, 8]);
        for i in 0..n {
            prev = if i % 2 == 0 {
                g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [prev])
            } else {
                g.add(Op::Activation(Activation::Relu), [prev])
            };
        }
        g.set_outputs([prev]);
        g
    }

    #[test]
    fn learned_bigrams_prefer_corpus_patterns() {
        let corpus: Vec<Graph> = (4..10).map(conv_relu_chain).collect();
        let refs: Vec<&Graph> = corpus.iter().collect();
        let model = BigramModel::fit(&refs, 0.1);
        assert!(
            model.log_prob(OpCode::Conv, OpCode::Relu)
                > model.log_prob(OpCode::Conv, OpCode::Softmax)
        );
        assert!(
            model.log_prob(OpCode::Relu, OpCode::Conv) > model.log_prob(OpCode::Relu, OpCode::Relu)
        );
    }

    #[test]
    fn realistic_graph_scores_higher() {
        let corpus: Vec<Graph> = (4..10).map(conv_relu_chain).collect();
        let refs: Vec<&Graph> = corpus.iter().collect();
        let model = BigramModel::fit(&refs, 0.1);
        let real = conv_relu_chain(6);
        // implausible: softmax chain
        let mut weird = Graph::new("w");
        let mut prev = weird.input([1, 8, 8, 8]);
        for _ in 0..6 {
            prev = weird.add(Op::Softmax { axis: 1 }, [prev]);
        }
        weird.set_outputs([prev]);
        assert!(model.graph_log_likelihood(&real) > model.graph_log_likelihood(&weird));
    }

    #[test]
    fn top_percentile_keeps_best() {
        let items = vec![("a", 0.1), ("b", 0.9), ("c", 0.5), ("d", 0.7)];
        let kept = top_percentile(items, 0.5);
        assert_eq!(kept, vec!["b", "d"]);
        let one = top_percentile(vec![("x", 1.0)], 0.01);
        assert_eq!(one, vec!["x"]);
    }

    #[test]
    fn assignment_likelihood_matches_graph_likelihood() {
        let corpus: Vec<Graph> = (4..8).map(conv_relu_chain).collect();
        let refs: Vec<&Graph> = corpus.iter().collect();
        let model = BigramModel::fit(&refs, 0.1);
        // chain 0 -> 1 -> 2 with Input -> Conv -> Relu
        let edges = vec![(0, 1), (1, 2)];
        let codes = vec![OpCode::Input, OpCode::Conv, OpCode::Relu];
        let ll = model.assignment_log_likelihood(&edges, &codes);
        let g = conv_relu_chain(2);
        assert!((ll - model.graph_log_likelihood(&g)).abs() < 1e-9);
    }
}
