//! The Proteus pipeline: obfuscate → (optimizer party) → de-obfuscate
//! (paper Figure 1 and §4).
//!
//! The primary surface is session-based ([`Proteus::obfuscate_session`],
//! [`DeobfuscationSession`]): a trained [`Proteus`] is immutable and
//! shareable across requests, each request streams [`SealedBucket`] frames
//! across the trust boundary, and every failure is a typed
//! [`ProteusError`]. The one-shot [`Proteus::obfuscate`] /
//! [`Proteus::deobfuscate`] functions are kept as thin, bit-identical
//! wrappers over the sessions for callers that want the whole model at
//! once.

use crate::bucket::{Bucket, BucketMember, ObfuscatedModel, ObfuscationSecrets, SealedBucket};
use crate::config::ProteusConfig;
use crate::error::ProteusError;
use crate::inventory::SentinelInventory;
use crate::sentinel::SentinelFactory;
use crate::session::{DeobfuscationSession, ObfuscationSession, LEGACY_REQUEST_ID};
use proteus_graph::{Graph, TensorMap};
use proteus_opt::Optimizer;
use std::sync::Arc;

/// The model-owner side of the protocol.
#[derive(Debug)]
pub struct Proteus {
    config: ProteusConfig,
    factory: SentinelFactory,
    inventory: SentinelInventory,
}

/// Builds a trained [`Proteus`] instance with validation up front.
///
/// Training happens exactly once, in [`ProteusBuilder::train`]; the
/// resulting [`Proteus`] is immutable (train-once semantics), so one
/// instance can serve many concurrent obfuscation requests — share it via
/// [`Arc`] ([`ProteusBuilder::train_shared`]) and give each request its
/// own `request_id` (see [`Proteus::obfuscate_session`]).
///
/// ```
/// use proteus::{PartitionSpec, ProteusBuilder, ProteusConfig};
/// use proteus_graphgen::GraphRnnConfig;
///
/// let proteus = ProteusBuilder::new()
///     .config(ProteusConfig {
///         k: 2,
///         partitions: PartitionSpec::Count(1),
///         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
///         topology_pool: 10,
///         ..Default::default()
///     })
///     .corpus_model(proteus_models::build(proteus_models::ModelKind::ResNet))
///     .train_shared()?;
/// let worker = std::sync::Arc::clone(&proteus); // shareable across requests
/// # drop(worker);
/// # Ok::<(), proteus::ProteusError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProteusBuilder {
    config: ProteusConfig,
    corpus: Vec<Graph>,
}

impl ProteusBuilder {
    /// Starts from the default (paper §4.4) configuration and an empty
    /// corpus.
    pub fn new() -> ProteusBuilder {
        ProteusBuilder::default()
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: ProteusConfig) -> ProteusBuilder {
        self.config = config;
        self
    }

    /// Sets `k`, the number of sentinels per protected subgraph.
    pub fn k(mut self, k: usize) -> ProteusBuilder {
        self.config.k = k;
        self
    }

    /// Sets the partitioning granularity.
    pub fn partitions(mut self, partitions: crate::config::PartitionSpec) -> ProteusBuilder {
        self.config.partitions = partitions;
        self
    }

    /// Sets the master seed all per-request seeds derive from.
    pub fn seed(mut self, seed: u64) -> ProteusBuilder {
        self.config.seed = seed;
        self
    }

    /// Adds one public model to the training corpus.
    pub fn corpus_model(mut self, model: Graph) -> ProteusBuilder {
        self.corpus.push(model);
        self
    }

    /// Adds public models to the training corpus.
    pub fn corpus(mut self, models: impl IntoIterator<Item = Graph>) -> ProteusBuilder {
        self.corpus.extend(models);
        self
    }

    /// Validates the configuration and corpus, then trains the sentinel
    /// factory (the one-time cost; everything after is per-request).
    ///
    /// # Errors
    /// [`ProteusError::Config`] for degenerate configurations
    /// ([`ProteusConfig::validate`]) or an empty corpus — an untrained
    /// generator would emit sentinels with no resemblance to real models.
    pub fn train(self) -> Result<Proteus, ProteusError> {
        self.config.validate()?;
        if self.corpus.is_empty() {
            return Err(ProteusError::config(
                "training corpus is empty — the sentinel generator needs public models to learn \
                 topology and operator statistics from",
            ));
        }
        Ok(Proteus::train(self.config, &self.corpus))
    }

    /// [`ProteusBuilder::train`], wrapped in an [`Arc`] for sharing across
    /// request handlers/threads.
    ///
    /// # Errors
    /// As [`ProteusBuilder::train`].
    pub fn train_shared(self) -> Result<Arc<Proteus>, ProteusError> {
        self.train().map(Arc::new)
    }
}

impl Proteus {
    /// Starts a [`ProteusBuilder`] — the validating construction path.
    pub fn builder() -> ProteusBuilder {
        ProteusBuilder::new()
    }

    /// Trains a Proteus instance: the sentinel factory learns topology and
    /// operator statistics from `corpus` (public models — *not* the
    /// protected one).
    ///
    /// This legacy entry point performs no validation; prefer
    /// [`Proteus::builder`], which rejects degenerate configurations with
    /// typed errors before paying the training cost.
    pub fn train(config: ProteusConfig, corpus: &[Graph]) -> Proteus {
        let factory = SentinelFactory::train(&config, corpus);
        let inventory = SentinelInventory::new(factory.key_space().len());
        Proteus {
            config,
            factory,
            inventory,
        }
    }

    /// Reassembles a trained instance from its parts — the loading half
    /// of the trained-state artifact ([`crate::artifact`]). The parts must
    /// come from a factory trained (or loaded) under `config`; the
    /// artifact decoder enforces that.
    pub(crate) fn from_trained_parts(config: ProteusConfig, factory: SentinelFactory) -> Proteus {
        let inventory = SentinelInventory::new(factory.key_space().len());
        Proteus {
            config,
            factory,
            inventory,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ProteusConfig {
        &self.config
    }

    /// The trained sentinel factory (exposed for evaluation harnesses).
    pub fn factory(&self) -> &SentinelFactory {
        &self.factory
    }

    /// The warm sentinel inventory shared by every session opened on this
    /// instance. Sessions memoize through it transparently; disable it
    /// ([`SentinelInventory::set_enabled`]) to force inline generation —
    /// the output bytes do not change either way.
    pub fn inventory(&self) -> &SentinelInventory {
        &self.inventory
    }

    /// Synchronously builds every sentinel in the factory's key space
    /// into the inventory (the blocking warm path; the serving runtime's
    /// [`crate::serve::SentinelPool`] does the same in the background).
    /// Returns the number of keys that produced a sentinel. Idempotent —
    /// already-memoized keys are skipped at lookup cost.
    pub fn warm_inventory(&self) -> usize {
        let mut built = 0;
        for key in self.factory.key_space() {
            if self.factory.sentinel(key, Some(&self.inventory)).is_some() {
                built += 1;
            }
        }
        built
    }

    /// Opens a streaming obfuscation session for one request: partitions
    /// the protected model up front, then yields one [`SealedBucket`]
    /// frame per call so the optimizer party can start on bucket *i*
    /// while bucket *i + 1* is still being generated.
    ///
    /// All randomness derives from `seed ⊕ request_id` through splitmix64
    /// ([`crate::session::derive_request_seed`]): the same `request_id`
    /// reproduces byte-identical frames, distinct requests share nothing.
    ///
    /// # Errors
    /// [`ProteusError::Config`] for degenerate configurations,
    /// [`ProteusError::Graph`] when the protected model fails validation,
    /// [`ProteusError::Partition`] when plan extraction fails.
    pub fn obfuscate_session<'p>(
        &'p self,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<ObfuscationSession<'p>, ProteusError> {
        ObfuscationSession::new(self, graph, params, request_id)
    }

    /// Opens a reassembly session that accepts optimized frames in any
    /// order (the receiving half of [`Proteus::obfuscate_session`]).
    pub fn deobfuscate_session<'s>(
        &self,
        secrets: &'s ObfuscationSecrets,
    ) -> DeobfuscationSession<'s> {
        DeobfuscationSession::new(secrets)
    }

    /// Obfuscates a protected model: partitions it, hides every piece
    /// among `k` sentinels, anonymizes and shuffles each bucket.
    ///
    /// Returns the artifact for the optimizer party and the owner's
    /// secrets.
    ///
    /// This is the one-shot compatibility wrapper over
    /// [`Proteus::obfuscate_session`] with [`LEGACY_REQUEST_ID`]; its
    /// output is bit-identical to draining that session.
    ///
    /// # Errors
    /// As [`Proteus::obfuscate_session`].
    pub fn obfuscate(
        &self,
        graph: &Graph,
        params: &TensorMap,
    ) -> Result<(ObfuscatedModel, ObfuscationSecrets), ProteusError> {
        let mut session = self.obfuscate_session(graph, params, LEGACY_REQUEST_ID)?;
        let mut buckets = Vec::with_capacity(session.num_buckets());
        for sealed in session.by_ref() {
            buckets.push(sealed.into_bucket());
        }
        let secrets = session.finish()?;
        Ok((ObfuscatedModel { buckets }, secrets))
    }

    /// Runs the optimizer party's bucket fan-out with this instance's
    /// configured thread budget ([`ProteusConfig::optimizer_threads`]) — a
    /// single-process convenience for harnesses that play both protocol
    /// parties, as the examples and figure binaries do.
    pub fn optimize_obfuscated(
        &self,
        model: &ObfuscatedModel,
        optimizer: &Optimizer,
    ) -> ObfuscatedModel {
        optimize_model_with_threads(model, optimizer, self.config.optimizer_threads)
    }

    /// De-obfuscates: extracts the optimized real pieces from the bucket and
    /// reassembles the optimized protected model (paper §4.3).
    ///
    /// This is the batch compatibility wrapper over
    /// [`DeobfuscationSession`]: every bucket is accepted as one frame,
    /// then reassembled.
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] when the optimized buckets no longer
    /// match the plan (wrong bucket count, real position out of range),
    /// [`ProteusError::Graph`] when piece interfaces broke.
    pub fn deobfuscate(
        &self,
        secrets: &ObfuscationSecrets,
        optimized: &ObfuscatedModel,
    ) -> Result<(Graph, TensorMap), ProteusError> {
        let nb = secrets.plan.pieces.len();
        if optimized.buckets.len() != nb {
            return Err(ProteusError::protocol(format!(
                "expected {nb} buckets, got {}",
                optimized.buckets.len()
            )));
        }
        let mut session = self.deobfuscate_session(secrets);
        for (i, bucket) in optimized.buckets.iter().enumerate() {
            // by-ref accept: clones only each bucket's real member
            session.accept_ref(i as u32, nb as u32, bucket)?;
        }
        session.finish()
    }
}

impl SealedBucket {
    /// Optimizes every member of this frame (the optimizer party's work
    /// on one streamed bucket), preserving the frame header. Reuse one
    /// [`Optimizer`] handle across frames — its rule catalog is built
    /// once at construction.
    pub fn optimize(&self, optimizer: &Optimizer, threads: Option<usize>) -> SealedBucket {
        SealedBucket {
            bucket_index: self.bucket_index,
            num_buckets: self.num_buckets,
            bucket: optimize_bucket(&self.bucket, optimizer, threads),
        }
    }
}

/// The optimizer party: optimizes every member of every bucket,
/// independently and in parallel (the paper's step 3). The optimizer never
/// learns which member is real. Uses all available parallelism; see
/// [`optimize_model_with_threads`] to bound it (e.g. from
/// [`ProteusConfig::optimizer_threads`]).
pub fn optimize_model(model: &ObfuscatedModel, optimizer: &Optimizer) -> ObfuscatedModel {
    optimize_model_with_threads(model, optimizer, None)
}

/// Optimizes the members of one bucket with the dynamic work queue — the
/// per-frame unit of the streaming protocol.
pub fn optimize_bucket(bucket: &Bucket, optimizer: &Optimizer, threads: Option<usize>) -> Bucket {
    let members: Vec<&BucketMember> = bucket.members.iter().collect();
    Bucket {
        members: optimize_members(&members, optimizer, threads),
    }
}

/// [`optimize_model`] with an explicit worker-thread count (`None` = all
/// available parallelism).
pub fn optimize_model_with_threads(
    model: &ObfuscatedModel,
    optimizer: &Optimizer,
    threads: Option<usize>,
) -> ObfuscatedModel {
    let flat: Vec<&BucketMember> = model.buckets.iter().flat_map(|b| &b.members).collect();
    let mut optimized = optimize_members(&flat, optimizer, threads).into_iter();
    ObfuscatedModel {
        buckets: model
            .buckets
            .iter()
            .map(|b| Bucket {
                members: b
                    .members
                    .iter()
                    .map(|_| optimized.next().expect("one result per member"))
                    .collect(),
            })
            .collect(),
    }
}

/// Shared fan-out core: optimizes a flat member list.
///
/// Scheduling is the same work-stealing scheduler the serving runtime
/// uses ([`crate::serve::StealQueues`]): every member becomes one task on
/// a per-worker deque, and a worker whose deque runs dry steals from the
/// others. Bucket members vary wildly in size after partitioning (the
/// real pieces are balanced, but sentinels are sampled around them), so
/// static chunks routinely left threads idle behind one loaded with the
/// big graphs — and a single shared queue serializes every pop on one
/// lock.
fn optimize_members(
    members: &[&BucketMember],
    optimizer: &Optimizer,
    threads: Option<usize>,
) -> Vec<BucketMember> {
    use crate::serve::StealQueues;
    use std::sync::Mutex;

    let num_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, members.len().max(1));
    // Results land directly in their slot — no placeholder members, no
    // post-hoc reshuffling. The per-slot mutexes are uncontended (each is
    // locked exactly once).
    let slots: Vec<Mutex<Option<BucketMember>>> =
        (0..members.len()).map(|_| Mutex::new(None)).collect();
    let queues: StealQueues<usize> = StealQueues::new(num_threads);
    for i in 0..members.len() {
        queues.push(i);
    }
    crossbeam::thread::scope(|scope| {
        for w in 0..num_threads {
            let queues = &queues;
            let slots = &slots;
            scope.spawn(move |_| {
                // every task is queued before the workers start, so an
                // empty scan (own deque + all steals) means the batch is
                // drained
                while let Some(i) = queues.pop(w) {
                    let m = members[i];
                    let (g, p, _) = optimizer.optimize(&m.graph, &m.params);
                    *slots[i].lock().expect("slot poisoned") = Some(BucketMember {
                        graph: g,
                        params: p,
                    });
                }
            });
        }
    })
    .expect("thread scope");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled slot")
        })
        .collect()
}

/// Serial variant of [`optimize_model`] (for measurement baselines).
pub fn optimize_model_serial(model: &ObfuscatedModel, optimizer: &Optimizer) -> ObfuscatedModel {
    ObfuscatedModel {
        buckets: model
            .buckets
            .iter()
            .map(|b| Bucket {
                members: b
                    .members
                    .iter()
                    .map(|m| {
                        let (g, p, _) = optimizer.optimize(&m.graph, &m.params);
                        BucketMember {
                            graph: g,
                            params: p,
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use proteus_graph::{Executor, Tensor};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use proteus_opt::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config(k: usize) -> ProteusConfig {
        ProteusConfig {
            k,
            graphrnn: GraphRnnConfig {
                epochs: 2,
                max_nodes: 20,
                ..Default::default()
            },
            topology_pool: 30,
            ..Default::default()
        }
    }

    fn small_model() -> (Graph, TensorMap) {
        use proteus_graph::{Activation, ConvAttrs, Op};
        let mut g = Graph::new("small");
        let x = g.input([1, 3, 8, 8]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(4, 4, 3).padding(1)), [r1]);
        let a = g.add(Op::Add, [c2, r1]);
        let r2 = g.add(Op::Activation(Activation::Relu), [a]);
        let gap = g.add(Op::GlobalAveragePool, [r2]);
        g.set_outputs([gap]);
        let params = TensorMap::init_random(&g, 3);
        (g, params)
    }

    #[test]
    fn end_to_end_identity_roundtrip() {
        // obfuscate + deobfuscate without optimization returns an
        // equivalent model
        let (g, params) = small_model();
        let mut cfg = quick_config(3);
        cfg.partitions = PartitionSpec::Count(3);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        assert_eq!(model.num_buckets(), 3);
        assert_eq!(model.total_subgraphs(), 3 * 4);
        let (back, back_params) = proteus.deobfuscate(&secrets, &model).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
        let a = Executor::new(&g, &params)
            .run(std::slice::from_ref(&x))
            .unwrap();
        let b = Executor::new(&back, &back_params).run(&[x]).unwrap();
        assert!(
            a[0].allclose(&b[0], 1e-4),
            "diff {}",
            a[0].max_abs_diff(&b[0])
        );
    }

    #[test]
    fn end_to_end_with_optimizer_preserves_semantics() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::MobileNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        for profile in Profile::ALL {
            let optimized = optimize_model(&model, &Optimizer::new(profile));
            let (back, back_params) = proteus.deobfuscate(&secrets, &optimized).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let x = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
            let a = Executor::new(&g, &params)
                .run(std::slice::from_ref(&x))
                .unwrap();
            let b = Executor::new(&back, &back_params).run(&[x]).unwrap();
            assert!(
                a[0].allclose(&b[0], 1e-3),
                "{profile:?}: diff {}",
                a[0].max_abs_diff(&b[0])
            );
        }
    }

    #[test]
    fn bucket_hides_real_subgraph_names() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        for bucket in &model.buckets {
            for m in &bucket.members {
                assert!(m.graph.name().starts_with("subgraph_"));
                for (_, node) in m.graph.iter() {
                    assert!(!node.name.contains("small"), "leak: {}", node.name);
                }
            }
        }
    }

    #[test]
    fn sentinel_param_streams_are_pairwise_distinct() {
        // The satellite fix for the seed-correlation bug: two sentinels
        // must never share a parameter stream, even with identical
        // topology. Initialize one sentinel graph under the derived seeds
        // of several (bucket, member) slots and require distinct tensors.
        use crate::session::{derive_member_seed, derive_request_seed};
        let (probe, _) = small_model();
        let request_seed = derive_request_seed(ProteusConfig::default().seed, LEGACY_REQUEST_ID);
        let mut streams: Vec<Vec<f32>> = Vec::new();
        for bucket in 0..4 {
            for member in 1..=4 {
                let seed = derive_member_seed(request_seed, bucket, member);
                let pm = TensorMap::init_random(&probe, seed);
                let mut flat: Vec<f32> = Vec::new();
                for id in probe.node_ids() {
                    if let Some(ts) = pm.get(id) {
                        for t in ts {
                            flat.extend_from_slice(t.data());
                        }
                    }
                }
                streams.push(flat);
            }
        }
        assert!(
            streams.iter().all(|s| !s.is_empty()),
            "probe graph must carry parameters"
        );
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                assert_ne!(
                    streams[i], streams[j],
                    "slots {i} and {j} drew the same parameter stream"
                );
            }
        }
        // the derivation itself is injective over a wider grid
        let mut seeds = std::collections::HashSet::new();
        for bucket in 0..64 {
            for member in 0..64 {
                assert!(
                    seeds.insert(derive_member_seed(request_seed, bucket, member)),
                    "seed collision at ({bucket}, {member})"
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_optimization_agree() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        let opt = Optimizer::new(Profile::OrtLike);
        let par = optimize_model(&model, &opt);
        let ser = optimize_model_serial(&model, &opt);
        for (a, b) in par.buckets.iter().zip(&ser.buckets) {
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert_eq!(ma.graph.len(), mb.graph.len());
            }
        }
    }

    #[test]
    fn per_bucket_and_whole_model_optimization_agree() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        let opt = Optimizer::new(Profile::OrtLike);
        let whole = optimize_model(&model, &opt);
        for (i, bucket) in model.buckets.iter().enumerate() {
            let frame = SealedBucket {
                bucket_index: i as u32,
                num_buckets: model.buckets.len() as u32,
                bucket: bucket.clone(),
            };
            let optimized = frame.optimize(&opt, Some(2));
            assert_eq!(optimized.bucket_index, i as u32);
            for (ma, mb) in optimized
                .bucket
                .members
                .iter()
                .zip(&whole.buckets[i].members)
            {
                assert_eq!(ma.graph, mb.graph, "bucket {i}");
            }
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        let opt = Optimizer::new(Profile::OrtLike);
        let reference = optimize_model_serial(&model, &opt);
        // the config-driven entry point takes the same path
        let via_config = proteus.optimize_obfuscated(&model, &opt);
        assert_eq!(
            via_config.buckets.len(),
            reference.buckets.len(),
            "config-driven fan-out optimizes every bucket"
        );
        for threads in [Some(1), Some(3), Some(64), None] {
            let par = optimize_model_with_threads(&model, &opt, threads);
            assert_eq!(par.buckets.len(), reference.buckets.len());
            for (a, b) in par.buckets.iter().zip(&reference.buckets) {
                assert_eq!(a.members.len(), b.members.len());
                for (ma, mb) in a.members.iter().zip(&b.members) {
                    assert_eq!(ma.graph, mb.graph, "threads={threads:?}");
                }
            }
        }
    }

    #[test]
    fn deobfuscate_rejects_mismatched_buckets() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        let mut broken = model.clone();
        broken.buckets.pop();
        let err = proteus.deobfuscate(&secrets, &broken).unwrap_err();
        assert!(
            matches!(err, ProteusError::Protocol { .. }),
            "wrong variant: {err:?}"
        );
    }

    #[test]
    fn builder_validates_before_training() {
        let err = Proteus::builder()
            .config(quick_config(0))
            .corpus_model(build(ModelKind::ResNet))
            .train()
            .unwrap_err();
        assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");

        let err = Proteus::builder()
            .config(quick_config(2))
            .train()
            .unwrap_err();
        assert!(
            matches!(err, ProteusError::Config { .. }),
            "empty corpus must be rejected: {err:?}"
        );
    }

    #[test]
    fn trained_proteus_is_shareable_across_threads() {
        // compile-time guarantee that Arc<Proteus> can serve concurrent
        // requests
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Proteus>();
        assert_send_sync::<ObfuscatedModel>();
        assert_send_sync::<SealedBucket>();

        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::builder()
            .config(cfg)
            .corpus_model(build(ModelKind::ResNet))
            .train_shared()
            .unwrap();
        let handles: Vec<_> = (0..2u64)
            .map(|rid| {
                let proteus = Arc::clone(&proteus);
                let g = g.clone();
                let params = params.clone();
                std::thread::spawn(move || {
                    let mut session = proteus.obfuscate_session(&g, &params, rid).unwrap();
                    let frames: Vec<_> = session.by_ref().collect();
                    (frames, session.finish().unwrap())
                })
            })
            .collect();
        for h in handles {
            let (frames, secrets) = h.join().unwrap();
            assert_eq!(frames.len(), secrets.plan.pieces.len());
        }
    }
}
