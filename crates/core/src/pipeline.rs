//! The Proteus pipeline: obfuscate → (optimizer party) → de-obfuscate
//! (paper Figure 1 and §4).

use crate::bucket::{anonymize, Bucket, BucketMember, ObfuscatedModel, ObfuscationSecrets};
use crate::config::ProteusConfig;
use crate::sentinel::SentinelFactory;
use proteus_graph::{Graph, GraphError, TensorMap};
use proteus_opt::Optimizer;
use proteus_partition::{partition_balanced, PartitionPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The model-owner side of the protocol.
#[derive(Debug)]
pub struct Proteus {
    config: ProteusConfig,
    factory: SentinelFactory,
}

impl Proteus {
    /// Trains a Proteus instance: the sentinel factory learns topology and
    /// operator statistics from `corpus` (public models — *not* the
    /// protected one).
    pub fn train(config: ProteusConfig, corpus: &[Graph]) -> Proteus {
        let factory = SentinelFactory::train(&config, corpus);
        Proteus { config, factory }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ProteusConfig {
        &self.config
    }

    /// The trained sentinel factory (exposed for evaluation harnesses).
    pub fn factory(&self) -> &SentinelFactory {
        &self.factory
    }

    /// Obfuscates a protected model: partitions it, hides every piece
    /// among `k` sentinels, anonymizes and shuffles each bucket.
    ///
    /// Returns the artifact for the optimizer party and the owner's
    /// secrets.
    ///
    /// # Errors
    /// Propagates graph validation/shape failures of the protected model.
    pub fn obfuscate(
        &self,
        graph: &Graph,
        params: &TensorMap,
    ) -> Result<(ObfuscatedModel, ObfuscationSecrets), GraphError> {
        graph.validate()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = self.config.num_partitions(graph.len());
        let assignment =
            partition_balanced(graph, n, self.config.partition_restarts, self.config.seed);
        let plan = PartitionPlan::extract(graph, params, &assignment)?;

        let mut buckets = Vec::with_capacity(plan.pieces.len());
        let mut real_positions = Vec::with_capacity(plan.pieces.len());
        for (i, piece) in plan.pieces.iter().enumerate() {
            let sentinels =
                self.factory
                    .generate(&piece.graph, self.config.k, self.config.mode, &mut rng);
            let mut members: Vec<BucketMember> = Vec::with_capacity(sentinels.len() + 1);
            members.push(BucketMember {
                graph: piece.graph.clone(),
                params: piece.params.clone(),
            });
            for s in sentinels {
                // sentinels carry plausible random parameters so that the
                // presence/absence of weights does not mark the real piece
                let sp = if piece.params.is_empty() {
                    TensorMap::new()
                } else {
                    TensorMap::init_random(&s, self.config.seed ^ (i as u64) << 8)
                };
                members.push(BucketMember {
                    graph: s,
                    params: sp,
                });
            }
            // shuffle and record where the real subgraph landed
            let mut order: Vec<usize> = (0..members.len()).collect();
            order.shuffle(&mut rng);
            let real_at = order.iter().position(|&o| o == 0).expect("present");
            let mut shuffled: Vec<BucketMember> =
                order.into_iter().map(|o| members[o].clone()).collect();
            for (j, m) in shuffled.iter_mut().enumerate() {
                m.graph = anonymize(&m.graph, i * 1000 + j);
            }
            real_positions.push(real_at);
            buckets.push(Bucket { members: shuffled });
        }
        Ok((
            ObfuscatedModel { buckets },
            ObfuscationSecrets {
                plan,
                real_positions,
            },
        ))
    }

    /// Runs the optimizer party's bucket fan-out with this instance's
    /// configured thread budget ([`ProteusConfig::optimizer_threads`]) — a
    /// single-process convenience for harnesses that play both protocol
    /// parties, as the examples and figure binaries do.
    pub fn optimize_obfuscated(
        &self,
        model: &ObfuscatedModel,
        optimizer: &Optimizer,
    ) -> ObfuscatedModel {
        optimize_model_with_threads(model, optimizer, self.config.optimizer_threads)
    }

    /// De-obfuscates: extracts the optimized real pieces from the bucket and
    /// reassembles the optimized protected model (paper §4.3).
    ///
    /// # Errors
    /// Fails when the optimized buckets no longer match the plan (wrong
    /// bucket count, broken piece interfaces).
    pub fn deobfuscate(
        &self,
        secrets: &ObfuscationSecrets,
        optimized: &ObfuscatedModel,
    ) -> Result<(Graph, TensorMap), GraphError> {
        if optimized.buckets.len() != secrets.plan.pieces.len() {
            return Err(GraphError::Exec {
                node: "<deobfuscate>".into(),
                detail: format!(
                    "expected {} buckets, got {}",
                    secrets.plan.pieces.len(),
                    optimized.buckets.len()
                ),
            });
        }
        let mut pieces = Vec::with_capacity(optimized.buckets.len());
        for (bucket, &pos) in optimized.buckets.iter().zip(&secrets.real_positions) {
            let member = bucket.members.get(pos).ok_or_else(|| GraphError::Exec {
                node: "<deobfuscate>".into(),
                detail: format!("real position {pos} out of bucket range"),
            })?;
            pieces.push((member.graph.clone(), member.params.clone()));
        }
        secrets.plan.reassemble(&pieces)
    }
}

/// The optimizer party: optimizes every member of every bucket,
/// independently and in parallel (the paper's step 3). The optimizer never
/// learns which member is real. Uses all available parallelism; see
/// [`optimize_model_with_threads`] to bound it (e.g. from
/// [`ProteusConfig::optimizer_threads`]).
pub fn optimize_model(model: &ObfuscatedModel, optimizer: &Optimizer) -> ObfuscatedModel {
    optimize_model_with_threads(model, optimizer, None)
}

/// [`optimize_model`] with an explicit worker-thread count (`None` = all
/// available parallelism).
///
/// Scheduling is dynamic: workers pull the next member off a shared atomic
/// index instead of owning a pre-cut chunk. Bucket members vary wildly in
/// size after partitioning (the real pieces are balanced, but sentinels are
/// sampled around them), so static chunks routinely left threads idle
/// behind one loaded with the big graphs.
pub fn optimize_model_with_threads(
    model: &ObfuscatedModel,
    optimizer: &Optimizer,
    threads: Option<usize>,
) -> ObfuscatedModel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let flat: Vec<(usize, usize, &BucketMember)> = model
        .buckets
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.members.iter().enumerate().map(move |(mi, m)| (bi, mi, m)))
        .collect();
    let num_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, flat.len().max(1));
    // Results land directly in their slot — no placeholder members, no
    // post-hoc reshuffling. The per-slot mutexes are uncontended (each is
    // locked exactly once).
    let slots: Vec<Mutex<Option<BucketMember>>> =
        (0..flat.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(_, _, m)) = flat.get(i) else { break };
                let (g, p, _) = optimizer.optimize(&m.graph, &m.params);
                *slots[i].lock().expect("slot poisoned") = Some(BucketMember {
                    graph: g,
                    params: p,
                });
            });
        }
    })
    .expect("thread scope");

    let mut slots = slots.into_iter();
    ObfuscatedModel {
        buckets: model
            .buckets
            .iter()
            .map(|b| Bucket {
                members: b
                    .members
                    .iter()
                    .map(|_| {
                        slots
                            .next()
                            .expect("one slot per member")
                            .into_inner()
                            .expect("slot poisoned")
                            .expect("worker filled slot")
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Serial variant of [`optimize_model`] (for measurement baselines).
pub fn optimize_model_serial(model: &ObfuscatedModel, optimizer: &Optimizer) -> ObfuscatedModel {
    ObfuscatedModel {
        buckets: model
            .buckets
            .iter()
            .map(|b| Bucket {
                members: b
                    .members
                    .iter()
                    .map(|m| {
                        let (g, p, _) = optimizer.optimize(&m.graph, &m.params);
                        BucketMember {
                            graph: g,
                            params: p,
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use proteus_graph::{Executor, Tensor};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use proteus_opt::Profile;

    fn quick_config(k: usize) -> ProteusConfig {
        ProteusConfig {
            k,
            graphrnn: GraphRnnConfig {
                epochs: 2,
                max_nodes: 20,
                ..Default::default()
            },
            topology_pool: 30,
            ..Default::default()
        }
    }

    fn small_model() -> (Graph, TensorMap) {
        use proteus_graph::{Activation, ConvAttrs, Op};
        let mut g = Graph::new("small");
        let x = g.input([1, 3, 8, 8]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(4, 4, 3).padding(1)), [r1]);
        let a = g.add(Op::Add, [c2, r1]);
        let r2 = g.add(Op::Activation(Activation::Relu), [a]);
        let gap = g.add(Op::GlobalAveragePool, [r2]);
        g.set_outputs([gap]);
        let params = TensorMap::init_random(&g, 3);
        (g, params)
    }

    #[test]
    fn end_to_end_identity_roundtrip() {
        // obfuscate + deobfuscate without optimization returns an
        // equivalent model
        let (g, params) = small_model();
        let mut cfg = quick_config(3);
        cfg.partitions = PartitionSpec::Count(3);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        assert_eq!(model.num_buckets(), 3);
        assert_eq!(model.total_subgraphs(), 3 * 4);
        let (back, back_params) = proteus.deobfuscate(&secrets, &model).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
        let a = Executor::new(&g, &params)
            .run(std::slice::from_ref(&x))
            .unwrap();
        let b = Executor::new(&back, &back_params).run(&[x]).unwrap();
        assert!(
            a[0].allclose(&b[0], 1e-4),
            "diff {}",
            a[0].max_abs_diff(&b[0])
        );
    }

    #[test]
    fn end_to_end_with_optimizer_preserves_semantics() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::MobileNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        for profile in [Profile::OrtLike, Profile::HidetLike] {
            let optimized = optimize_model(&model, &Optimizer::new(profile));
            let (back, back_params) = proteus.deobfuscate(&secrets, &optimized).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let x = Tensor::random([1, 3, 8, 8], 1.0, &mut rng);
            let a = Executor::new(&g, &params)
                .run(std::slice::from_ref(&x))
                .unwrap();
            let b = Executor::new(&back, &back_params).run(&[x]).unwrap();
            assert!(
                a[0].allclose(&b[0], 1e-3),
                "{profile:?}: diff {}",
                a[0].max_abs_diff(&b[0])
            );
        }
    }

    #[test]
    fn bucket_hides_real_subgraph_names() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        for bucket in &model.buckets {
            for m in &bucket.members {
                assert!(m.graph.name().starts_with("subgraph_"));
                for (_, node) in m.graph.iter() {
                    assert!(!node.name.contains("small"), "leak: {}", node.name);
                }
            }
        }
    }

    #[test]
    fn parallel_and_serial_optimization_agree() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        let opt = Optimizer::new(Profile::OrtLike);
        let par = optimize_model(&model, &opt);
        let ser = optimize_model_serial(&model, &opt);
        for (a, b) in par.buckets.iter().zip(&ser.buckets) {
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert_eq!(ma.graph.len(), mb.graph.len());
            }
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, _) = proteus.obfuscate(&g, &params).unwrap();
        let opt = Optimizer::new(Profile::OrtLike);
        let reference = optimize_model_serial(&model, &opt);
        // the config-driven entry point takes the same path
        let via_config = proteus.optimize_obfuscated(&model, &opt);
        assert_eq!(
            via_config.buckets.len(),
            reference.buckets.len(),
            "config-driven fan-out optimizes every bucket"
        );
        for threads in [Some(1), Some(3), Some(64), None] {
            let par = optimize_model_with_threads(&model, &opt, threads);
            assert_eq!(par.buckets.len(), reference.buckets.len());
            for (a, b) in par.buckets.iter().zip(&reference.buckets) {
                assert_eq!(a.members.len(), b.members.len());
                for (ma, mb) in a.members.iter().zip(&b.members) {
                    assert_eq!(ma.graph, mb.graph, "threads={threads:?}");
                }
            }
        }
    }

    #[test]
    fn deobfuscate_rejects_mismatched_buckets() {
        let (g, params) = small_model();
        let mut cfg = quick_config(2);
        cfg.partitions = PartitionSpec::Count(2);
        let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
        let (model, secrets) = proteus.obfuscate(&g, &params).unwrap();
        let mut broken = model.clone();
        broken.buckets.pop();
        assert!(proteus.deobfuscate(&secrets, &broken).is_err());
    }
}
