//! Fault-tolerant replica fleet: N warm [`ServeRuntime`] replicas behind
//! a consistent-hash router, with deadlines, bounded retry re-dispatch,
//! and graceful drain/respawn.
//!
//! A single [`ServeRuntime`] is crash-contained (worker panics fail one
//! lane, the supervisor respawns worker threads), but a *replica-level*
//! loss — the whole runtime killed mid-request — still takes every lane
//! on it down. The fleet is the recovery layer above that blast radius:
//!
//! - **Routing.** Requests are placed on a consistent-hash ring keyed by
//!   `request_id` ([`Fleet::route`]): each replica owns
//!   [`FleetConfig::virtual_nodes`] ring points, a request walks the ring
//!   from `splitmix64(request_id)` and lands on the first replica that is
//!   [`ReplicaState::Up`]. Draining or down replicas are skipped without
//!   remapping the rest of the keyspace.
//! - **Health + re-dispatch.** A retryable failure (typed
//!   [`ProteusError::WorkerCrashed`] or
//!   [`ProteusError::ReplicaUnavailable`] — see
//!   [`ProteusError::is_retryable`]) marks the replica, backs off
//!   (doubling from [`FleetConfig::backoff_ms`]), and re-dispatches to
//!   the next replica in ring order, at most [`FleetConfig::max_retries`]
//!   times before surfacing [`ProteusError::RetriesExhausted`].
//! - **Deadlines.** [`FleetConfig::deadline_ms`] bounds the request end
//!   to end — generation, window waits, optimization, and backoff all
//!   charge against it — surfacing [`ProteusError::Deadline`] (terminal:
//!   the budget is spent, so no retry).
//! - **Drain/respawn.** [`Fleet::drain`] stops routing to a replica,
//!   waits for its in-flight requests to complete, and drops the runtime
//!   (which drains its queues); [`Fleet::respawn`] builds a fresh runtime
//!   in the slot. A replica lost to the kill fault is auto-respawned with
//!   its faults cleared — fresh-process semantics — when
//!   [`FleetConfig::auto_respawn`] is set.
//!
//! **Why re-dispatch is safe** (the determinism argument): every byte a
//! replica produces for request `r` is a pure function of the shared
//! trained state and `r` — sentinel draws derive from
//! `splitmix64(master_seed ^ r)`, optimization is deterministic, and the
//! optimized-member cache is pure memoization. A re-dispatched request
//! therefore must produce bit-identical wire bytes on any replica; the
//! fleet **hard-asserts** this by recording each completed bucket's bytes
//! across attempts and panicking on any divergence. That assert failing
//! would mean the confidentiality protocol itself is broken (an owner
//! could not deobfuscate reliably), so it is an invariant, not an error
//! path.

// Same panic discipline as `serve.rs`: the request path returns typed
// errors; the only deliberate panic is the re-dispatch determinism
// hard-assert documented above.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::bucket::SealedBucket;
use crate::config::{FaultPlan, ServeConfig};
use crate::error::ProteusError;
use crate::phase::PhaseBreakdown;
use crate::pipeline::Proteus;
use crate::serve::{RequestHandle, ServeRuntime, ServeStats};
use crate::session::{splitmix64, DeobfuscationSession};
use bytes::Bytes;
use proteus_graph::{Graph, TensorMap};
use proteus_opt::Optimizer;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a fleet-internal mutex, recovering from poison. The protected
/// data (a runtime slot `Option<Arc<..>>` or a `Copy` config) cannot be
/// left half-mutated by a panic, so the poison flag carries no
/// information here.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of replicas (each one full [`ServeRuntime`]).
    pub replicas: usize,
    /// Per-replica serving configuration. The fleet overrides
    /// [`ServeConfig::replica_label`] with each replica's index.
    pub serve: ServeConfig,
    /// End-to-end latency budget per request in milliseconds; `0`
    /// disables deadlines.
    pub deadline_ms: u64,
    /// Re-dispatch attempts after the first (so `max_retries = 2` allows
    /// three dispatches total).
    pub max_retries: u32,
    /// Initial backoff between re-dispatch attempts; doubles per retry,
    /// capped at 8 doublings and at the remaining deadline.
    pub backoff_ms: u64,
    /// Automatically respawn a replica that fails with
    /// [`ProteusError::ReplicaUnavailable`], clearing its fault plan
    /// (fresh-process semantics).
    pub auto_respawn: bool,
    /// Ring points per replica on the consistent-hash ring. More points
    /// smooth the key distribution; 16 is plenty for small fleets.
    pub virtual_nodes: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            serve: ServeConfig::default(),
            deadline_ms: 0,
            max_retries: 2,
            backoff_ms: 5,
            auto_respawn: true,
            virtual_nodes: 16,
        }
    }
}

impl FleetConfig {
    /// Rejects degenerate fleet configurations.
    ///
    /// # Errors
    /// [`ProteusError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProteusError> {
        if self.replicas == 0 {
            return Err(ProteusError::config(
                "fleet replicas must be at least 1 (a fleet needs a replica to route to)",
            ));
        }
        if self.virtual_nodes == 0 {
            return Err(ProteusError::config(
                "fleet virtual_nodes must be at least 1 (a replica needs a ring point)",
            ));
        }
        self.serve.validate()
    }
}

/// Lifecycle state of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Accepting routed traffic.
    Up,
    /// Finishing in-flight requests; the router skips it.
    Draining,
    /// Not serving (drained, killed, or failed to respawn).
    Down,
}

const STATE_UP: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_DOWN: u8 = 2;

struct Replica {
    /// The live runtime, `None` while down. Dispatchers clone the `Arc`
    /// out and drop the lock — a drain/respawn never blocks behind an
    /// in-flight request.
    runtime: Mutex<Option<Arc<ServeRuntime>>>,
    /// Current [`ServeConfig`] (faults may be cleared across respawns).
    config: Mutex<ServeConfig>,
    state: AtomicU8,
    /// Requests currently dispatched to this replica.
    inflight: AtomicUsize,
    /// Requests this replica completed successfully.
    served: AtomicUsize,
    /// Dispatches that came back with an error.
    failures: AtomicUsize,
    /// Times this replica's runtime was (re)built after construction.
    respawns: AtomicUsize,
}

impl Replica {
    fn state(&self) -> ReplicaState {
        match self.state.load(Ordering::SeqCst) {
            STATE_UP => ReplicaState::Up,
            STATE_DRAINING => ReplicaState::Draining,
            _ => ReplicaState::Down,
        }
    }

    fn set_state(&self, state: ReplicaState) {
        let raw = match state {
            ReplicaState::Up => STATE_UP,
            ReplicaState::Draining => STATE_DRAINING,
            ReplicaState::Down => STATE_DOWN,
        };
        self.state.store(raw, Ordering::SeqCst);
    }
}

/// Decrements a replica's inflight count when a dispatch ends, however
/// it ends — success, typed error, or the determinism assert unwinding.
struct InflightGuard<'a>(&'a Replica);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Point-in-time status of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica index (also its [`ServeConfig::replica_label`]).
    pub index: usize,
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Requests currently dispatched to it.
    pub inflight: usize,
    /// Requests completed successfully.
    pub served: usize,
    /// Dispatches that returned an error.
    pub failures: usize,
    /// Times its runtime was rebuilt.
    pub respawns: usize,
    /// Tasks queued on its pool right now (`0` while down).
    pub queue_depth: usize,
    /// Its runtime's counters (`None` while down).
    pub serve: Option<ServeStats>,
}

/// Point-in-time status of the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// One status per replica, by index.
    pub replicas: Vec<ReplicaStatus>,
    /// Requests the fleet completed successfully.
    pub served: usize,
    /// Re-dispatch attempts beyond each request's first dispatch.
    pub redispatches: usize,
}

/// A successfully served request, with its dispatch trace.
#[derive(Debug, Clone)]
pub struct FleetResponse {
    /// The optimized, deobfuscated protected graph.
    pub graph: Graph,
    /// Its reassembled parameters.
    pub params: TensorMap,
    /// Dispatch attempts made (1 = no chaos encountered).
    pub attempts: u32,
    /// Replica indices tried, in order; the last one served it.
    pub replicas_tried: Vec<usize>,
    /// Phase breakdown of the *successful* attempt, plus total backoff
    /// time across all attempts in [`PhaseBreakdown::backoff_ns`].
    pub phases: PhaseBreakdown,
}

/// N warm [`ServeRuntime`] replicas behind a consistent-hash router with
/// deadline/retry re-dispatch. See the [module docs](crate::fleet).
///
/// ```
/// use proteus::fleet::{Fleet, FleetConfig};
/// use proteus::{PartitionSpec, Proteus, ProteusConfig, ServeConfig};
/// use proteus_graph::TensorMap;
/// use proteus_graphgen::GraphRnnConfig;
/// use proteus_opt::{Optimizer, Profile};
///
/// let proteus = Proteus::builder()
///     .config(ProteusConfig {
///         k: 2,
///         partitions: PartitionSpec::Count(1),
///         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
///         topology_pool: 10,
///         ..Default::default()
///     })
///     .corpus_model(proteus_models::build(proteus_models::ModelKind::ResNet))
///     .train_shared()?;
///
/// let fleet = Fleet::new(
///     Optimizer::new(Profile::OrtLike),
///     FleetConfig {
///         replicas: 2,
///         serve: ServeConfig { workers: 1, window: 4, ..Default::default() },
///         ..Default::default()
///     },
/// )?;
/// let secret = proteus_models::build(proteus_models::ModelKind::AlexNet);
/// let response = fleet.serve_request_traced(&proteus, &secret, &TensorMap::new(), 11)?;
/// assert!(response.graph.validate().is_ok());
/// assert_eq!(response.attempts, 1, "no chaos, no retries");
/// # Ok::<(), proteus::ProteusError>(())
/// ```
pub struct Fleet {
    optimizer: Optimizer,
    config: FleetConfig,
    replicas: Vec<Replica>,
    /// Consistent-hash ring: `(point, replica)` sorted by point.
    ring: Vec<(u64, usize)>,
    served: AtomicUsize,
    redispatches: AtomicUsize,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.replicas.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Spawns `config.replicas` warm runtimes sharing one optimizer
    /// profile.
    ///
    /// # Errors
    /// [`ProteusError::Config`] for a degenerate config,
    /// [`ProteusError::ReplicaUnavailable`] when a replica's threads
    /// cannot be spawned.
    pub fn new(optimizer: Optimizer, config: FleetConfig) -> Result<Fleet, ProteusError> {
        Fleet::with_replica_faults(optimizer, config, &[])
    }

    /// [`Fleet::new`] with per-replica fault plans: `faults[i]` arms
    /// replica `i` (replicas beyond the slice get `config.serve.faults`).
    /// This is how chaos tests fault one replica while its peers stay
    /// healthy.
    ///
    /// # Errors
    /// As [`Fleet::new`].
    pub fn with_replica_faults(
        optimizer: Optimizer,
        config: FleetConfig,
        faults: &[FaultPlan],
    ) -> Result<Fleet, ProteusError> {
        config.validate()?;
        let mut replicas = Vec::with_capacity(config.replicas);
        for index in 0..config.replicas {
            let mut serve = config.serve;
            serve.replica_label = index;
            if let Some(plan) = faults.get(index) {
                serve.faults = *plan;
            }
            let runtime = Arc::new(ServeRuntime::new(optimizer.clone(), serve)?);
            replicas.push(Replica {
                runtime: Mutex::new(Some(runtime)),
                config: Mutex::new(serve),
                state: AtomicU8::new(STATE_UP),
                inflight: AtomicUsize::new(0),
                served: AtomicUsize::new(0),
                failures: AtomicUsize::new(0),
                respawns: AtomicUsize::new(0),
            });
        }
        let mut ring: Vec<(u64, usize)> = (0..config.replicas)
            .flat_map(|replica| {
                (0..config.virtual_nodes).map(move |v| {
                    let point = splitmix64(
                        0xF1EE7
                            ^ ((replica as u64) << 32)
                            ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    (point, replica)
                })
            })
            .collect();
        ring.sort_unstable();
        Ok(Fleet {
            optimizer,
            config,
            replicas,
            ring,
            served: AtomicUsize::new(0),
            redispatches: AtomicUsize::new(0),
        })
    }

    /// The fleet's configuration.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Number of replica slots (up or not).
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A replica's lifecycle state.
    ///
    /// # Errors
    /// [`ProteusError::Config`] for an out-of-range index.
    pub fn replica_state(&self, index: usize) -> Result<ReplicaState, ProteusError> {
        Ok(self.replica(index)?.state())
    }

    fn replica(&self, index: usize) -> Result<&Replica, ProteusError> {
        self.replicas.get(index).ok_or_else(|| {
            ProteusError::config(format!(
                "replica index {index} out of range (fleet has {})",
                self.replicas.len()
            ))
        })
    }

    /// All replicas in this request's ring preference order: the walk
    /// starts at `splitmix64(request_id)` and records each replica the
    /// first time one of its ring points appears. Deterministic per
    /// request id, independent of replica health.
    pub fn route_order(&self, request_id: u64) -> Vec<usize> {
        let start = splitmix64(request_id);
        let begin = self.ring.partition_point(|&(point, _)| point < start);
        let mut order = Vec::with_capacity(self.replicas.len());
        let mut seen = HashSet::new();
        for i in 0..self.ring.len() {
            let (_, replica) = self.ring[(begin + i) % self.ring.len()];
            if seen.insert(replica) {
                order.push(replica);
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }

    /// The replica a request routes to right now: the first replica in
    /// ring order that is [`ReplicaState::Up`]. `None` when the whole
    /// fleet is down.
    pub fn route(&self, request_id: u64) -> Option<usize> {
        self.route_order(request_id)
            .into_iter()
            .find(|&r| self.replicas[r].state() == ReplicaState::Up)
    }

    /// Opens a frame-level lane for `request_id` on the replica the
    /// consistent-hash ring routes it to right now (first [`ReplicaState::Up`]
    /// replica in ring order) — the entry point a network front-end uses
    /// to stream externally-produced frames into the fleet without
    /// owning the model. Unlike [`Fleet::serve_request`], the lane does
    /// no re-dispatch: a replica failure surfaces on the handle as a
    /// typed error and the caller decides whether to reopen a lane.
    ///
    /// # Errors
    /// [`ProteusError::ReplicaUnavailable`] when no replica is up.
    pub fn lane(&self, request_id: u64) -> Result<RequestHandle, ProteusError> {
        for index in self.route_order(request_id) {
            let replica = &self.replicas[index];
            if replica.state() != ReplicaState::Up {
                continue;
            }
            if let Some(runtime) = relock(&replica.runtime).as_ref() {
                return Ok(runtime.handle(request_id));
            }
        }
        Err(ProteusError::ReplicaUnavailable {
            replica: usize::MAX,
            detail: format!("no healthy replica to open a lane for request {request_id}"),
        })
    }

    /// Point-in-time fleet counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            replicas: self
                .replicas
                .iter()
                .enumerate()
                .map(|(index, r)| {
                    let runtime = relock(&r.runtime).clone();
                    ReplicaStatus {
                        index,
                        state: r.state(),
                        inflight: r.inflight.load(Ordering::SeqCst),
                        served: r.served.load(Ordering::SeqCst),
                        failures: r.failures.load(Ordering::SeqCst),
                        respawns: r.respawns.load(Ordering::SeqCst),
                        queue_depth: runtime.as_ref().map_or(0, |rt| rt.queue_depth()),
                        serve: runtime.as_ref().map(|rt| rt.stats()),
                    }
                })
                .collect(),
            served: self.served.load(Ordering::SeqCst),
            redispatches: self.redispatches.load(Ordering::SeqCst),
        }
    }

    /// Stops routing to replica `index`, waits for its in-flight
    /// requests to complete, then drops its runtime (which drains queued
    /// tasks and joins the workers). The replica ends [`ReplicaState::Down`];
    /// bring it back with [`Fleet::respawn`].
    ///
    /// # Errors
    /// [`ProteusError::Config`] for an out-of-range index;
    /// [`ProteusError::Protocol`] if in-flight requests have not finished
    /// within 30 seconds (the replica is left draining).
    pub fn drain(&self, index: usize) -> Result<(), ProteusError> {
        let replica = self.replica(index)?;
        replica.set_state(ReplicaState::Draining);
        let deadline = Instant::now() + Duration::from_secs(30);
        while replica.inflight.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return Err(ProteusError::protocol(format!(
                    "drain of replica {index} timed out with requests still in flight"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let runtime = relock(&replica.runtime).take();
        drop(runtime); // ServeRuntime::drop drains queues and joins workers
        replica.set_state(ReplicaState::Down);
        Ok(())
    }

    /// Builds a fresh runtime in slot `index` (with the replica's current
    /// config) and marks it [`ReplicaState::Up`].
    ///
    /// # Errors
    /// [`ProteusError::Config`] for an out-of-range index, plus anything
    /// [`ServeRuntime::new`] rejects (the replica stays down).
    pub fn respawn(&self, index: usize) -> Result<(), ProteusError> {
        let replica = self.replica(index)?;
        let config = *relock(&replica.config);
        self.respawn_with(index, config)
    }

    /// [`Fleet::respawn`] with an explicit config for the new runtime
    /// (faults can be re-armed or cleared).
    ///
    /// # Errors
    /// As [`Fleet::respawn`].
    pub fn respawn_with(&self, index: usize, mut config: ServeConfig) -> Result<(), ProteusError> {
        let replica = self.replica(index)?;
        config.replica_label = index;
        let runtime = Arc::new(ServeRuntime::new(self.optimizer.clone(), config)?);
        *relock(&replica.config) = config;
        let old = relock(&replica.runtime).replace(runtime);
        drop(old);
        replica.respawns.fetch_add(1, Ordering::SeqCst);
        replica.set_state(ReplicaState::Up);
        Ok(())
    }

    /// Serves one request through the fleet. See
    /// [`Fleet::serve_request_traced`] for the dispatch trace.
    ///
    /// # Errors
    /// As [`Fleet::serve_request_traced`].
    pub fn serve_request(
        &self,
        proteus: &Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<(Graph, TensorMap), ProteusError> {
        self.serve_request_traced(proteus, graph, params, request_id)
            .map(|r| (r.graph, r.params))
    }

    /// Serves one request: route by consistent hash, dispatch, and on a
    /// retryable failure back off and re-dispatch to the next healthy
    /// replica — hard-asserting that buckets completed by different
    /// attempts are bit-identical (see the module docs for why that is
    /// an invariant).
    ///
    /// # Errors
    /// - [`ProteusError::Deadline`] — the end-to-end budget elapsed
    ///   (terminal, never retried);
    /// - [`ProteusError::RetriesExhausted`] — every allowed attempt
    ///   failed retryably; carries the last attempt's error;
    /// - [`ProteusError::ReplicaUnavailable`] — no replica was up to
    ///   dispatch to at all;
    /// - plus any non-retryable session/protocol error, surfaced as-is.
    pub fn serve_request_traced(
        &self,
        proteus: &Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<FleetResponse, ProteusError> {
        let started = Instant::now();
        let deadline = (self.config.deadline_ms > 0)
            .then(|| started + Duration::from_millis(self.config.deadline_ms));
        let order = self.route_order(request_id);
        let max_attempts = self.config.max_retries.saturating_add(1);
        // bytes of every bucket completed by any attempt: the re-dispatch
        // determinism witness
        let mut witnessed: HashMap<u32, Bytes> = HashMap::new();
        let mut excluded: HashSet<usize> = HashSet::new();
        let mut replicas_tried = Vec::new();
        let mut backoff_ns = 0u64;
        let mut last_err = None;
        for attempt in 1..=max_attempts {
            let target = match self.pick(&order, &excluded) {
                Some(t) => t,
                None if !excluded.is_empty() => {
                    // every replica has failed this request once; retry
                    // the full ring (one may have respawned meanwhile)
                    excluded.clear();
                    match self.pick(&order, &excluded) {
                        Some(t) => t,
                        None => break,
                    }
                }
                None => break,
            };
            replicas_tried.push(target);
            if attempt > 1 {
                self.redispatches.fetch_add(1, Ordering::SeqCst);
            }
            match self.dispatch(
                proteus,
                graph,
                params,
                request_id,
                target,
                started,
                deadline,
                &mut witnessed,
            ) {
                Ok((graph, params, mut phases)) => {
                    self.replicas[target].served.fetch_add(1, Ordering::SeqCst);
                    self.served.fetch_add(1, Ordering::SeqCst);
                    phases.backoff_ns = phases.backoff_ns.saturating_add(backoff_ns);
                    return Ok(FleetResponse {
                        graph,
                        params,
                        attempts: attempt,
                        replicas_tried,
                        phases,
                    });
                }
                Err(err) => {
                    self.note_failure(target, &err);
                    if !err.is_retryable() {
                        return Err(err);
                    }
                    excluded.insert(target);
                    last_err = Some(err);
                    if attempt < max_attempts {
                        // exponential backoff, capped and charged against
                        // the deadline
                        let exp = (attempt - 1).min(8);
                        let delay = Duration::from_millis(self.config.backoff_ms << exp);
                        if let Some(d) = deadline {
                            let now = Instant::now();
                            if now + delay >= d {
                                return Err(ProteusError::Deadline {
                                    request_id,
                                    elapsed_ms: started.elapsed().as_millis() as u64,
                                });
                            }
                        }
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                            backoff_ns = backoff_ns.saturating_add(delay.as_nanos() as u64);
                        }
                    }
                }
            }
        }
        match last_err {
            Some(last) => Err(ProteusError::RetriesExhausted {
                request_id,
                attempts: replicas_tried.len() as u32,
                last: Box::new(last),
            }),
            // no attempt was even possible: the fleet has no up replica
            None => Err(ProteusError::ReplicaUnavailable {
                replica: order.first().copied().unwrap_or(0),
                detail: "no healthy replica to dispatch to".into(),
            }),
        }
    }

    /// First replica in `order` that is up and not excluded this request.
    fn pick(&self, order: &[usize], excluded: &HashSet<usize>) -> Option<usize> {
        order
            .iter()
            .copied()
            .find(|&r| !excluded.contains(&r) && self.replicas[r].state() == ReplicaState::Up)
    }

    /// Accounts a failed dispatch and (for replica-level loss) downs and
    /// optionally auto-respawns the replica with its faults cleared.
    fn note_failure(&self, target: usize, err: &ProteusError) {
        let replica = &self.replicas[target];
        replica.failures.fetch_add(1, Ordering::SeqCst);
        if let ProteusError::ReplicaUnavailable { .. } = err {
            replica.set_state(ReplicaState::Down);
            let dead = relock(&replica.runtime).take();
            drop(dead); // joins the killed runtime's threads
            if self.config.auto_respawn {
                let mut config = *relock(&replica.config);
                // fresh-process semantics: the injected fault killed the
                // old process; its replacement does not inherit the plan
                config.faults = FaultPlan::default();
                let _ = self.respawn_with(target, config);
            }
        }
    }

    /// One dispatch attempt against one replica: stream the session's
    /// frames in (deadline-aware), collect optimized frames, witness
    /// their bytes for the determinism assert, reassemble.
    #[allow(clippy::too_many_arguments)] // internal; splitting a param struct would obscure the flow
    fn dispatch(
        &self,
        proteus: &Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
        target: usize,
        started: Instant,
        deadline: Option<Instant>,
        witnessed: &mut HashMap<u32, Bytes>,
    ) -> Result<(Graph, TensorMap, PhaseBreakdown), ProteusError> {
        let replica = self.replica(target)?;
        let runtime =
            relock(&replica.runtime)
                .clone()
                .ok_or_else(|| ProteusError::ReplicaUnavailable {
                    replica: target,
                    detail: "replica slot is empty (down)".into(),
                })?;
        replica.inflight.fetch_add(1, Ordering::SeqCst);
        let _inflight = InflightGuard(replica);

        let mut session = proteus.obfuscate_session(graph, params, request_id)?;
        let num_buckets = session.num_buckets();
        let handle = runtime.handle(request_id);
        let mut completed: Vec<SealedBucket> = Vec::with_capacity(num_buckets);
        while let Some(frame) = session.next_frame() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(ProteusError::Deadline {
                        request_id,
                        elapsed_ms: started.elapsed().as_millis() as u64,
                    });
                }
                handle.submit_deadline(frame, d)?;
            } else {
                handle.submit(frame)?;
            }
            while let Some(done) = handle.try_recv() {
                witness(witnessed, request_id, &done);
                completed.push(done);
            }
        }
        let owner_phases = session.phases();
        let secrets = session.finish()?;
        while completed.len() < num_buckets {
            let done = match deadline {
                Some(d) => handle.recv_deadline(d)?,
                None => handle.recv()?,
            };
            witness(witnessed, request_id, &done);
            completed.push(done);
        }
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for frame in completed {
            reassembly.accept(frame)?;
        }
        let (out_graph, out_params) = reassembly.finish()?;
        let phases = owner_phases.merged(handle.phases());
        Ok((out_graph, out_params, phases))
    }
}

/// The re-dispatch determinism hard-assert: a bucket completed by this
/// attempt must be byte-identical to the same bucket completed by any
/// earlier attempt on any replica. A violation means request-id-keyed
/// determinism — the property the whole retry design rests on — is
/// broken, so this panics rather than returning an error.
fn witness(witnessed: &mut HashMap<u32, Bytes>, request_id: u64, frame: &SealedBucket) {
    let bytes = frame.to_bytes();
    match witnessed.get(&frame.bucket_index) {
        Some(prev) => assert_eq!(
            *prev, bytes,
            "determinism violation: request {request_id:#x} bucket {} produced \
             different bytes on re-dispatch",
            frame.bucket_index
        ),
        None => {
            witnessed.insert(frame.bucket_index, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::config::{PartitionSpec, ProteusConfig};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use proteus_opt::Profile;

    fn quick_proteus() -> Proteus {
        Proteus::train(
            ProteusConfig {
                k: 2,
                partitions: PartitionSpec::Count(2),
                graphrnn: GraphRnnConfig {
                    epochs: 2,
                    max_nodes: 20,
                    ..Default::default()
                },
                topology_pool: 30,
                ..Default::default()
            },
            &[build(ModelKind::ResNet)],
        )
    }

    fn quick_fleet(replicas: usize) -> Fleet {
        Fleet::new(
            Optimizer::new(Profile::OrtLike),
            FleetConfig {
                replicas,
                serve: ServeConfig {
                    workers: 1,
                    window: 4,
                    cache_capacity: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("fleet starts")
    }

    #[test]
    fn config_validation_rejects_degenerate_fleets() {
        let err = FleetConfig {
            replicas: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");
        let err = FleetConfig {
            virtual_nodes: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, ProteusError::Config { .. }), "{err:?}");
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_replicas() {
        let fleet = quick_fleet(3);
        for rid in 0..50u64 {
            let a = fleet.route_order(rid);
            let b = fleet.route_order(rid);
            assert_eq!(a, b, "route order must be a pure function of rid");
            assert_eq!(a.len(), 3, "order visits every replica");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
        // the ring spreads keys: over many ids, every replica is primary
        // for some of them
        let mut primaries = HashSet::new();
        for rid in 0..200u64 {
            primaries.insert(fleet.route(rid).expect("fleet up"));
        }
        assert_eq!(primaries.len(), 3, "every replica owns some keyspace");
    }

    #[test]
    fn router_skips_non_up_replicas_without_remapping_everything() {
        let fleet = quick_fleet(3);
        // find a rid primary-routed to replica 0 and one routed elsewhere
        let rid_on_0 = (0..500u64)
            .find(|&rid| fleet.route(rid) == Some(0))
            .expect("some rid routes to 0");
        let rid_elsewhere = (0..500u64)
            .find(|&rid| fleet.route(rid).is_some_and(|r| r != 0))
            .expect("some rid routes elsewhere");
        let elsewhere_before = fleet.route(rid_elsewhere);
        fleet.drain(0).expect("drain idle replica");
        assert_eq!(fleet.replica_state(0).unwrap(), ReplicaState::Down);
        let rerouted = fleet.route(rid_on_0).expect("fleet still up");
        assert_ne!(rerouted, 0, "downed replica must be skipped");
        assert_eq!(
            fleet.route(rid_elsewhere),
            elsewhere_before,
            "keys not owned by the downed replica keep their primary"
        );
        fleet.respawn(0).expect("respawn");
        assert_eq!(fleet.replica_state(0).unwrap(), ReplicaState::Up);
        assert_eq!(fleet.route(rid_on_0), Some(0), "ownership returns");
    }

    #[test]
    fn fleet_serves_bit_identically_to_a_single_runtime() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let fleet = quick_fleet(2);
        let standalone = ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig {
                workers: 1,
                window: 4,
                cache_capacity: 0,
                ..Default::default()
            },
        )
        .expect("runtime");
        for rid in [3u64, 17, 90] {
            let got = fleet
                .serve_request_traced(&proteus, &g, &TensorMap::new(), rid)
                .expect("fleet serves");
            assert_eq!(got.attempts, 1);
            let (want_g, want_p) = standalone
                .serve_request(&proteus, &g, &TensorMap::new(), rid)
                .expect("standalone serves");
            assert_eq!(got.graph, want_g, "request {rid}: fleet diverged");
            assert_eq!(got.params, want_p);
        }
        let stats = fleet.stats();
        assert_eq!(stats.served, 3);
        assert_eq!(stats.redispatches, 0);
    }
}
