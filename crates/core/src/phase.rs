//! Per-request phase instrumentation: where a serving request's time goes.
//!
//! The serve-latency work splits a request's wall time into four disjoint
//! phases so the warm-inventory and optimized-cache wins are *measured*,
//! not asserted:
//!
//! - **generation** — sentinel topology sampling, orientation, operator
//!   population, anonymization and shuffling inside
//!   [`crate::ObfuscationSession::next_frame`], *excluding* the semantic
//!   scoring below;
//! - **semantic-check** — the bigram log-likelihood scoring pass inside
//!   [`crate::operators::populate`] (Algorithm 2's filter step), tracked
//!   separately because it dominates population on large assignment sets;
//! - **optimization** — worker-pool time spent in the optimizer on this
//!   request's members ([`crate::serve::RequestHandle`]);
//! - **wire** — encoding/decoding multiplexed frames on the handle's
//!   byte-stream entry points.
//!
//! Semantic time is accumulated in a thread-local counter because the
//! scoring happens several layers below the session (inside `populate`),
//! and threading a timer through every call signature would put a
//! measurement concern in the protocol API. The session reads the counter
//! before and after generating a bucket; the delta is that bucket's
//! semantic share, and generation time is reported net of it, keeping the
//! phases disjoint.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static SEMANTIC_NS: Cell<u64> = const { Cell::new(0) };
}

/// Nanoseconds of semantic-check (bigram scoring) time accumulated on the
/// *current thread* since it started. Monotonic; callers measure deltas.
pub fn semantic_ns() -> u64 {
    SEMANTIC_NS.with(|c| c.get())
}

/// Runs `f`, adding its wall time to the current thread's semantic-check
/// counter.
pub(crate) fn time_semantic<T>(f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed().as_nanos() as u64;
    SEMANTIC_NS.with(|c| c.set(c.get().saturating_add(elapsed)));
    out
}

/// A per-request phase breakdown in nanoseconds. Phases are disjoint:
/// `generation_ns` excludes the semantic share measured inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Sentinel generation (sampling, population, sealing), net of the
    /// semantic-check share.
    pub generation_ns: u64,
    /// Bigram semantic scoring inside operator population.
    pub semantic_ns: u64,
    /// Optimizer time spent on this request's members in the worker pool.
    pub optimization_ns: u64,
    /// Wire encode/decode time on the request's byte-stream entry points.
    pub wire_ns: u64,
    /// Time spent backing off between fleet re-dispatch attempts
    /// ([`crate::fleet::Fleet::serve_request`]). Zero for requests served
    /// on the first attempt — a nonzero value is the latency cost of the
    /// chaos the request survived.
    pub backoff_ns: u64,
}

impl PhaseBreakdown {
    /// Sums two breakdowns phase by phase (e.g. the owner-side session's
    /// phases plus the optimizer-side handle's phases of one request).
    pub fn merged(self, other: PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            generation_ns: self.generation_ns.saturating_add(other.generation_ns),
            semantic_ns: self.semantic_ns.saturating_add(other.semantic_ns),
            optimization_ns: self.optimization_ns.saturating_add(other.optimization_ns),
            wire_ns: self.wire_ns.saturating_add(other.wire_ns),
            backoff_ns: self.backoff_ns.saturating_add(other.backoff_ns),
        }
    }

    /// Total instrumented time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.generation_ns
            .saturating_add(self.semantic_ns)
            .saturating_add(self.optimization_ns)
            .saturating_add(self.wire_ns)
            .saturating_add(self.backoff_ns)
    }

    /// A phase value in milliseconds (for reporting).
    pub fn ms(ns: u64) -> f64 {
        ns as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_counter_accumulates_on_this_thread() {
        let before = semantic_ns();
        let out = time_semantic(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        let delta = semantic_ns() - before;
        assert!(delta >= 1_000_000, "measured only {delta}ns");
        // other threads' counters are independent
        let other = std::thread::spawn(semantic_ns).join().unwrap();
        assert_eq!(other, 0);
    }

    #[test]
    fn breakdown_merges_and_totals() {
        let a = PhaseBreakdown {
            generation_ns: 10,
            semantic_ns: 20,
            optimization_ns: 0,
            wire_ns: 1,
            backoff_ns: 0,
        };
        let b = PhaseBreakdown {
            optimization_ns: 5,
            wire_ns: 4,
            backoff_ns: 3,
            ..Default::default()
        };
        let m = a.merged(b);
        assert_eq!(m.generation_ns, 10);
        assert_eq!(m.optimization_ns, 5);
        assert_eq!(m.wire_ns, 5);
        assert_eq!(m.backoff_ns, 3);
        assert_eq!(m.total_ns(), 43);
        assert!((PhaseBreakdown::ms(2_000_000) - 2.0).abs() < 1e-9);
    }
}
