//! The random-opcode baseline (paper §5.3.2, "Datasets" item 1).
//!
//! Same GraphRNN topologies as real Proteus sentinels, but operators drawn
//! uniformly at random with no syntactic or semantic constraints. The paper
//! uses this baseline to show that naive sentinel generation collapses the
//! adversary's search space — often to a single candidate — whereas full
//! Proteus does not (Figure 6's "Random Opcodes" columns).

use proteus_graph::{
    Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Graph, LayerNormAttrs, NodeId, Op, PoolAttrs,
    Shape,
};
use proteus_graphgen::{induce_orientation, TopologySampler, UGraph};
use rand::rngs::StdRng;
use rand::Rng;

/// Draws a uniformly random operator with arbitrary attributes — no arity
/// or shape discipline whatsoever.
fn random_op(rng: &mut StdRng) -> Op {
    let channels = [8usize, 16, 32, 64, 128][rng.gen_range(0..5usize)];
    let out_channels = [8usize, 16, 32, 64, 128][rng.gen_range(0..5usize)];
    match rng.gen_range(0..18) {
        0 => Op::Conv(ConvAttrs::new(
            channels,
            out_channels,
            [1, 3, 5][rng.gen_range(0..3usize)],
        )),
        1 => Op::Gemm(GemmAttrs::new(channels, out_channels)),
        2 => Op::MatMul,
        3 => Op::BatchNorm(BatchNormAttrs { channels }),
        4 => Op::LayerNorm(LayerNormAttrs { dim: channels }),
        5 => Op::Activation(Activation::ALL[rng.gen_range(0..Activation::ALL.len())]),
        6 => Op::Softmax { axis: 1 },
        7 => Op::Add,
        8 => Op::Sub,
        9 => Op::Mul,
        10 => Op::Div,
        11 => Op::MaxPool(PoolAttrs::new(3, 1, 1)),
        12 => Op::AveragePool(PoolAttrs::new(3, 1, 1)),
        13 => Op::GlobalAveragePool,
        14 => Op::Concat { axis: 1 },
        15 => Op::Flatten,
        16 => Op::Dropout {
            p: rng.gen_range(10..60),
        },
        _ => Op::Identity,
    }
}

/// Populates one topology with uniformly random opcodes.
///
/// The result is intentionally *not* guaranteed to pass [`Graph::validate`]
/// — that is the point of the baseline: arity and shape violations are the
/// signal a learning-based adversary exploits.
pub fn random_opcode_graph(topology: &UGraph, rng: &mut StdRng) -> Graph {
    let dag = induce_orientation(topology);
    let preds = dag.preds();
    let topo = dag.topo_order();
    let mut g = Graph::new("baseline-sentinel");
    let mut ids: Vec<Option<NodeId>> = vec![None; dag.len()];
    for &i in &topo {
        let inputs: Vec<NodeId> = preds[i].iter().map(|&p| ids[p].expect("topo")).collect();
        let op = if inputs.is_empty() {
            // even the baseline needs sources to look like sources
            if rng.gen_bool(0.7) {
                Op::Input {
                    shape: Shape::from([1, 64, 16, 16]),
                }
            } else {
                Op::Constant {
                    shape: Shape::from([1, 64, 16, 16]),
                }
            }
        } else {
            random_op(rng)
        };
        ids[i] = Some(g.add(op, inputs));
    }
    let succs = dag.succs();
    let outs: Vec<NodeId> = (0..dag.len())
        .filter(|&i| succs[i].is_empty())
        .map(|i| ids[i].expect("assigned"))
        .collect();
    g.set_outputs(outs);
    g
}

/// Generates `k` random-opcode sentinels with topologies similar to the
/// protected subgraph (same Algorithm 1 band as real Proteus).
pub fn random_opcode_sentinels(
    protected: &Graph,
    k: usize,
    sampler: &TopologySampler,
    beta: f64,
    rng: &mut StdRng,
) -> Vec<Graph> {
    let topo = UGraph::from_graph(protected);
    sampler
        .sample_similar(&topo, beta, k, rng)
        .iter()
        .map(|t| random_opcode_graph(t, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain_topology(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn baseline_graphs_cover_topology() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = chain_topology(10);
        let g = random_opcode_graph(&t, &mut rng);
        assert_eq!(g.len(), 10);
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn baseline_frequently_violates_arity() {
        // On branchy topologies, random opcodes routinely put unary ops on
        // multi-input nodes — the tell the adversary learns.
        let mut topo = chain_topology(12);
        for i in 3..10 {
            topo.add_edge(0, i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let violations = (0..30)
            .filter(|_| {
                let g = random_opcode_graph(&topo, &mut rng);
                g.validate().is_err()
            })
            .count();
        assert!(violations > 10, "only {violations}/30 invalid");
    }

    #[test]
    fn sentinel_count_respected() {
        let pool: Vec<UGraph> = (5..20).map(chain_topology).collect();
        let sampler = TopologySampler::new(pool);
        let mut rng = StdRng::seed_from_u64(3);
        let mut protected = Graph::new("p");
        let mut prev = protected.input([1, 8]);
        for _ in 0..9 {
            prev = protected.add(Op::Identity, [prev]);
        }
        protected.set_outputs([prev]);
        let sentinels = random_opcode_sentinels(&protected, 7, &sampler, 2.0, &mut rng);
        assert_eq!(sentinels.len(), 7);
    }
}
