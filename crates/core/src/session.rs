//! Streaming obfuscation/de-obfuscation sessions — the service-shaped
//! protocol surface.
//!
//! The paper's protocol (Figure 1) is two services talking across a trust
//! boundary, and at service scale the interesting unit of work is the
//! *bucket*, not the whole model: an [`ObfuscationSession`] yields one
//! [`SealedBucket`] frame at a time, so the optimizer party can pipeline —
//! optimizing bucket *i* while the owner is still generating bucket
//! *i + 1* — and a [`DeobfuscationSession`] accepts optimized frames back
//! in any order, reassembling once every bucket has returned.
//!
//! # Per-request determinism
//!
//! A trained [`Proteus`] is immutable and can be shared (e.g. via
//! [`std::sync::Arc`]) across concurrent requests. Each session derives
//! its own seed from the master seed and the caller's `request_id` with a
//! splitmix64 finalizer ([`derive_request_seed`]), and every sentinel's
//! parameter stream gets a further per-(bucket, member) derivation
//! ([`derive_member_seed`], injective over bucket/member indices below
//! 2³²). The same `request_id` therefore yields byte-identical frames
//! across runs, while distinct requests — and distinct sentinels within a
//! bucket — share no seed.
//!
//! The legacy one-shot [`Proteus::obfuscate`] / [`Proteus::deobfuscate`]
//! functions are thin wrappers over these sessions using
//! [`LEGACY_REQUEST_ID`]; the parity tests prove the wrapper output is
//! bit-identical to a hand-driven session.

use crate::bucket::{anonymize_content, Bucket, BucketMember, ObfuscationSecrets, SealedBucket};
use crate::error::ProteusError;
use crate::phase::{self, PhaseBreakdown};
use crate::pipeline::Proteus;
use bytes::Bytes;
use proteus_graph::{Graph, TensorMap};
use proteus_partition::{partition_balanced, PartitionPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The `request_id` the legacy one-shot [`Proteus::obfuscate`] /
/// [`Proteus::deobfuscate`] wrappers use. Calling
/// [`Proteus::obfuscate_session`] with this id reproduces the wrapper
/// output bit for bit.
pub const LEGACY_REQUEST_ID: u64 = 0;

/// The splitmix64 finalizer: a bijective avalanche over `u64`. Every seed
/// in the session API derives through this, so neighboring inputs
/// (consecutive request ids, consecutive bucket/member indices) land on
/// uncorrelated seeds.
pub fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-request seed: splitmix over `master_seed ⊕ request_id`. Injective
/// in `request_id` for a fixed master seed (xor then a bijection), so no
/// two requests of one deployment share a randomness stream.
pub fn derive_request_seed(master_seed: u64, request_id: u64) -> u64 {
    splitmix64(master_seed ^ request_id)
}

/// Per-sentinel parameter seed, mixing the bucket *and* member index
/// through splitmix64. Injective over `(bucket, member)` pairs below 2³²
/// for a fixed request seed, so sentinel parameter streams are
/// pairwise-distinct by construction — two sentinels never share a
/// parameter initialization, even when the generator samples them the
/// same topology. (The seed's `seed ^ (i << 8)` derivation mixed neither
/// the member index nor bucket 0, so every sentinel in a bucket drew the
/// same stream.)
pub fn derive_member_seed(request_seed: u64, bucket: usize, member: usize) -> u64 {
    splitmix64(request_seed ^ splitmix64(((bucket as u64) << 32) | member as u64))
}

/// An in-flight obfuscation request: partitioned up front, sentinels
/// generated lazily, one sealed bucket per [`next_frame`] call.
///
/// Yields frames in bucket order (the sentinel generator's randomness
/// stream is sequential), then [`finish`] releases the owner's
/// [`ObfuscationSecrets`]. Also an [`Iterator`] over [`SealedBucket`].
///
/// [`next_frame`]: ObfuscationSession::next_frame
/// [`finish`]: ObfuscationSession::finish
#[derive(Debug)]
pub struct ObfuscationSession<'p> {
    proteus: &'p Proteus,
    request_id: u64,
    request_seed: u64,
    rng: StdRng,
    plan: PartitionPlan,
    real_positions: Vec<usize>,
    emitted: usize,
    phases: PhaseBreakdown,
}

impl<'p> ObfuscationSession<'p> {
    pub(crate) fn new(
        proteus: &'p Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<ObfuscationSession<'p>, ProteusError> {
        let config = proteus.config();
        config.validate()?;
        graph.validate()?;
        let request_seed = derive_request_seed(config.seed, request_id);
        let n = config.num_partitions(graph.len());
        let assignment = partition_balanced(graph, n, config.partition_restarts, request_seed);
        let plan = PartitionPlan::extract(graph, params, &assignment)
            .map_err(|e| ProteusError::partition(e.to_string()))?;
        let buckets = plan.pieces.len();
        Ok(ObfuscationSession {
            proteus,
            request_id,
            request_seed,
            rng: StdRng::seed_from_u64(request_seed),
            plan,
            real_positions: Vec::with_capacity(buckets),
            emitted: 0,
            phases: PhaseBreakdown::default(),
        })
    }

    /// The owner-side phase breakdown accumulated so far: generation time
    /// (net of semantic scoring) and the semantic-scoring share of every
    /// frame emitted by this session.
    pub fn phases(&self) -> PhaseBreakdown {
        self.phases
    }

    /// The caller-supplied request id this session is keyed by.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The derived per-request seed (exposed for auditing/evaluation).
    pub fn request_seed(&self) -> u64 {
        self.request_seed
    }

    /// `n` — how many buckets this session will emit in total.
    pub fn num_buckets(&self) -> usize {
        self.plan.pieces.len()
    }

    /// Frames not yet emitted.
    pub fn remaining(&self) -> usize {
        self.plan.pieces.len() - self.emitted
    }

    /// Generates and seals the next bucket: the real piece hidden among
    /// `k` freshly generated sentinels, anonymized and shuffled. Returns
    /// `None` once every bucket has been emitted.
    pub fn next_frame(&mut self) -> Option<SealedBucket> {
        let i = self.emitted;
        let piece = self.plan.pieces.get(i)?;
        let config = self.proteus.config();
        let frame_start = std::time::Instant::now();
        let semantic_before = phase::semantic_ns();
        let sentinels = self.proteus.factory().generate_with(
            &piece.graph,
            config.k,
            config.mode,
            &mut self.rng,
            Some(self.proteus.inventory()),
        );
        let mut members: Vec<BucketMember> = Vec::with_capacity(sentinels.len() + 1);
        members.push(BucketMember {
            graph: piece.graph.clone(),
            params: piece.params.clone(),
        });
        for (j, s) in sentinels.into_iter().enumerate() {
            // sentinels carry plausible random parameters so that the
            // presence/absence of weights does not mark the real piece;
            // each member draws its own derived stream
            let sp = if piece.params.is_empty() {
                TensorMap::new()
            } else {
                TensorMap::init_random(&s, derive_member_seed(self.request_seed, i, j + 1))
            };
            members.push(BucketMember {
                graph: s,
                params: sp,
            });
        }
        // Shuffle via an explicit permutation: `order[dst] = src`. The
        // inverse permutation is total by construction, so locating the
        // real member (source index 0) has no failure path.
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.shuffle(&mut self.rng);
        let mut inverse = vec![0usize; order.len()];
        for (dst, &src) in order.iter().enumerate() {
            inverse[src] = dst;
        }
        let real_at = inverse[0];
        let mut slots: Vec<Option<BucketMember>> = (0..order.len()).map(|_| None).collect();
        for (src, m) in members.into_iter().enumerate() {
            slots[inverse[src]] = Some(m);
        }
        let mut shuffled: Vec<BucketMember> = slots.into_iter().flatten().collect();
        debug_assert_eq!(shuffled.len(), order.len(), "inverse is a permutation");
        for m in shuffled.iter_mut() {
            m.graph = anonymize_content(&m.graph);
        }
        self.real_positions.push(real_at);
        self.emitted += 1;
        // phases are disjoint: the semantic share measured inside populate
        // is subtracted from the frame's wall time
        let semantic_delta = phase::semantic_ns().saturating_sub(semantic_before);
        let frame_ns = frame_start.elapsed().as_nanos() as u64;
        self.phases.semantic_ns = self.phases.semantic_ns.saturating_add(semantic_delta);
        self.phases.generation_ns = self
            .phases
            .generation_ns
            .saturating_add(frame_ns.saturating_sub(semantic_delta));
        Some(SealedBucket {
            bucket_index: i as u32,
            num_buckets: self.plan.pieces.len() as u32,
            bucket: Bucket { members: shuffled },
        })
    }

    /// Releases the owner's secrets once every frame has been emitted.
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] if frames are still pending — secrets
    /// for a half-generated model would let reassembly silently drop
    /// pieces.
    pub fn finish(self) -> Result<ObfuscationSecrets, ProteusError> {
        if self.emitted < self.plan.pieces.len() {
            return Err(ProteusError::protocol(format!(
                "secrets requested with {} of {} frames still pending",
                self.plan.pieces.len() - self.emitted,
                self.plan.pieces.len()
            )));
        }
        Ok(ObfuscationSecrets {
            request_id: self.request_id,
            plan: self.plan,
            real_positions: self.real_positions,
        })
    }
}

impl Iterator for ObfuscationSession<'_> {
    type Item = SealedBucket;

    fn next(&mut self) -> Option<SealedBucket> {
        self.next_frame()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for ObfuscationSession<'_> {}

/// The owner's reassembly endpoint: accepts optimized [`SealedBucket`]
/// frames in any order, reassembles once complete.
///
/// Only the real member of each accepted frame is retained (the session
/// holds the secrets, so it can discard the `k` sentinels on arrival) —
/// memory stays proportional to the protected model, not the obfuscated
/// one.
#[derive(Debug)]
pub struct DeobfuscationSession<'s> {
    secrets: &'s ObfuscationSecrets,
    slots: Vec<Option<BucketMember>>,
    received: usize,
}

impl<'s> DeobfuscationSession<'s> {
    /// Starts a reassembly session against the secrets of the matching
    /// obfuscation session.
    pub fn new(secrets: &'s ObfuscationSecrets) -> DeobfuscationSession<'s> {
        let n = secrets.plan.pieces.len();
        DeobfuscationSession {
            secrets,
            slots: vec![None; n],
            received: 0,
        }
    }

    /// Rebuilds a session from checkpointed state: the secrets plus the
    /// raw wire frames accepted before the interruption (e.g. the frames
    /// a [`crate::store::Store`] journaled for this request). Each frame
    /// is re-accepted through the normal validation path, so a journal
    /// that was tampered with or truncated mid-frame fails typed instead
    /// of resuming silently wrong.
    ///
    /// Request-id-keyed determinism makes the resumed run exactly
    /// assertable: accepting the remaining frames and calling
    /// [`DeobfuscationSession::finish`] yields bytes identical to an
    /// uninterrupted session.
    ///
    /// # Errors
    /// Everything [`DeobfuscationSession::accept_bytes`] rejects —
    /// decode failures, duplicates, out-of-range frames.
    pub fn resume(
        secrets: &'s ObfuscationSecrets,
        frames: &[Bytes],
    ) -> Result<DeobfuscationSession<'s>, ProteusError> {
        let mut session = DeobfuscationSession::new(secrets);
        for frame in frames {
            session.accept_bytes(frame.clone())?;
        }
        Ok(session)
    }

    /// Rebuilds a session from already-extracted members (the
    /// [`crate::store::SessionCheckpoint`] resume path).
    pub(crate) fn resume_from_slots(
        secrets: &'s ObfuscationSecrets,
        slots: Vec<Option<BucketMember>>,
    ) -> DeobfuscationSession<'s> {
        let received = slots.iter().filter(|s| s.is_some()).count();
        DeobfuscationSession {
            secrets,
            slots,
            received,
        }
    }

    /// Snapshots this session into a self-contained, serializable
    /// [`crate::store::SessionCheckpoint`]: the secrets plus every real
    /// member extracted so far. The session keeps running — checkpoints
    /// can be taken after every accepted frame.
    pub fn checkpoint(&self) -> crate::store::SessionCheckpoint {
        crate::store::SessionCheckpoint::from_parts(self.secrets.clone(), self.slots.clone())
    }

    /// `n` — how many frames this session expects in total.
    pub fn num_buckets(&self) -> usize {
        self.slots.len()
    }

    /// Frames accepted so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Frames still outstanding.
    pub fn missing(&self) -> usize {
        self.slots.len() - self.received
    }

    /// Whether every frame has arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Accepts one optimized frame. Frames may arrive in any order; the
    /// real member is extracted immediately and the sentinels dropped.
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] when the frame belongs to a different
    /// model (bucket count mismatch), is out of range, duplicates an
    /// already-accepted frame, or no longer holds the recorded real
    /// position.
    pub fn accept(&mut self, sealed: SealedBucket) -> Result<(), ProteusError> {
        let i = sealed.bucket_index as usize;
        let pos = self.check_frame(i, sealed.num_buckets)?;
        let members = sealed.bucket.members.len();
        let member = sealed.bucket.members.into_iter().nth(pos).ok_or_else(|| {
            ProteusError::protocol(format!(
                "real position {pos} out of range in {members}-member bucket {i}"
            ))
        })?;
        self.slots[i] = Some(member);
        self.received += 1;
        Ok(())
    }

    /// [`DeobfuscationSession::accept`] from a borrowed bucket — clones
    /// only the real member instead of taking the whole bucket. Backs the
    /// batch [`Proteus::deobfuscate`] wrapper.
    pub(crate) fn accept_ref(
        &mut self,
        bucket_index: u32,
        num_buckets: u32,
        bucket: &Bucket,
    ) -> Result<(), ProteusError> {
        let i = bucket_index as usize;
        let pos = self.check_frame(i, num_buckets)?;
        let member = bucket.members.get(pos).ok_or_else(|| {
            ProteusError::protocol(format!(
                "real position {pos} out of range in {}-member bucket {i}",
                bucket.members.len()
            ))
        })?;
        self.slots[i] = Some(member.clone());
        self.received += 1;
        Ok(())
    }

    /// Validates a frame's header against the session state and returns
    /// the recorded real position for its bucket.
    fn check_frame(&mut self, i: usize, num_buckets: u32) -> Result<usize, ProteusError> {
        let expected = self.slots.len();
        if num_buckets as usize != expected {
            return Err(ProteusError::protocol(format!(
                "frame claims a {num_buckets}-bucket model, session expects {expected}"
            )));
        }
        if i >= expected {
            return Err(ProteusError::protocol(format!(
                "bucket index {i} out of range for {expected}-bucket session"
            )));
        }
        if self.slots[i].is_some() {
            // never overwrite: the first accepted frame stays, the replay
            // is rejected with the dedicated variant
            return Err(ProteusError::DuplicateFrame {
                bucket_index: i as u32,
                request_id: self.secrets.request_id,
            });
        }
        self.secrets.real_positions.get(i).copied().ok_or_else(|| {
            ProteusError::protocol(format!("secrets record no real position for bucket {i}"))
        })
    }

    /// Decodes one frame from its wire bytes and accepts it.
    ///
    /// Accepts v1 and v2 frames alike but performs no request-id check —
    /// the single-stream path, where every frame on the connection belongs
    /// to this session by construction. On a shared (multiplexed) stream
    /// use [`DeobfuscationSession::accept_mux_bytes`].
    ///
    /// # Errors
    /// [`ProteusError::Wire`] on decode failure (unknown version,
    /// corrupted checksum, truncation), plus everything
    /// [`DeobfuscationSession::accept`] rejects.
    pub fn accept_bytes(&mut self, wire: Bytes) -> Result<(), ProteusError> {
        self.accept(SealedBucket::from_bytes(wire)?)
    }

    /// Decodes one multiplexed frame and accepts it after checking that
    /// its request id matches this session's secrets — frames injected
    /// from another request's stream are rejected before any of their
    /// content is taken, so multiplexed transports cannot leak data
    /// across requests. Legacy v1 frames decode to request id `0`
    /// ([`LEGACY_REQUEST_ID`]) and are accepted exactly when the secrets
    /// belong to that id.
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] on a request-id mismatch, plus
    /// everything [`DeobfuscationSession::accept_bytes`] rejects.
    pub fn accept_mux_bytes(&mut self, mut wire: Bytes) -> Result<(), ProteusError> {
        let (request_id, sealed) = SealedBucket::decode_mux_from(&mut wire)?;
        if !wire.is_empty() {
            return Err(ProteusError::Wire(proteus_graph::WireError::malformed(
                format!("{} trailing bytes after sealed bucket frame", wire.len()),
            )));
        }
        let expected = self.secrets.request_id;
        if request_id != expected {
            return Err(ProteusError::protocol(format!(
                "frame for request {request_id:#x} injected into the stream of request {expected:#x}"
            )));
        }
        self.accept(sealed)
    }

    /// Reassembles the protected model from the collected real pieces
    /// (paper §4.3).
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] when frames are missing;
    /// [`ProteusError::Graph`] when the optimized pieces' interfaces no
    /// longer match the plan.
    pub fn finish(self) -> Result<(Graph, TensorMap), ProteusError> {
        if !self.is_complete() {
            return Err(ProteusError::protocol(format!(
                "reassembly attempted with {} of {} frames missing",
                self.missing(),
                self.slots.len()
            )));
        }
        let mut pieces = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.into_iter().enumerate() {
            let member = slot.ok_or_else(|| {
                ProteusError::protocol(format!("bucket {i} vanished before reassembly"))
            })?;
            pieces.push((member.graph, member.params));
        }
        self.secrets.plan.reassemble(&pieces).map_err(Into::into)
    }
}
