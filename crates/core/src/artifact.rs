//! Persistent trained-state artifacts — train once, serve anywhere.
//!
//! [`ProteusBuilder::train`](crate::ProteusBuilder::train) is the expensive
//! step of the protocol: GraphRNN training, pool sampling, and bigram
//! fitting together dominate process start-up, and none of it depends on
//! the protected model. This module persists everything `train` produces
//! as one checksummed, versioned binary blob — the **`PRTA` artifact** —
//! so a serving process can cold-start from disk in milliseconds
//! ([`Proteus::load_artifact`]) instead of retraining, and a fleet can
//! share one vetted generator.
//!
//! # Format
//!
//! ```text
//! magic "PRTA" | artifact_version u16 | section_count u32 | sections…
//! ```
//!
//! Every section is one [`proteus_graph::wire`] v1 frame (magic `PRTB`,
//! wire version, section tag in the frame's index field, payload length,
//! FNV-1a checksum over header + payload), so section integrity rides on
//! the exact framing primitives the bucket protocol already proves out:
//! a single flipped byte anywhere in an artifact is rejected with a typed
//! error, never misparsed. The sections, in file order:
//!
//! | tag | section | payload |
//! |-----|---------|---------|
//! | 0 | [`SECTION_META`]      | config fingerprint, provenance string |
//! | 1 | [`SECTION_CONFIG`]    | canonical [`ProteusConfig`] encoding |
//! | 2 | [`SECTION_RNN`]       | GraphRNN weights, sorted by name |
//! | 3 | [`SECTION_POOL`]      | sentinel topology pool, adjacency-exact |
//! | 4 | [`SECTION_BIGRAM`]    | bigram counts/totals/alpha, bit-exact |
//! | 5 | [`SECTION_SENTINELS`] | warm sentinel inventory, key-sorted (v2) |
//!
//! Version 2 (current) adds the sentinel-inventory section — the warm
//! sentinels built by the serving runtime persist across restarts, so a
//! cold-started process begins with whatever inventory the saving process
//! had accumulated. Version 1 artifacts (five sections, no
//! `sentinel_variants` config field) still load; their inventory starts
//! empty and is rebuilt on demand, with identical wire output either way
//! (the inventory is pure memoization). See `docs/WIRE.md` for the
//! byte-by-byte layout.
//!
//! # Determinism contract
//!
//! A [`Proteus`] loaded from an artifact produces **bit-identical**
//! obfuscation wire bytes to the freshly trained instance that saved it,
//! for every `request_id`: the pool round-trips with neighbor-order-exact
//! adjacency, floats round-trip by bit pattern, and the sampler's derived
//! state (statistics, KDE density) is recomputed by the same deterministic
//! code on both sides. `tests/artifact_robustness.rs` asserts this across
//! the model zoo, and the `proteus-train verify` subcommand re-checks it
//! against a live retrain.

use crate::config::{PartitionSpec, ProteusConfig, SentinelMode};
use crate::error::ProteusError;
use crate::inventory::{RegimeTag, SentinelKey};
use crate::operators::PopulationConfig;
use crate::pipeline::Proteus;
use crate::semantic::BigramModel;
use crate::sentinel::SentinelFactory;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{
    decode_frame, decode_graph, encode_frame, encode_graph, fnv1a64, WireError,
};
use proteus_graph::Graph;
use proteus_graphgen::{GraphRnn, GraphRnnConfig, UGraph};
use proteus_nn::Matrix;
use std::fmt;
use std::path::Path;

/// Magic bytes opening every trained-state artifact.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"PRTA";

/// The newest artifact format version this library writes. Version 1
/// files (no sentinel section) are still read; unknown versions are
/// rejected with [`ArtifactError::UnknownVersion`] — never misparsed.
pub const ARTIFACT_VERSION: u16 = 2;

/// The oldest artifact format version this library reads.
pub const ARTIFACT_VERSION_MIN: u16 = 1;

/// Section tag: config fingerprint + provenance.
pub const SECTION_META: u32 = 0;
/// Section tag: the canonical [`ProteusConfig`] encoding.
pub const SECTION_CONFIG: u32 = 1;
/// Section tag: GraphRNN weights.
pub const SECTION_RNN: u32 = 2;
/// Section tag: the sentinel topology pool.
pub const SECTION_POOL: u32 = 3;
/// Section tag: the fitted bigram model.
pub const SECTION_BIGRAM: u32 = 4;
/// Section tag: the warm sentinel inventory (artifact version ≥ 2).
pub const SECTION_SENTINELS: u32 = 5;

const SECTION_TAGS: [u32; 6] = [
    SECTION_META,
    SECTION_CONFIG,
    SECTION_RNN,
    SECTION_POOL,
    SECTION_BIGRAM,
    SECTION_SENTINELS,
];

/// Human-readable name of a section tag (for errors and `inspect`).
pub fn section_name(tag: u32) -> &'static str {
    match tag {
        SECTION_META => "meta",
        SECTION_CONFIG => "config",
        SECTION_RNN => "rnn",
        SECTION_POOL => "pool",
        SECTION_BIGRAM => "bigram",
        SECTION_SENTINELS => "sentinels",
        _ => "unknown",
    }
}

/// Any failure while encoding, decoding, or validating a trained-state
/// artifact. Carried by [`ProteusError::Artifact`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Reading or writing the artifact file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The input does not start with [`ARTIFACT_MAGIC`] — it is not an
    /// artifact at all.
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The artifact was written by a format version this library does not
    /// speak.
    UnknownVersion {
        /// Version found in the header.
        got: u16,
        /// Newest version this library supports.
        supported: u16,
    },
    /// The input ended before the named field could be read.
    Truncated {
        /// What was being read.
        context: String,
    },
    /// A section frame failed to decode — truncation, corruption (checksum
    /// mismatch), or an unknown wire version inside the section framing.
    Section {
        /// Zero-based position of the failing section in the file.
        index: u32,
        /// The underlying wire error.
        source: WireError,
    },
    /// A section payload decoded to an impossible value.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section's tag.
        tag: u32,
    },
    /// The same section appears twice.
    DuplicateSection {
        /// The duplicated section's tag.
        tag: u32,
    },
    /// A section carries a tag this version does not define.
    UnknownSection {
        /// The unrecognized tag.
        tag: u32,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// The meta section's config fingerprint does not match the config
    /// section — the artifact was assembled inconsistently or tampered
    /// with in a way the per-section checksums cannot see.
    FingerprintMismatch {
        /// Fingerprint recorded in the meta section.
        expected: u64,
        /// Fingerprint recomputed from the config section.
        got: u64,
    },
    /// The artifact's configuration does not match the configuration the
    /// caller requires (see [`Proteus::load_artifact_expecting`]).
    ConfigMismatch {
        /// Fingerprint of the caller's expected configuration.
        expected: u64,
        /// Fingerprint of the configuration stored in the artifact.
        got: u64,
    },
}

impl ArtifactError {
    fn truncated(context: impl Into<String>) -> ArtifactError {
        ArtifactError::Truncated {
            context: context.into(),
        }
    }

    fn malformed(detail: impl Into<String>) -> ArtifactError {
        ArtifactError::Malformed {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, detail } => {
                write!(f, "artifact i/o error at `{path}`: {detail}")
            }
            ArtifactError::BadMagic { got } => {
                write!(f, "artifact error: bad magic {got:02x?} (expected \"PRTA\")")
            }
            ArtifactError::UnknownVersion { got, supported } => write!(
                f,
                "artifact error: unknown artifact version {got} (this library speaks versions up to {supported})"
            ),
            ArtifactError::Truncated { context } => {
                write!(f, "artifact error: truncated input reading {context}")
            }
            ArtifactError::Section { index, source } => {
                write!(f, "artifact error: section {index} failed to decode: {source}")
            }
            ArtifactError::Malformed { detail } => write!(f, "artifact error: {detail}"),
            ArtifactError::MissingSection { tag } => write!(
                f,
                "artifact error: required section `{}` (tag {tag}) is missing",
                section_name(*tag)
            ),
            ArtifactError::DuplicateSection { tag } => write!(
                f,
                "artifact error: section `{}` (tag {tag}) appears more than once",
                section_name(*tag)
            ),
            ArtifactError::UnknownSection { tag } => {
                write!(f, "artifact error: unknown section tag {tag}")
            }
            ArtifactError::TrailingBytes { count } => {
                write!(f, "artifact error: {count} trailing bytes after the final section")
            }
            ArtifactError::FingerprintMismatch { expected, got } => write!(
                f,
                "artifact error: meta section records config fingerprint {expected:#018x} but the config section hashes to {got:#018x}"
            ),
            ArtifactError::ConfigMismatch { expected, got } => write!(
                f,
                "artifact error: artifact config fingerprint {got:#018x} does not match the expected configuration ({expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Section { source, .. } => Some(source),
            _ => None,
        }
    }
}

type AResult<T> = std::result::Result<T, ArtifactError>;

fn need(buf: &impl Buf, n: usize, what: &str) -> AResult<()> {
    if buf.remaining() < n {
        Err(ArtifactError::truncated(what))
    } else {
        Ok(())
    }
}

/// Caps an untrusted element count for pre-allocation: never reserve more
/// elements than the remaining bytes could possibly encode (at `min_bytes`
/// encoded bytes per element). The decode loop still reads the full
/// declared count, so a lying header hits a typed truncation error —
/// after the plausibility bounds but *before* any allocation sized by
/// attacker-controlled bytes.
fn bounded_capacity(count: usize, buf: &impl Buf, min_bytes: usize) -> usize {
    count.min(buf.remaining() / min_bytes.max(1))
}

/// Longest string the artifact codec will write or read (1 MiB) —
/// `put_str` and `get_str` enforce the same bound, so everything
/// [`TrainedArtifact::to_bytes`] produces is loadable by construction.
const MAX_STRING_LEN: usize = 1 << 20;

fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(
        s.len() <= MAX_STRING_LEN,
        "artifact strings are bounded at save time"
    );
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &str) -> AResult<String> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    if len > MAX_STRING_LEN {
        return Err(ArtifactError::malformed(format!(
            "implausible string length {len} reading {what}"
        )));
    }
    need(buf, len, what)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| ArtifactError::malformed(format!("invalid utf8 reading {what}")))
}

// ---------------------------------------------------------------------------
// config

/// Canonical binary encoding of a [`ProteusConfig`] — the bytes the config
/// fingerprint is computed over. Fixed field order, little-endian, floats
/// by bit pattern: two configs have equal encodings iff they are
/// observably identical to the pipeline.
fn encode_config(config: &ProteusConfig) -> Bytes {
    encode_config_versioned(config, ARTIFACT_VERSION)
}

/// [`encode_config`] targeting an explicit artifact version: version 1
/// stops at the seed (the historical layout), version 2 appends
/// `sentinel_variants`.
fn encode_config_versioned(config: &ProteusConfig, version: u16) -> Bytes {
    let mut buf = BytesMut::new();
    match config.partitions {
        PartitionSpec::Count(n) => {
            buf.put_u8(0);
            buf.put_u64_le(n as u64);
        }
        PartitionSpec::TargetSize(s) => {
            buf.put_u8(1);
            buf.put_u64_le(s as u64);
        }
    }
    buf.put_u64_le(config.k as u64);
    buf.put_u64_le(config.partition_restarts as u64);
    buf.put_u64_le(config.beta.to_bits());
    buf.put_u8(match config.mode {
        SentinelMode::Generative => 0,
        SentinelMode::Perturb => 1,
    });
    let g = &config.graphrnn;
    buf.put_u64_le(g.m as u64);
    buf.put_u64_le(g.hidden as u64);
    buf.put_u64_le(g.mlp_hidden as u64);
    buf.put_u64_le(g.epochs as u64);
    buf.put_u32_le(g.lr.to_bits());
    buf.put_u64_le(g.max_nodes as u64);
    buf.put_u64_le(config.topology_pool as u64);
    buf.put_u64_le(config.population.max_solutions as u64);
    buf.put_u64_le(config.population.top_pct.to_bits());
    match config.optimizer_threads {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            buf.put_u64_le(t as u64);
        }
    }
    buf.put_u64_le(config.seed);
    if version >= 2 {
        buf.put_u64_le(config.sentinel_variants as u64);
    }
    buf.freeze()
}

fn decode_config(buf: &mut Bytes, version: u16) -> AResult<ProteusConfig> {
    need(buf, 9, "partition spec")?;
    let partitions = match buf.get_u8() {
        0 => PartitionSpec::Count(buf.get_u64_le() as usize),
        1 => PartitionSpec::TargetSize(buf.get_u64_le() as usize),
        other => {
            return Err(ArtifactError::malformed(format!(
                "unknown partition spec tag {other}"
            )))
        }
    };
    need(buf, 8 + 8 + 8 + 1, "config scalars")?;
    let k = buf.get_u64_le() as usize;
    let partition_restarts = buf.get_u64_le() as usize;
    let beta = f64::from_bits(buf.get_u64_le());
    let mode = match buf.get_u8() {
        0 => SentinelMode::Generative,
        1 => SentinelMode::Perturb,
        other => {
            return Err(ArtifactError::malformed(format!(
                "unknown sentinel mode tag {other}"
            )))
        }
    };
    need(buf, 8 * 4 + 4 + 8, "graphrnn config")?;
    let graphrnn = GraphRnnConfig {
        m: buf.get_u64_le() as usize,
        hidden: buf.get_u64_le() as usize,
        mlp_hidden: buf.get_u64_le() as usize,
        epochs: buf.get_u64_le() as usize,
        lr: f32::from_bits(buf.get_u32_le()),
        max_nodes: buf.get_u64_le() as usize,
    };
    need(buf, 8 + 8 + 8 + 1, "population config")?;
    let topology_pool = buf.get_u64_le() as usize;
    let population = PopulationConfig {
        max_solutions: buf.get_u64_le() as usize,
        top_pct: f64::from_bits(buf.get_u64_le()),
    };
    let optimizer_threads = match buf.get_u8() {
        0 => None,
        1 => {
            need(buf, 8, "optimizer threads")?;
            Some(buf.get_u64_le() as usize)
        }
        other => {
            return Err(ArtifactError::malformed(format!(
                "unknown optimizer-threads tag {other}"
            )))
        }
    };
    need(buf, 8, "seed")?;
    let seed = buf.get_u64_le();
    // v1 artifacts predate the variants field; they load under the default
    let sentinel_variants = if version >= 2 {
        need(buf, 8, "sentinel variants")?;
        buf.get_u64_le() as usize
    } else {
        ProteusConfig::default().sentinel_variants
    };
    Ok(ProteusConfig {
        partitions,
        k,
        partition_restarts,
        beta,
        mode,
        graphrnn,
        topology_pool,
        population,
        optimizer_threads,
        sentinel_variants,
        seed,
    })
}

/// FNV-1a fingerprint of a configuration's canonical encoding. Two
/// configurations fingerprint equally iff every pipeline-visible field
/// (including float bit patterns) is identical — the compatibility check
/// behind [`Proteus::load_artifact_expecting`].
pub fn config_fingerprint(config: &ProteusConfig) -> u64 {
    fnv1a64(&encode_config(config))
}

// ---------------------------------------------------------------------------
// rnn weights

/// Weights are encoded sorted by name so the byte format is canonical
/// regardless of how the `(name, matrix)` pairs were assembled.
fn encode_rnn_weights(weights: &[(String, Matrix)]) -> Bytes {
    let mut ordered: Vec<&(String, Matrix)> = weights.iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    let mut buf = BytesMut::new();
    buf.put_u32_le(ordered.len() as u32);
    for (name, matrix) in ordered {
        put_str(&mut buf, name);
        buf.put_u32_le(matrix.rows() as u32);
        buf.put_u32_le(matrix.cols() as u32);
        for &v in matrix.data() {
            buf.put_u32_le(v.to_bits());
        }
    }
    buf.freeze()
}

fn decode_rnn_weights(buf: &mut Bytes) -> AResult<Vec<(String, Matrix)>> {
    need(buf, 4, "rnn parameter count")?;
    let count = buf.get_u32_le() as usize;
    if count > 4096 {
        return Err(ArtifactError::malformed(format!(
            "implausible rnn parameter count {count}"
        )));
    }
    // an entry encodes to at least 12 bytes (empty name + shape header)
    let mut out = Vec::with_capacity(bounded_capacity(count, buf, 12));
    for _ in 0..count {
        let name = get_str(buf, "rnn parameter name")?;
        need(buf, 8, "rnn parameter shape")?;
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let numel = rows
            .checked_mul(cols)
            .filter(|&n| n <= 1 << 24)
            .ok_or_else(|| {
                ArtifactError::malformed(format!("implausible matrix shape {rows}x{cols}"))
            })?;
        need(buf, numel * 4, "rnn parameter data")?;
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(f32::from_bits(buf.get_u32_le()));
        }
        out.push((name, Matrix::new(rows, cols, data)));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// topology pool

fn encode_pool<'a>(pool: impl ExactSizeIterator<Item = &'a UGraph>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(pool.len() as u32);
    for g in pool {
        let adj = g.adjacency();
        buf.put_u32_le(adj.len() as u32);
        for neigh in adj {
            buf.put_u32_le(neigh.len() as u32);
            for &v in neigh {
                buf.put_u32_le(v as u32);
            }
        }
    }
    buf.freeze()
}

fn decode_pool(buf: &mut Bytes) -> AResult<Vec<UGraph>> {
    need(buf, 4, "pool size")?;
    let count = buf.get_u32_le() as usize;
    if count > 1 << 20 {
        return Err(ArtifactError::malformed(format!(
            "implausible pool size {count}"
        )));
    }
    let mut pool = Vec::with_capacity(bounded_capacity(count, buf, 4));
    for _ in 0..count {
        need(buf, 4, "topology node count")?;
        let n = buf.get_u32_le() as usize;
        if n > 1 << 20 {
            return Err(ArtifactError::malformed(format!(
                "implausible topology node count {n}"
            )));
        }
        let mut adj = Vec::with_capacity(bounded_capacity(n, buf, 4));
        for _ in 0..n {
            need(buf, 4, "neighbor count")?;
            let deg = buf.get_u32_le() as usize;
            if deg > n {
                return Err(ArtifactError::malformed(format!(
                    "node degree {deg} exceeds topology size {n}"
                )));
            }
            let mut neigh = Vec::with_capacity(bounded_capacity(deg, buf, 4));
            for _ in 0..deg {
                need(buf, 4, "neighbor id")?;
                neigh.push(buf.get_u32_le() as usize);
            }
            adj.push(neigh);
        }
        pool.push(UGraph::from_adjacency(adj).map_err(|e| {
            ArtifactError::malformed(format!("pool topology is not a simple graph: {e}"))
        })?);
    }
    Ok(pool)
}

// ---------------------------------------------------------------------------
// bigram model

fn encode_bigram(bigram: &BigramModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(bigram.alpha().to_bits());
    let counts = bigram.counts();
    buf.put_u32_le(counts.len() as u32);
    for row in counts {
        for &c in row {
            buf.put_u64_le(c.to_bits());
        }
    }
    for &t in bigram.totals() {
        buf.put_u64_le(t.to_bits());
    }
    buf.freeze()
}

fn decode_bigram(buf: &mut Bytes) -> AResult<BigramModel> {
    need(buf, 12, "bigram header")?;
    let alpha = f64::from_bits(buf.get_u64_le());
    let v = buf.get_u32_le() as usize;
    if v > 1024 {
        return Err(ArtifactError::malformed(format!(
            "implausible bigram vocabulary {v}"
        )));
    }
    let mut counts = Vec::with_capacity(v);
    for _ in 0..v {
        need(buf, v * 8, "bigram counts row")?;
        let mut row = Vec::with_capacity(v);
        for _ in 0..v {
            row.push(f64::from_bits(buf.get_u64_le()));
        }
        counts.push(row);
    }
    need(buf, v * 8, "bigram totals")?;
    let mut totals = Vec::with_capacity(v);
    for _ in 0..v {
        totals.push(f64::from_bits(buf.get_u64_le()));
    }
    BigramModel::from_parts(counts, totals, alpha)
        .map_err(|e| ArtifactError::malformed(format!("bigram state rejected: {e}")))
}

// ---------------------------------------------------------------------------
// sentinel inventory

/// Entries are encoded in strictly ascending key order (the inventory's
/// canonical snapshot order), each graph as its wire encoding behind a
/// length prefix.
fn encode_sentinels(entries: &[(SentinelKey, Graph)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for (key, graph) in entries {
        buf.put_u32_le(key.topo);
        buf.put_u8(key.regime as u8);
        buf.put_u32_le(key.variant);
        let g = encode_graph(graph);
        buf.put_u32_le(g.len() as u32);
        buf.put_slice(&g);
    }
    buf.freeze()
}

/// `pool_len` and `variants` bound the key space: a key naming a topology
/// or variant the loaded factory cannot build is rejected rather than
/// silently memoizing a sentinel no inline path could produce.
fn decode_sentinels(
    buf: &mut Bytes,
    pool_len: usize,
    variants: usize,
) -> AResult<Vec<(SentinelKey, Graph)>> {
    need(buf, 4, "sentinel entry count")?;
    let count = buf.get_u32_le() as usize;
    let key_space = pool_len.saturating_mul(2).saturating_mul(variants);
    if count > key_space {
        return Err(ArtifactError::malformed(format!(
            "sentinel entry count {count} exceeds the key space \
             ({pool_len} topologies x 2 regimes x {variants} variants)"
        )));
    }
    // an entry encodes to at least 17 bytes (key header + graph length)
    let mut out: Vec<(SentinelKey, Graph)> = Vec::with_capacity(bounded_capacity(count, buf, 17));
    for i in 0..count {
        need(buf, 4 + 1 + 4 + 4, "sentinel entry header")?;
        let topo = buf.get_u32_le();
        let regime = match buf.get_u8() {
            0 => RegimeTag::Cnn,
            1 => RegimeTag::Transformer,
            other => {
                return Err(ArtifactError::malformed(format!(
                    "sentinel entry {i}: unknown regime tag {other}"
                )))
            }
        };
        let variant = buf.get_u32_le();
        if topo as usize >= pool_len || variant as usize >= variants {
            return Err(ArtifactError::malformed(format!(
                "sentinel entry {i}: key (topo {topo}, variant {variant}) outside the \
                 {pool_len}-topology, {variants}-variant key space"
            )));
        }
        let key = SentinelKey {
            topo,
            regime,
            variant,
        };
        if let Some((prev, _)) = out.last() {
            if *prev >= key {
                return Err(ArtifactError::malformed(format!(
                    "sentinel entry {i}: keys are not in strictly ascending order"
                )));
            }
        }
        let len = buf.get_u32_le() as usize;
        need(buf, len, "sentinel graph bytes")?;
        let mut graph_buf = buf.split_to(len);
        let graph = decode_graph(&mut graph_buf).map_err(|e| {
            ArtifactError::malformed(format!("sentinel entry {i}: graph rejected: {e}"))
        })?;
        if !graph_buf.is_empty() {
            return Err(ArtifactError::malformed(format!(
                "sentinel entry {i}: {} trailing bytes after graph",
                graph_buf.len()
            )));
        }
        out.push((key, graph));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// the artifact

/// A decoded trained-state artifact: everything
/// [`ProteusBuilder::train`](crate::ProteusBuilder::train) produces, in a
/// form that can be inspected without committing to a [`Proteus`]
/// instance (see [`TrainedArtifact::into_proteus`]).
#[derive(Debug, Clone)]
pub struct TrainedArtifact {
    config: ProteusConfig,
    provenance: String,
    rnn_weights: Vec<(String, Matrix)>,
    pool: Vec<UGraph>,
    bigram: BigramModel,
    sentinels: Vec<(SentinelKey, Graph)>,
}

/// A human-oriented summary of an artifact (the `proteus-train inspect`
/// output).
#[derive(Debug, Clone)]
pub struct ArtifactSummary {
    /// Artifact format version.
    pub version: u16,
    /// FNV-1a fingerprint of the canonical config encoding.
    pub config_fingerprint: u64,
    /// Free-form provenance string recorded at save time (e.g. the
    /// training corpus names). Empty when saved through the library API.
    pub provenance: String,
    /// Number of topologies in the sentinel pool.
    pub pool_len: usize,
    /// Number of GraphRNN parameter tensors.
    pub rnn_params: usize,
    /// Total number of GraphRNN weight scalars.
    pub rnn_scalars: usize,
    /// Bigram vocabulary size (`OpCode::COUNT` at save time).
    pub bigram_vocab: usize,
    /// Warm sentinel inventory entries persisted in the artifact (always
    /// 0 for version-1 files, which predate the section).
    pub sentinel_entries: usize,
    /// `(section name, payload bytes)` per section, in file order.
    pub section_bytes: Vec<(&'static str, usize)>,
}

impl TrainedArtifact {
    /// Snapshots a trained instance. `provenance` is a free-form string
    /// stored alongside the state (the CLI records the training corpus
    /// names there so `proteus-train verify` can retrain and compare);
    /// pass `""` when there is nothing to record. Provenance longer than
    /// the codec's 1 MiB string bound is truncated (at a character
    /// boundary) so every saved artifact is loadable by construction.
    pub fn from_proteus(proteus: &Proteus, provenance: impl Into<String>) -> TrainedArtifact {
        let mut provenance: String = provenance.into();
        if provenance.len() > MAX_STRING_LEN {
            let mut cut = MAX_STRING_LEN;
            while !provenance.is_char_boundary(cut) {
                cut -= 1;
            }
            provenance.truncate(cut);
        }
        let factory = proteus.factory();
        TrainedArtifact {
            config: proteus.config().clone(),
            provenance,
            rnn_weights: factory.rnn().export_weights(),
            pool: factory.sampler().topologies().cloned().collect(),
            bigram: factory.bigram().clone(),
            // whatever the inventory has accumulated so far, key-sorted;
            // an idle instance simply persists an empty section
            sentinels: proteus.inventory().snapshot(),
        }
    }

    /// The warm sentinel inventory entries the artifact carries.
    pub fn sentinels(&self) -> &[(SentinelKey, Graph)] {
        &self.sentinels
    }

    /// The configuration the artifact was trained under.
    pub fn config(&self) -> &ProteusConfig {
        &self.config
    }

    /// The provenance string recorded at save time.
    pub fn provenance(&self) -> &str {
        &self.provenance
    }

    /// Serializes to the `PRTA` byte format.
    pub fn to_bytes(&self) -> Bytes {
        let config_payload = encode_config(&self.config);
        let mut meta = BytesMut::new();
        meta.put_u64_le(fnv1a64(&config_payload));
        put_str(&mut meta, &self.provenance);

        let sections: [(u32, Bytes); 6] = [
            (SECTION_META, meta.freeze()),
            (SECTION_CONFIG, config_payload),
            (SECTION_RNN, encode_rnn_weights(&self.rnn_weights)),
            (SECTION_POOL, encode_pool(self.pool.iter())),
            (SECTION_BIGRAM, encode_bigram(&self.bigram)),
            (SECTION_SENTINELS, encode_sentinels(&self.sentinels)),
        ];
        let mut buf = BytesMut::new();
        buf.put_slice(&ARTIFACT_MAGIC);
        buf.put_u16_le(ARTIFACT_VERSION);
        buf.put_u32_le(sections.len() as u32);
        for (tag, payload) in &sections {
            buf.put_slice(&encode_frame(*tag, payload));
        }
        buf.freeze()
    }

    /// Decodes and fully validates an artifact: magic, version, every
    /// section checksum, payload well-formedness, and the meta/config
    /// fingerprint cross-check.
    ///
    /// # Errors
    /// A typed [`ArtifactError`] for every defect; corrupted input is
    /// never silently accepted (any single flipped byte is caught).
    pub fn from_bytes(data: &[u8]) -> AResult<TrainedArtifact> {
        let (artifact, _) = TrainedArtifact::from_bytes_with_summary(data)?;
        Ok(artifact)
    }

    /// [`TrainedArtifact::from_bytes`] plus the [`ArtifactSummary`] the
    /// `inspect` subcommand prints (section sizes are only known during
    /// decoding).
    ///
    /// # Errors
    /// As [`TrainedArtifact::from_bytes`].
    pub fn from_bytes_with_summary(data: &[u8]) -> AResult<(TrainedArtifact, ArtifactSummary)> {
        if data.len() < 4 {
            return Err(ArtifactError::truncated("artifact magic"));
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&data[0..4]);
        if magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic { got: magic });
        }
        if data.len() < 6 {
            return Err(ArtifactError::truncated("artifact version"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if !(ARTIFACT_VERSION_MIN..=ARTIFACT_VERSION).contains(&version) {
            return Err(ArtifactError::UnknownVersion {
                got: version,
                supported: ARTIFACT_VERSION,
            });
        }
        if data.len() < 10 {
            return Err(ArtifactError::truncated("section count"));
        }
        let count = u32::from_le_bytes([data[6], data[7], data[8], data[9]]) as usize;
        if count > 64 {
            return Err(ArtifactError::malformed(format!(
                "implausible section count {count}"
            )));
        }
        let mut buf = Bytes::copy_from_slice(&data[10..]);
        let mut payloads: [Option<Bytes>; 6] = [None, None, None, None, None, None];
        let mut section_bytes: Vec<(&'static str, usize)> = Vec::with_capacity(count);
        let mut prev_slot: Option<usize> = None;
        for index in 0..count {
            let frame = decode_frame(&mut buf).map_err(|source| ArtifactError::Section {
                index: index as u32,
                source,
            })?;
            // docs/WIRE.md: sections are wire *v1* frames. decode_frame
            // also speaks v2, but accepting it here would make two byte
            // encodings valid for one artifact — reject for canonicality.
            if frame.version != proteus_graph::wire::WIRE_VERSION_V1 {
                return Err(ArtifactError::malformed(format!(
                    "section {index} uses wire frame version {} — artifact sections are v1 frames",
                    frame.version
                )));
            }
            let tag = frame.bucket_index;
            // the sentinel section exists only in version ≥ 2 files; a v1
            // file carrying it was not written by any released encoder
            if version < 2 && tag == SECTION_SENTINELS {
                return Err(ArtifactError::malformed(format!(
                    "section `sentinels` (tag {SECTION_SENTINELS}) requires artifact version 2, \
                     file is version {version}"
                )));
            }
            let slot = SECTION_TAGS
                .iter()
                .position(|&t| t == tag)
                .ok_or(ArtifactError::UnknownSection { tag })?;
            if payloads[slot].is_some() {
                return Err(ArtifactError::DuplicateSection { tag });
            }
            // docs/WIRE.md: sections appear in tag order. Enforcing it
            // keeps the encoding canonical — one artifact, one byte string.
            if let Some(prev) = prev_slot {
                if slot < prev {
                    return Err(ArtifactError::malformed(format!(
                        "section `{}` (tag {tag}) appears after tag {} — artifact sections are \
                         encoded in tag order",
                        section_name(tag),
                        SECTION_TAGS[prev]
                    )));
                }
            }
            prev_slot = Some(slot);
            section_bytes.push((section_name(tag), frame.payload.len()));
            payloads[slot] = Some(frame.payload);
        }
        if !buf.is_empty() {
            return Err(ArtifactError::TrailingBytes { count: buf.len() });
        }
        let mut take = |tag: u32| -> AResult<Bytes> {
            let slot = SECTION_TAGS
                .iter()
                .position(|&t| t == tag)
                .expect("take is only called with tags listed in SECTION_TAGS");
            payloads[slot]
                .take()
                .ok_or(ArtifactError::MissingSection { tag })
        };
        let mut meta = take(SECTION_META)?;
        let config_payload = take(SECTION_CONFIG)?;
        let mut rnn = take(SECTION_RNN)?;
        let mut pool = take(SECTION_POOL)?;
        let mut bigram = take(SECTION_BIGRAM)?;
        // required in v2 (possibly empty), absent by definition in v1
        let sentinels_payload = if version >= 2 {
            Some(take(SECTION_SENTINELS)?)
        } else {
            None
        };

        need(&meta, 8, "config fingerprint")?;
        let recorded = meta.get_u64_le();
        let recomputed = fnv1a64(&config_payload);
        if recorded != recomputed {
            return Err(ArtifactError::FingerprintMismatch {
                expected: recorded,
                got: recomputed,
            });
        }
        let provenance = get_str(&mut meta, "provenance")?;
        if !meta.is_empty() {
            return Err(ArtifactError::malformed(format!(
                "{} trailing bytes in meta section",
                meta.len()
            )));
        }

        let mut config_buf = config_payload.clone();
        let config = decode_config(&mut config_buf, version)?;
        if !config_buf.is_empty() {
            return Err(ArtifactError::malformed(format!(
                "{} trailing bytes in config section",
                config_buf.len()
            )));
        }
        let rnn_weights = decode_rnn_weights(&mut rnn)?;
        if !rnn.is_empty() {
            return Err(ArtifactError::malformed(format!(
                "{} trailing bytes in rnn section",
                rnn.len()
            )));
        }
        let pool = {
            let decoded = decode_pool(&mut pool)?;
            if !pool.is_empty() {
                return Err(ArtifactError::malformed(format!(
                    "{} trailing bytes in pool section",
                    pool.len()
                )));
            }
            decoded
        };
        let bigram = {
            let decoded = decode_bigram(&mut bigram)?;
            if !bigram.is_empty() {
                return Err(ArtifactError::malformed(format!(
                    "{} trailing bytes in bigram section",
                    bigram.len()
                )));
            }
            decoded
        };
        let sentinels = match sentinels_payload {
            Some(mut payload) => {
                let decoded = decode_sentinels(&mut payload, pool.len(), config.sentinel_variants)?;
                if !payload.is_empty() {
                    return Err(ArtifactError::malformed(format!(
                        "{} trailing bytes in sentinels section",
                        payload.len()
                    )));
                }
                decoded
            }
            None => Vec::new(),
        };

        let summary = ArtifactSummary {
            version,
            config_fingerprint: recorded,
            provenance: provenance.clone(),
            pool_len: pool.len(),
            rnn_params: rnn_weights.len(),
            rnn_scalars: rnn_weights.iter().map(|(_, m)| m.data().len()).sum(),
            bigram_vocab: bigram.counts().len(),
            sentinel_entries: sentinels.len(),
            section_bytes,
        };
        Ok((
            TrainedArtifact {
                config,
                provenance,
                rnn_weights,
                pool,
                bigram,
                sentinels,
            },
            summary,
        ))
    }

    /// Reconstructs a servable [`Proteus`] from the decoded state. The
    /// result is bit-compatible with the instance that was saved: same
    /// config, same pool (in order), same weights, same bigram counts.
    ///
    /// # Errors
    /// [`ArtifactError::Malformed`] when the GraphRNN weights do not fit
    /// the stored configuration, or the stored configuration itself fails
    /// [`ProteusConfig::validate`] (wrapped detail).
    pub fn into_proteus(self) -> AResult<Proteus> {
        self.config.validate().map_err(|e| {
            ArtifactError::malformed(format!("artifact carries an invalid configuration: {e}"))
        })?;
        let rnn = GraphRnn::from_weights(self.config.graphrnn, self.rnn_weights)
            .map_err(|e| ArtifactError::malformed(format!("rnn state rejected: {e}")))?;
        let factory = SentinelFactory::from_parts(
            rnn,
            self.pool,
            self.bigram,
            self.config.population,
            self.config.beta,
            SentinelFactory::generation_seed(self.config.seed),
            self.config.sentinel_variants,
        );
        let proteus = Proteus::from_trained_parts(self.config, factory);
        // warm entries persisted at save time skip their first inline build
        proteus.inventory().prefill(self.sentinels);
        Ok(proteus)
    }
}

impl Proteus {
    /// Serializes this trained instance's state to `PRTA` artifact bytes
    /// (no provenance recorded; see [`TrainedArtifact::from_proteus`] to
    /// attach one).
    pub fn to_artifact_bytes(&self) -> Bytes {
        TrainedArtifact::from_proteus(self, "").to_bytes()
    }

    /// Reconstructs a trained instance from `PRTA` artifact bytes.
    ///
    /// # Errors
    /// [`ProteusError::Artifact`] for every decode or validation defect.
    pub fn from_artifact_bytes(data: &[u8]) -> Result<Proteus, ProteusError> {
        Ok(TrainedArtifact::from_bytes(data)?.into_proteus()?)
    }

    /// Writes this trained instance's state to `path` as a `PRTA`
    /// artifact — the "train offline, ship the artifact" half of warm
    /// starting.
    ///
    /// # Errors
    /// [`ProteusError::Artifact`] ([`ArtifactError::Io`]) when the write
    /// fails.
    pub fn save_artifact(&self, path: impl AsRef<Path>) -> Result<(), ProteusError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_artifact_bytes()).map_err(|e| {
            ProteusError::Artifact(ArtifactError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })
        })
    }

    /// Cold-starts a trained instance from an artifact on disk — the
    /// serving half of warm starting. Milliseconds instead of the full
    /// GraphRNN/partition training cost.
    ///
    /// # Errors
    /// [`ProteusError::Artifact`] when the file cannot be read or any
    /// validation (version, section checksums, fingerprint, state shape)
    /// fails.
    pub fn load_artifact(path: impl AsRef<Path>) -> Result<Proteus, ProteusError> {
        let path = path.as_ref();
        let data = std::fs::read(path).map_err(|e| {
            ProteusError::Artifact(ArtifactError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })
        })?;
        Proteus::from_artifact_bytes(&data)
    }

    /// [`Proteus::load_artifact`], additionally requiring the artifact's
    /// configuration to fingerprint-match `expected` — deployments pin
    /// their config and refuse artifacts trained under a different one.
    ///
    /// # Errors
    /// As [`Proteus::load_artifact`], plus
    /// [`ArtifactError::ConfigMismatch`] on a fingerprint difference.
    pub fn load_artifact_expecting(
        path: impl AsRef<Path>,
        expected: &ProteusConfig,
    ) -> Result<Proteus, ProteusError> {
        let path = path.as_ref();
        let data = std::fs::read(path).map_err(|e| {
            ProteusError::Artifact(ArtifactError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })
        })?;
        let artifact = TrainedArtifact::from_bytes(&data)?;
        // fingerprint check before into_proteus: a mismatched artifact is
        // rejected for the decode cost alone, not the RNN/density rebuild
        let want = config_fingerprint(expected);
        let got = config_fingerprint(artifact.config());
        if want != got {
            return Err(ProteusError::Artifact(ArtifactError::ConfigMismatch {
                expected: want,
                got,
            }));
        }
        Ok(artifact.into_proteus()?)
    }

    /// FNV-1a fingerprint of this instance's configuration (see
    /// [`config_fingerprint`]).
    pub fn config_fingerprint(&self) -> u64 {
        config_fingerprint(self.config())
    }

    /// Writes this trained instance's `PRTA` bytes into a durable
    /// [`Store`](crate::store::Store) — the crash-safe sibling of
    /// [`Proteus::save_artifact`]. Content-addressed: returns the
    /// artifact's content digest, and re-saving identical state appends
    /// nothing.
    ///
    /// # Errors
    /// [`ProteusError::Store`] when the append fails.
    pub fn save_artifact_store(&self, store: &crate::store::Store) -> Result<u64, ProteusError> {
        let bytes = self.to_artifact_bytes();
        Ok(store.put_artifact(&bytes, self.config_fingerprint())?)
    }

    /// Cold-starts a trained instance from the most recent artifact in a
    /// durable [`Store`](crate::store::Store) — the crash-safe sibling
    /// of [`Proteus::load_artifact`]. The store's chained digests have
    /// already vouched for the bytes; the full `PRTA` section validation
    /// still runs on top.
    ///
    /// # Errors
    /// [`ProteusError::Store`] ([`StoreError::Missing`](crate::store::StoreError::Missing))
    /// when the store holds no artifact; [`ProteusError::Artifact`] for
    /// every decode or validation defect.
    pub fn load_artifact_store(store: &crate::store::Store) -> Result<Proteus, ProteusError> {
        let (_, bytes) = store.latest_artifact().ok_or(ProteusError::Store(
            crate::store::StoreError::Missing {
                what: "any trained artifact".into(),
            },
        ))?;
        Proteus::from_artifact_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionSpec;
    use proteus_graph::TensorMap;
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};

    // training dominates test time, so the module shares one instance
    fn quick_proteus() -> &'static Proteus {
        static QUICK: std::sync::OnceLock<Proteus> = std::sync::OnceLock::new();
        QUICK.get_or_init(|| {
            let cfg = ProteusConfig {
                k: 2,
                partitions: PartitionSpec::Count(2),
                graphrnn: GraphRnnConfig {
                    epochs: 1,
                    max_nodes: 16,
                    ..Default::default()
                },
                topology_pool: 12,
                ..Default::default()
            };
            Proteus::train(cfg, &[build(ModelKind::ResNet)])
        })
    }

    #[test]
    fn artifact_roundtrips_bit_identically() {
        let fresh = quick_proteus();
        let bytes = fresh.to_artifact_bytes();
        let loaded = Proteus::from_artifact_bytes(&bytes).unwrap();
        assert_eq!(fresh.config_fingerprint(), loaded.config_fingerprint());
        // a second save of the loaded instance reproduces the bytes exactly
        assert_eq!(bytes.to_vec(), loaded.to_artifact_bytes().to_vec());
        // and the loaded instance obfuscates bit-identically
        let g = build(ModelKind::AlexNet);
        let (a, _) = fresh.obfuscate(&g, &TensorMap::new()).unwrap();
        let (b, _) = loaded.obfuscate(&g, &TensorMap::new()).unwrap();
        assert_eq!(a.to_bytes().to_vec(), b.to_bytes().to_vec());
    }

    #[test]
    fn summary_reports_sections() {
        let fresh = quick_proteus();
        let artifact = TrainedArtifact::from_proteus(fresh, "resnet");
        let (_, summary) = TrainedArtifact::from_bytes_with_summary(&artifact.to_bytes()).unwrap();
        assert_eq!(summary.version, ARTIFACT_VERSION);
        assert_eq!(summary.provenance, "resnet");
        assert_eq!(summary.config_fingerprint, fresh.config_fingerprint());
        assert!(summary.pool_len > 0);
        // GRU: 3 gates x (w, u, b) = 9; edge MLP: 2 linear layers x (w, b) = 4
        assert_eq!(summary.rnn_params, 13);
        assert!(summary.rnn_scalars > 0);
        let names: Vec<&str> = summary.section_bytes.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["meta", "config", "rnn", "pool", "bigram", "sentinels"]
        );
    }

    #[test]
    fn bad_magic_and_version_skew_rejected() {
        let bytes = quick_proteus().to_artifact_bytes().to_vec();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            TrainedArtifact::from_bytes(&bad),
            Err(ArtifactError::BadMagic { .. })
        ));
        let mut skew = bytes.clone();
        skew[4] = ARTIFACT_VERSION as u8 + 1;
        assert!(matches!(
            TrainedArtifact::from_bytes(&skew),
            Err(ArtifactError::UnknownVersion { .. })
        ));
        assert!(matches!(
            TrainedArtifact::from_bytes(&bytes[..3]),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn section_corruption_rejected() {
        let bytes = quick_proteus().to_artifact_bytes().to_vec();
        // flip one byte inside the first section's payload region
        let mut corrupt = bytes.clone();
        corrupt[40] ^= 0x20;
        let err = TrainedArtifact::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(
                err,
                ArtifactError::Section { .. } | ArtifactError::FingerprintMismatch { .. }
            ),
            "wrong variant: {err:?}"
        );
    }

    #[test]
    fn v2_section_frames_are_rejected() {
        // sections are wire v1 frames by spec (docs/WIRE.md); the same
        // payload behind a valid v2 frame must not be a second accepted
        // encoding of the artifact
        use proteus_graph::wire::encode_frame_v2;
        let bytes = quick_proteus().to_artifact_bytes();
        let mut buf = Bytes::copy_from_slice(&bytes[10..]);
        let mut rebuilt: Vec<u8> = bytes[..10].to_vec();
        while !buf.is_empty() {
            let frame = decode_frame(&mut buf).expect("section decodes");
            rebuilt.extend_from_slice(&encode_frame_v2(0, frame.bucket_index, &frame.payload));
        }
        let err = TrainedArtifact::from_bytes(&rebuilt).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Malformed { .. }),
            "wrong variant: {err:?}"
        );
    }

    #[test]
    fn out_of_order_sections_are_rejected() {
        // sections are encoded in tag order (docs/WIRE.md); a permuted
        // file must not be a second accepted encoding of the artifact
        let bytes = quick_proteus().to_artifact_bytes();
        let mut buf = Bytes::copy_from_slice(&bytes[10..]);
        let mut frames = Vec::with_capacity(6);
        while !buf.is_empty() {
            frames.push(decode_frame(&mut buf).expect("section decodes"));
        }
        assert_eq!(frames.len(), 6);
        frames.swap(0, 5);
        let mut rebuilt: Vec<u8> = bytes[..10].to_vec();
        for frame in &frames {
            rebuilt.extend_from_slice(&encode_frame(frame.bucket_index, &frame.payload));
        }
        let err = TrainedArtifact::from_bytes(&rebuilt).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Malformed { .. }),
            "wrong variant: {err:?}"
        );
    }

    // a version-1 file for the same trained state, built with the v1
    // config layout and without the sentinel section
    fn v1_bytes_of(proteus: &Proteus) -> Vec<u8> {
        let artifact = TrainedArtifact::from_proteus(proteus, "v1");
        let config_payload = encode_config_versioned(&artifact.config, 1);
        let mut meta = BytesMut::new();
        meta.put_u64_le(fnv1a64(&config_payload));
        put_str(&mut meta, &artifact.provenance);
        let sections: [(u32, Bytes); 5] = [
            (SECTION_META, meta.freeze()),
            (SECTION_CONFIG, config_payload),
            (SECTION_RNN, encode_rnn_weights(&artifact.rnn_weights)),
            (SECTION_POOL, encode_pool(artifact.pool.iter())),
            (SECTION_BIGRAM, encode_bigram(&artifact.bigram)),
        ];
        let mut buf = BytesMut::new();
        buf.put_slice(&ARTIFACT_MAGIC);
        buf.put_u16_le(1);
        buf.put_u32_le(sections.len() as u32);
        for (tag, payload) in &sections {
            buf.put_slice(&encode_frame(*tag, payload));
        }
        buf.to_vec()
    }

    #[test]
    fn v1_artifacts_still_load() {
        let fresh = quick_proteus();
        let v1 = v1_bytes_of(fresh);
        let (artifact, summary) = TrainedArtifact::from_bytes_with_summary(&v1).unwrap();
        assert_eq!(summary.version, 1);
        assert_eq!(summary.sentinel_entries, 0);
        // the variants field predates v1; it loads under the default
        assert_eq!(
            artifact.config().sentinel_variants,
            ProteusConfig::default().sentinel_variants
        );
        let loaded = artifact.into_proteus().unwrap();
        assert_eq!(loaded.inventory().len(), 0);
        // wire parity: the v1-loaded instance obfuscates identically
        let g = build(ModelKind::AlexNet);
        let (a, _) = fresh.obfuscate(&g, &TensorMap::new()).unwrap();
        let (b, _) = loaded.obfuscate(&g, &TensorMap::new()).unwrap();
        assert_eq!(a.to_bytes().to_vec(), b.to_bytes().to_vec());
    }

    #[test]
    fn v1_files_cannot_carry_a_sentinel_section() {
        let fresh = quick_proteus();
        let v1 = v1_bytes_of(fresh);
        // append an (empty) sentinel section frame and bump the count
        let mut forged = v1.clone();
        let empty = encode_sentinels(&[]);
        forged.extend_from_slice(&encode_frame(SECTION_SENTINELS, &empty));
        forged[6] += 1; // section_count low byte: 5 -> 6
        let err = TrainedArtifact::from_bytes(&forged).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Malformed { .. }),
            "wrong variant: {err:?}"
        );
    }

    #[test]
    fn persisted_inventory_round_trips_and_prefills() {
        let fresh = quick_proteus();
        // warm the shared inventory (idempotent across test ordering)
        let built = fresh.warm_inventory();
        assert!(built > 0, "nothing warmed");
        let bytes = fresh.to_artifact_bytes();
        let (artifact, summary) = TrainedArtifact::from_bytes_with_summary(&bytes).unwrap();
        assert_eq!(summary.version, ARTIFACT_VERSION);
        assert_eq!(summary.sentinel_entries, artifact.sentinels().len());
        assert!(summary.sentinel_entries > 0, "warm entries not persisted");
        let loaded = artifact.into_proteus().unwrap();
        assert_eq!(loaded.inventory().len(), summary.sentinel_entries);
        // prefilled entries match what the loaded factory would build
        for (key, graph) in loaded.inventory().snapshot().iter().take(6) {
            let rebuilt = loaded
                .factory()
                .build_sentinel(*key)
                .expect("persisted key builds");
            assert_eq!(
                encode_graph(graph).to_vec(),
                encode_graph(&rebuilt).to_vec(),
                "persisted entry for {key:?} diverges from the pure build"
            );
        }
    }

    #[test]
    fn corrupted_sentinel_section_is_rejected() {
        let fresh = quick_proteus();
        fresh.warm_inventory();
        let bytes = fresh.to_artifact_bytes().to_vec();
        // flip a byte inside the final (sentinels) section payload
        let mut corrupt = bytes.clone();
        let at = corrupt.len() - 8;
        corrupt[at] ^= 0x01;
        let err = TrainedArtifact::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Section { .. }),
            "checksum must catch payload corruption: {err:?}"
        );
    }

    #[test]
    fn expecting_mismatched_config_is_rejected() {
        let fresh = quick_proteus();
        let dir = std::env::temp_dir().join("proteus-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("expecting.prta");
        fresh.save_artifact(&path).unwrap();
        let mut other = fresh.config().clone();
        other.k += 1;
        let err = Proteus::load_artifact_expecting(&path, &other).unwrap_err();
        assert!(
            matches!(
                err,
                ProteusError::Artifact(ArtifactError::ConfigMismatch { .. })
            ),
            "wrong variant: {err:?}"
        );
        let ok = Proteus::load_artifact_expecting(&path, fresh.config()).unwrap();
        assert_eq!(ok.config_fingerprint(), fresh.config_fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_fingerprint_tracks_every_field() {
        let base = ProteusConfig::default();
        let fp = config_fingerprint(&base);
        let variants = [
            ProteusConfig {
                k: 21,
                ..base.clone()
            },
            ProteusConfig {
                seed: base.seed + 1,
                ..base.clone()
            },
            ProteusConfig {
                beta: base.beta + 0.5,
                ..base.clone()
            },
            ProteusConfig {
                partitions: PartitionSpec::Count(8),
                ..base.clone()
            },
            ProteusConfig {
                optimizer_threads: Some(4),
                ..base.clone()
            },
            ProteusConfig {
                mode: SentinelMode::Perturb,
                ..base.clone()
            },
            ProteusConfig {
                sentinel_variants: base.sentinel_variants + 1,
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(config_fingerprint(&v), fp, "{v:?} collided");
        }
        assert_eq!(config_fingerprint(&base.clone()), fp);
    }
}
