//! The obfuscated bucket — the wire artifact exchanged with the optimizer
//! party (paper Figure 1's "Obfuscated Bucket").
//!
//! [`ObfuscatedModel`] is everything the optimizer (and hence an
//! interceptor) sees: for each of the `n` protected subgraphs, `k + 1`
//! anonymized candidate subgraphs in shuffled order. Which member is real
//! is recorded only in [`ObfuscationSecrets`], which never leaves the model
//! owner.
//!
//! On the wire each bucket travels as one [`SealedBucket`] frame (magic,
//! version, bucket index, payload checksum — see [`proteus_graph::wire`]),
//! so the two parties can stream buckets one at a time instead of shipping
//! the whole model as a single blob: the optimizer works on bucket *i*
//! while the owner is still generating bucket *i + 1*. The batch
//! [`ObfuscatedModel::to_bytes`] format is simply a frame count followed by
//! the same frames, which is what makes the streaming and batch paths
//! byte-compatible.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{
    decode_frame, decode_graph, decode_params, encode_frame, encode_graph, encode_params, fnv1a64,
    WireError,
};
use proteus_graph::{Graph, TensorMap};
use proteus_partition::PartitionPlan;
use serde::{Deserialize, Serialize};

/// One candidate subgraph: structure plus (optional) parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketMember {
    /// The anonymized subgraph.
    pub graph: Graph,
    /// Its parameter tensors (empty for structure-only protocols).
    pub params: TensorMap,
}

/// The `k + 1` candidates hiding one protected subgraph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Bucket {
    /// The candidates, in shuffled on-the-wire order.
    pub members: Vec<BucketMember>,
}

/// One bucket sealed for transport: the bucket plus its position in the
/// obfuscated model, framed and checksummed on the wire.
///
/// This is the unit of the streaming protocol:
/// [`crate::ObfuscationSession`] yields sealed buckets one at a time and
/// [`crate::DeobfuscationSession`] accepts them back in any order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SealedBucket {
    /// Which bucket of the model this is (`0..num_buckets`).
    pub bucket_index: u32,
    /// How many buckets the full model has — every frame carries the
    /// total so a receiver can size its reassembly state from any frame.
    pub num_buckets: u32,
    /// The `k + 1` anonymized candidates.
    pub bucket: Bucket,
}

fn encode_member(buf: &mut BytesMut, member: &BucketMember) {
    let g = encode_graph(&member.graph);
    let p = encode_params(&member.graph, &member.params);
    buf.put_u32_le(g.len() as u32);
    buf.put_slice(&g);
    buf.put_u32_le(p.len() as u32);
    buf.put_slice(&p);
}

fn decode_member(data: &mut Bytes) -> Result<BucketMember, WireError> {
    let need = |data: &Bytes, n: usize, what: &str| -> Result<(), WireError> {
        if data.remaining() < n {
            Err(WireError::truncated(what))
        } else {
            Ok(())
        }
    };
    need(data, 4, "member graph length")?;
    let glen = data.get_u32_le() as usize;
    need(data, glen, "member graph body")?;
    let mut gbytes = data.split_to(glen);
    let graph = decode_graph(&mut gbytes)?;
    need(data, 4, "member params length")?;
    let plen = data.get_u32_le() as usize;
    need(data, plen, "member params body")?;
    let mut pbytes = data.split_to(plen);
    let params = decode_params(&mut pbytes)?;
    Ok(BucketMember { graph, params })
}

/// Builds the frame payload of one sealed bucket (bucket count, member
/// count, members) — shared by the v1 and v2 frame encoders.
fn encode_sealed_payload(num_buckets: u32, bucket: &Bucket) -> Bytes {
    let mut payload = BytesMut::new();
    payload.put_u32_le(num_buckets);
    payload.put_u32_le(bucket.members.len() as u32);
    for member in &bucket.members {
        encode_member(&mut payload, member);
    }
    payload.freeze()
}

/// Seals a borrowed bucket into v1 frame bytes — the shared encoder behind
/// [`SealedBucket::to_bytes`] and [`ObfuscatedModel::to_bytes`] (which
/// must stay byte-compatible, and neither should clone the bucket to
/// serialize it).
fn encode_sealed(bucket_index: u32, num_buckets: u32, bucket: &Bucket) -> Bytes {
    encode_frame(bucket_index, &encode_sealed_payload(num_buckets, bucket))
}

/// Parses a sealed bucket out of a decoded [`proteus_graph::wire::Frame`]
/// payload — the shared decoder behind the single-request and multiplexed
/// entry points.
fn decode_sealed_payload(bucket_index: u32, mut payload: Bytes) -> Result<SealedBucket, WireError> {
    if payload.remaining() < 8 {
        return Err(WireError::truncated("sealed bucket header"));
    }
    let num_buckets = payload.get_u32_le();
    let nm = payload.get_u32_le() as usize;
    if nm > 1_000_000 {
        return Err(WireError::malformed(format!(
            "implausible member count {nm}"
        )));
    }
    if bucket_index >= num_buckets {
        return Err(WireError::malformed(format!(
            "bucket index {bucket_index} out of range for {num_buckets}-bucket model"
        )));
    }
    // clamp the pre-allocation by what the payload could possibly hold (a
    // member encodes to at least its two length prefixes) — the loop still
    // reads all `nm` members, so a lying count is a typed truncation, not
    // a huge allocation
    let mut members = Vec::with_capacity(nm.min(payload.remaining() / 8));
    for _ in 0..nm {
        members.push(decode_member(&mut payload)?);
    }
    if !payload.is_empty() {
        return Err(WireError::malformed(format!(
            "{} trailing bytes in sealed bucket payload",
            payload.remaining()
        )));
    }
    Ok(SealedBucket {
        bucket_index,
        num_buckets,
        bucket: Bucket { members },
    })
}

impl SealedBucket {
    /// Serializes to one single-request (v1) wire frame.
    pub fn to_bytes(&self) -> Bytes {
        encode_sealed(self.bucket_index, self.num_buckets, &self.bucket)
    }

    /// Serializes to one multiplexed (v2) wire frame tagged with
    /// `request_id`, so the frame can share a byte stream with frames of
    /// other concurrent requests.
    pub fn to_mux_bytes(&self, request_id: u64) -> Bytes {
        proteus_graph::wire::encode_frame_v2(
            request_id,
            self.bucket_index,
            &encode_sealed_payload(self.num_buckets, &self.bucket),
        )
    }

    /// Decodes one sealed bucket from the front of `data`, leaving any
    /// trailing bytes (for decoding a stream of frames). Accepts v1 and
    /// v2 frames alike; use [`SealedBucket::decode_mux_from`] when the
    /// caller needs the demultiplexing request id.
    ///
    /// # Errors
    /// Typed [`WireError`]s: unknown wire versions, bad magic, checksum
    /// mismatches, truncation, malformed payload fields.
    pub fn decode_from(data: &mut Bytes) -> Result<SealedBucket, WireError> {
        SealedBucket::decode_mux_from(data).map(|(_, sealed)| sealed)
    }

    /// Decodes one frame from the front of `data` and returns it together
    /// with its request id — the demultiplexing entry point for a byte
    /// stream carrying interleaved requests. Legacy v1 frames carry no id
    /// on the wire and decode to request id `0`
    /// ([`crate::LEGACY_REQUEST_ID`]).
    ///
    /// # Errors
    /// As [`SealedBucket::decode_from`].
    pub fn decode_mux_from(data: &mut Bytes) -> Result<(u64, SealedBucket), WireError> {
        let frame = decode_frame(data)?;
        let sealed = decode_sealed_payload(frame.bucket_index, frame.payload)?;
        Ok((frame.request_id, sealed))
    }

    /// Decodes a sealed bucket plus request id from exactly one frame.
    ///
    /// # Errors
    /// As [`SealedBucket::decode_mux_from`], plus trailing garbage after
    /// the frame is rejected.
    pub fn from_mux_bytes(mut data: Bytes) -> Result<(u64, SealedBucket), WireError> {
        let (request_id, sealed) = SealedBucket::decode_mux_from(&mut data)?;
        if !data.is_empty() {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after sealed bucket frame",
                data.remaining()
            )));
        }
        Ok((request_id, sealed))
    }

    /// Decodes a sealed bucket from exactly one frame.
    ///
    /// # Errors
    /// As [`SealedBucket::decode_from`], plus trailing garbage after the
    /// frame is rejected.
    pub fn from_bytes(mut data: Bytes) -> Result<SealedBucket, WireError> {
        let sealed = SealedBucket::decode_from(&mut data)?;
        if !data.is_empty() {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after sealed bucket frame",
                data.remaining()
            )));
        }
        Ok(sealed)
    }

    /// Unwraps the transported bucket.
    pub fn into_bucket(self) -> Bucket {
        self.bucket
    }
}

/// Everything the optimizer party receives.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObfuscatedModel {
    /// One bucket per protected subgraph, in bucket-index order.
    pub buckets: Vec<Bucket>,
}

impl ObfuscatedModel {
    /// Total number of subgraphs across all buckets.
    pub fn total_subgraphs(&self) -> usize {
        self.buckets.iter().map(|b| b.members.len()).sum()
    }

    /// `n` — the number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Serializes the model to its byte wire format: a bucket count
    /// followed by one [`SealedBucket`] frame per bucket. The bytes are
    /// identical to concatenating the frames of a streaming session behind
    /// the same count, so batch and streamed transfers are interchangeable
    /// on the wire.
    pub fn to_bytes(&self) -> Bytes {
        let nb = self.buckets.len() as u32;
        let mut buf = BytesMut::new();
        buf.put_u32_le(nb);
        for (i, bucket) in self.buckets.iter().enumerate() {
            buf.put_slice(&encode_sealed(i as u32, nb, bucket));
        }
        buf.freeze()
    }

    /// Deserializes a model from [`ObfuscatedModel::to_bytes`] output.
    ///
    /// # Errors
    /// Returns [`WireError`] on malformed input — including frames out of
    /// order, from unknown wire versions, or with corrupted checksums.
    pub fn from_bytes(mut data: Bytes) -> Result<ObfuscatedModel, WireError> {
        if data.remaining() < 4 {
            return Err(WireError::truncated("bucket count"));
        }
        let nb = data.get_u32_le() as usize;
        if nb > 1_000_000 {
            return Err(WireError::malformed(format!(
                "implausible bucket count {nb}"
            )));
        }
        // a sealed frame is at least its 22-byte v1 header; clamp the
        // pre-allocation so a corrupt count cannot demand gigabytes
        let mut buckets = Vec::with_capacity(nb.min(data.remaining() / 22));
        for i in 0..nb {
            let sealed = SealedBucket::decode_from(&mut data)?;
            if sealed.bucket_index as usize != i || sealed.num_buckets as usize != nb {
                return Err(WireError::malformed(format!(
                    "frame {}/{} at position {i} of a {nb}-bucket model",
                    sealed.bucket_index, sealed.num_buckets
                )));
            }
            buckets.push(sealed.bucket);
        }
        if !data.is_empty() {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after final frame",
                data.remaining()
            )));
        }
        Ok(ObfuscatedModel { buckets })
    }
}

/// The model owner's private reassembly material.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObfuscationSecrets {
    /// The request these secrets belong to. Reassembly sessions use it to
    /// reject frames injected from a different request's stream and to
    /// name the request in protocol errors. Defaults to `0`
    /// ([`crate::LEGACY_REQUEST_ID`]) when deserializing secrets persisted
    /// before this field existed — matching the v1-frame semantics.
    #[serde(default)]
    pub request_id: u64,
    /// The partition plan (boundary wiring, original interfaces).
    pub plan: PartitionPlan,
    /// For bucket `i`, the index of the real subgraph within
    /// `buckets[i].members`.
    pub real_positions: Vec<usize>,
}

/// Strips identifying names from a graph: the graph gets a neutral name and
/// every node is renamed to `op_index`. The real subgraph and the sentinels
/// must be indistinguishable by labels.
pub fn anonymize(graph: &Graph, tag: usize) -> Graph {
    let (mut g, _) = graph.compact();
    g.set_name(format!("subgraph_{tag}"));
    let ids = g.node_ids();
    for (i, id) in ids.into_iter().enumerate() {
        let base = {
            let node = g.node(id).expect("live");
            node.op.opcode()
        };
        if let Some(node) = g.node_mut(id) {
            node.name = format!("{}_{}", format!("{base:?}").to_lowercase(), i);
        }
    }
    g
}

/// [`anonymize`], but *content-addressed*: the graph's name is derived
/// from a hash of its own (already-anonymized) wire encoding instead of a
/// caller-supplied slot tag. Two structurally identical members therefore
/// encode to identical wire bytes wherever they appear — across slots,
/// buckets, requests, and tenants — which is what lets the serving
/// runtime's optimized-member cache recognize a repeated sentinel by its
/// bytes alone. Names still leak nothing: the hash is computed over the
/// anonymized form, whose only inputs are topology, opcodes, and
/// attributes the optimizer sees anyway.
pub fn anonymize_content(graph: &Graph) -> Graph {
    let (mut g, _) = graph.compact();
    let ids = g.node_ids();
    for (i, id) in ids.into_iter().enumerate() {
        let base = {
            let node = g.node(id).expect("live");
            node.op.opcode()
        };
        if let Some(node) = g.node_mut(id) {
            node.name = format!("{}_{}", format!("{base:?}").to_lowercase(), i);
        }
    }
    g.set_name("subgraph".to_string());
    let salt = fnv1a64(&encode_graph(&g));
    g.set_name(format!("subgraph_{salt:016x}"));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};

    fn member(seed: u64) -> BucketMember {
        let mut g = Graph::new(format!("m{seed}"));
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        g.set_outputs([r]);
        let params = TensorMap::init_random(&g, seed);
        BucketMember { graph: g, params }
    }

    fn two_bucket_model() -> ObfuscatedModel {
        ObfuscatedModel {
            buckets: vec![
                Bucket {
                    members: vec![member(1), member(2)],
                },
                Bucket {
                    members: vec![member(3), member(4), member(5)],
                },
            ],
        }
    }

    #[test]
    fn wire_roundtrip() {
        let model = two_bucket_model();
        let bytes = model.to_bytes();
        let back = ObfuscatedModel::from_bytes(bytes).unwrap();
        assert_eq!(back.num_buckets(), 2);
        assert_eq!(back.total_subgraphs(), 5);
        for (a, b) in model.buckets.iter().zip(&back.buckets) {
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert_eq!(ma.graph.len(), mb.graph.len());
                assert_eq!(ma.params.len(), mb.params.len());
            }
        }
    }

    #[test]
    fn model_bytes_are_count_plus_sealed_frames() {
        let model = two_bucket_model();
        let mut expected = BytesMut::new();
        expected.put_u32_le(2);
        for (i, bucket) in model.buckets.iter().enumerate() {
            let sealed = SealedBucket {
                bucket_index: i as u32,
                num_buckets: 2,
                bucket: bucket.clone(),
            };
            expected.put_slice(&sealed.to_bytes());
        }
        assert_eq!(model.to_bytes().to_vec(), expected.freeze().to_vec());
    }

    #[test]
    fn sealed_bucket_roundtrip() {
        let sealed = SealedBucket {
            bucket_index: 1,
            num_buckets: 3,
            bucket: Bucket {
                members: vec![member(7), member(8)],
            },
        };
        let back = SealedBucket::from_bytes(sealed.to_bytes()).unwrap();
        assert_eq!(back.bucket_index, 1);
        assert_eq!(back.num_buckets, 3);
        assert_eq!(back.bucket.members.len(), 2);
        for (a, b) in sealed.bucket.members.iter().zip(&back.bucket.members) {
            assert_eq!(a.graph.len(), b.graph.len());
            assert_eq!(a.params.len(), b.params.len());
        }
    }

    #[test]
    fn sealed_bucket_mux_roundtrip_carries_request_id() {
        let sealed = SealedBucket {
            bucket_index: 0,
            num_buckets: 2,
            bucket: Bucket {
                members: vec![member(11)],
            },
        };
        let wire = sealed.to_mux_bytes(0xFACE);
        let (rid, back) = SealedBucket::from_mux_bytes(wire).unwrap();
        assert_eq!(rid, 0xFACE);
        assert_eq!(back.bucket_index, 0);
        assert_eq!(back.num_buckets, 2);
        assert_eq!(back.bucket.members.len(), 1);
        // a v1 frame decodes through the mux entry point as request id 0
        let (rid, _) = SealedBucket::from_mux_bytes(sealed.to_bytes()).unwrap();
        assert_eq!(rid, 0);
        // and a v2 frame decodes through the v1 entry point, dropping the id
        let again = SealedBucket::from_bytes(sealed.to_mux_bytes(7)).unwrap();
        assert_eq!(again.bucket.members.len(), 1);
    }

    #[test]
    fn sealed_bucket_rejects_index_out_of_range() {
        let sealed = SealedBucket {
            bucket_index: 5,
            num_buckets: 3,
            bucket: Bucket {
                members: vec![member(1)],
            },
        };
        assert!(matches!(
            SealedBucket::from_bytes(sealed.to_bytes()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let model = ObfuscatedModel {
            buckets: vec![Bucket {
                members: vec![member(1)],
            }],
        };
        let bytes = model.to_bytes();
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(ObfuscatedModel::from_bytes(truncated).is_err());
        // flip one payload byte: the frame checksum catches it
        let mut raw = bytes.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x10;
        assert!(ObfuscatedModel::from_bytes(Bytes::copy_from_slice(&raw)).is_err());
    }

    #[test]
    fn model_from_bytes_rejects_out_of_order_frames() {
        let model = two_bucket_model();
        let nb = 2u32;
        let mut buf = BytesMut::new();
        buf.put_u32_le(nb);
        // swap the two frames
        for i in [1usize, 0] {
            let sealed = SealedBucket {
                bucket_index: i as u32,
                num_buckets: nb,
                bucket: model.buckets[i].clone(),
            };
            buf.put_slice(&sealed.to_bytes());
        }
        assert!(matches!(
            ObfuscatedModel::from_bytes(buf.freeze()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn anonymize_strips_names() {
        let m = member(9);
        let anon = anonymize(&m.graph, 3);
        assert_eq!(anon.name(), "subgraph_3");
        for (_, node) in anon.iter() {
            assert!(!node.name.contains("m9"), "leaked name {}", node.name);
        }
        assert_eq!(anon.len(), m.graph.len());
    }

    #[test]
    fn content_anonymization_is_position_independent() {
        // same structure under different original names → identical bytes
        let a = member(9).graph;
        let mut b = a.clone();
        b.set_name("completely_different".to_string());
        let (ea, eb) = (
            encode_graph(&anonymize_content(&a)),
            encode_graph(&anonymize_content(&b)),
        );
        assert_eq!(ea, eb, "identical structures got different wire bytes");
        let anon = anonymize_content(&a);
        assert!(anon.name().starts_with("subgraph_"), "{}", anon.name());
        for (_, node) in anon.iter() {
            assert!(!node.name.contains("m9"), "leaked name {}", node.name);
        }
        // a structural change moves the content hash
        let mut c = Graph::new("m9".to_string());
        let x = c.input([1, 3, 8, 8]);
        let r = c.add(Op::Activation(Activation::Relu), [x]);
        c.set_outputs([r]);
        assert_ne!(anonymize_content(&c).name(), anon.name());
    }
}
